"""Trace corpora: the input of the passive automaton learner.

A corpus is a set of *observed* lifecycles of one class, each annotated
with per-prefix **evidence** probed from the runtime monitor:

* ``allowed`` — the operations the monitor would have accepted next
  (everything outside the set is a forbidden continuation: negative
  evidence);
* ``final`` — whether :func:`repro.runtime.monitor.finalize` would have
  succeeded at that prefix (definitive accept/reject labels, so the
  learner never has to guess a state's acceptance).

Corpora serialize to plain JSON (``--corpus-out``, farm failure-repro
artifacts) and deserialize losslessly, evidence included.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Schema version stamped into serialized corpora.
CORPUS_SCHEMA = 1

#: Sample provenance kinds.
KIND_COVER = "cover"
KIND_RANDOM = "random"
KIND_REPLAY = "replay"


@dataclass(frozen=True)
class StepEvidence:
    """What the monitor knew at one prefix of one run."""

    allowed: tuple[str, ...] | None
    final: bool | None

    @staticmethod
    def of(allowed, final) -> "StepEvidence":
        return StepEvidence(
            allowed=None if allowed is None else tuple(sorted(allowed)),
            final=final,
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "allowed": None if self.allowed is None else list(self.allowed),
            "final": self.final,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "StepEvidence":
        allowed = payload.get("allowed")
        return StepEvidence.of(allowed, payload.get("final"))


@dataclass(frozen=True)
class TraceSample:
    """One monitored run: the events performed plus per-prefix evidence.

    ``evidence`` has one entry per prefix of ``word`` *including* the
    empty prefix, so ``evidence[i]`` describes the state after
    ``word[:i]``; it may be empty when the corpus carries bare words.
    ``completed`` records whether the run finalized cleanly — when
    evidence is present it always agrees with ``evidence[-1].final``.
    """

    word: tuple[str, ...]
    completed: bool
    evidence: tuple[StepEvidence, ...] = ()
    kind: str = KIND_COVER

    def __post_init__(self) -> None:
        if self.evidence and len(self.evidence) != len(self.word) + 1:
            raise ValueError(
                f"evidence length {len(self.evidence)} does not match "
                f"word length {len(self.word)} + 1"
            )

    def to_payload(self) -> dict[str, Any]:
        return {
            "word": list(self.word),
            "completed": self.completed,
            "kind": self.kind,
            "evidence": [entry.to_payload() for entry in self.evidence],
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TraceSample":
        return TraceSample(
            word=tuple(str(e) for e in payload["word"]),
            completed=bool(payload["completed"]),
            kind=str(payload.get("kind", KIND_REPLAY)),
            evidence=tuple(
                StepEvidence.from_payload(entry)
                for entry in payload.get("evidence", ())
            ),
        )


@dataclass
class TraceCorpus:
    """Every observed run of one class, plus the event vocabulary."""

    class_name: str
    alphabet: tuple[str, ...]
    samples: list[TraceSample] = field(default_factory=list)
    #: Collection anomalies (e.g. a spec-mismatching return value — a
    #: conformance fault observed while collecting).  Reported, and a
    #: corpus with notes is never considered clean by the farm.
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.alphabet = tuple(sorted(set(self.alphabet)))

    def add(self, sample: TraceSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[TraceSample]:
        return iter(self.samples)

    # -- aggregate views ------------------------------------------------

    def positive_words(self) -> list[tuple[str, ...]]:
        """Distinct words of *completed* lifecycles, plus every prefix
        whose evidence marks it finalizable — sorted length-lex."""
        words: set[tuple[str, ...]] = set()
        for sample in self.samples:
            if sample.completed:
                words.add(sample.word)
            for cut, entry in enumerate(sample.evidence):
                if entry.final:
                    words.add(sample.word[:cut])
        return sorted(words, key=lambda w: (len(w), w))

    def event_count(self) -> int:
        return sum(len(sample.word) for sample in self.samples)

    def stats(self) -> dict[str, int]:
        return {
            "samples": len(self.samples),
            "events": self.event_count(),
            "positive_words": len(self.positive_words()),
            "alphabet": len(self.alphabet),
        }

    # -- serialization --------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": CORPUS_SCHEMA,
            "class": self.class_name,
            "alphabet": list(self.alphabet),
            "samples": [sample.to_payload() for sample in self.samples],
            "notes": list(self.notes),
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TraceCorpus":
        schema = payload.get("schema")
        if schema != CORPUS_SCHEMA:
            raise ValueError(f"unsupported corpus schema: {schema!r}")
        return TraceCorpus(
            class_name=str(payload["class"]),
            alphabet=tuple(str(s) for s in payload["alphabet"]),
            samples=[
                TraceSample.from_payload(entry) for entry in payload["samples"]
            ],
            notes=[str(note) for note in payload.get("notes", ())],
        )

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def load(path: str | Path) -> "TraceCorpus":
        return TraceCorpus.from_payload(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )
