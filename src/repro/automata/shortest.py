"""Shortest accepted words — the counterexamples Shelley prints.

Both error reports in §2.2 of the paper end with a ``Counter example:``
line; that line is the shortest word of a product automaton, extracted
here by breadth-first search with alphabetical tie-breaking so reports
are deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA


def shortest_accepted_word(dfa: DFA) -> tuple[str, ...] | None:
    """The length-lex smallest accepted word, or ``None`` if ``L = ∅``."""
    if dfa.initial_state in dfa.accepting_states:
        return ()
    parents: dict = {dfa.initial_state: None}
    queue = deque([dfa.initial_state])
    ordered_alphabet = sorted(dfa.alphabet)
    while queue:
        state = queue.popleft()
        for symbol in ordered_alphabet:
            successor = dfa.successor(state, symbol)
            if successor is None or successor in parents:
                continue
            parents[successor] = (state, symbol)
            if successor in dfa.accepting_states:
                return _reconstruct(parents, successor)
            queue.append(successor)
    return None


def _reconstruct(parents: dict, state) -> tuple[str, ...]:
    word: list[str] = []
    while parents[state] is not None:
        state, symbol = parents[state]
        word.append(symbol)
    return tuple(reversed(word))


def shortest_accepted_word_nfa(nfa: NFA) -> tuple[str, ...] | None:
    """Shortest accepted word of an NFA (BFS over epsilon-closed subsets)."""
    initial = nfa.epsilon_closure(nfa.initial_states)
    if initial & nfa.accepting_states:
        return ()
    parents: dict[frozenset, tuple[frozenset, str] | None] = {initial: None}
    queue = deque([initial])
    ordered_alphabet = sorted(nfa.alphabet)
    while queue:
        subset = queue.popleft()
        for symbol in ordered_alphabet:
            successor = nfa.step(subset, symbol)
            if not successor or successor in parents:
                continue
            parents[successor] = (subset, symbol)
            if successor & nfa.accepting_states:
                return _reconstruct(parents, successor)
            queue.append(successor)
    return None


def iter_accepted_words(dfa: DFA, max_length: int) -> Iterator[tuple[str, ...]]:
    """All accepted words up to ``max_length``, in length-lex order.

    Unlike :func:`shortest_accepted_word` this enumerates *words*, not
    states, so the number of results can be exponential in the bound; use
    small bounds (tests and claim-diagnostics do).
    """
    queue: deque[tuple[tuple[str, ...], object]] = deque([((), dfa.initial_state)])
    ordered_alphabet = sorted(dfa.alphabet)
    while queue:
        word, state = queue.popleft()
        if state in dfa.accepting_states:
            yield word
        if len(word) >= max_length:
            continue
        for symbol in ordered_alphabet:
            successor = dfa.successor(state, symbol)
            if successor is not None:
                queue.append((word + (symbol,), successor))
