"""Module-level subset lints: aliasing and self-invocation."""

from repro.frontend.parse import parse_module
from repro.frontend.subset import validate_class, validate_module


def parse(source: str):
    module, violations = parse_module(source)
    assert violations == []
    return module


class TestAliasing:
    SOURCE = (
        "@sys(['a'])\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.a = Valve()\n"
        "    @op_initial_final\n"
        "    def m(self):\n"
        "        x = self.a\n"
        "        return []\n"
    )

    def test_aliasing_detected_with_source(self):
        module = parse(self.SOURCE)
        violations = validate_module(module, self.SOURCE)
        assert any(v.code == "aliasing" for v in violations)

    def test_no_aliasing_check_without_source(self):
        module = parse(self.SOURCE)
        assert validate_module(module) == []

    def test_clean_module_passes(self):
        source = (
            "@sys(['a'])\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.a = Valve()\n"
            "    @op_initial_final\n"
            "    def m(self):\n"
            "        self.a.test()\n"
            "        return []\n"
        )
        module = parse(source)
        assert validate_module(module, source) == []

    def test_alias_of_unconstrained_field_allowed(self):
        source = (
            "@sys(['a'])\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.a = Valve()\n"
            "        self.led = Pin(2)\n"
            "    @op_initial_final\n"
            "    def m(self):\n"
            "        x = self.led\n"
            "        return []\n"
        )
        module = parse(source)
        assert validate_module(module, source) == []


class TestSelfInvocation:
    def test_field_shadowing_an_operation_name_flagged(self):
        # A subsystem field that shares its name with an operation makes
        # self.<name>.<m>() ambiguous between field access and operation
        # invocation; the lint reports it.
        source = (
            "@sys(['run'])\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.run = Valve()\n"
            "    @op_initial_final\n"
            "    def run(self):\n"
            "        self.run.test()\n"
            "        return []\n"
        )
        parsed, _ = parse_module(source)
        violations = validate_class(parsed.get_class("C"))
        assert any(v.code == "self-invocation" for v in violations)

    def test_validate_class_clean_on_paper_classes(self, bad_sector, valve):
        assert validate_class(valve) == []
        assert validate_class(bad_sector) == []
