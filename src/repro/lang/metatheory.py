"""Executable metatheory: bounded checks of Theorems 1–2 and Corollary 1.

The paper mechanizes its results in Coq.  Coq is unavailable in this
reproduction, so we *bounded-model-check* the same statements instead
(documented as a substitution in DESIGN.md):

* **Theorem 1 (soundness)** — every trace derivable from the semantics is
  a word of ``infer(p)``;
* **Theorem 2 (completeness)** — every word of ``infer(p)`` is derivable;
* the two **lemmas** inside the proofs — the ongoing component ``r`` of
  ``⟦p⟧`` matches exactly the status-``0`` traces, and the returned set
  ``s`` matches exactly the status-``R`` traces;
* **Corollary 1 (regularity)** — ``infer(p)`` survives the round trip
  regex → NFA → DFA → regex with its language intact.

Each check runs over *all* programs of the bare calculus up to a size
budget and over all traces up to a length budget, so every inference
rule and every case of the paper's induction is exercised on every small
instance.  The hypothesis test-suite re-runs the same predicates on
random large programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lang.ast import Program, format_program
from repro.lang.generator import all_programs
from repro.lang.inference import behavior, infer
from repro.lang.semantics import language, ongoing_traces, returned_traces
from repro.regex.ast import union_all
from repro.regex.enumerate_words import words_up_to


@dataclass
class TheoremReport:
    """Outcome of a bounded metatheory check.

    ``counterexamples`` holds the first few failing programs, formatted
    in the paper's syntax (empty when the check passes).
    """

    name: str
    programs_checked: int = 0
    max_program_size: int = 0
    max_trace_length: int = 0
    counterexamples: list[str] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else "FAILS"
        return (
            f"{self.name}: {verdict} on {self.programs_checked} programs "
            f"(size <= {self.max_program_size}, traces <= {self.max_trace_length})"
        )


def check_soundness(program: Program, max_length: int) -> bool:
    """Theorem 1 on one program: ``L(p) ⊆ infer(p)`` up to the bound."""
    inferred = words_up_to(infer(program), max_length)
    return language(program, max_length) <= inferred


def check_completeness(program: Program, max_length: int) -> bool:
    """Theorem 2 on one program: ``infer(p) ⊆ L(p)`` up to the bound."""
    inferred = words_up_to(infer(program), max_length)
    return inferred <= language(program, max_length)


def check_ongoing_lemma(program: Program, max_length: int) -> bool:
    """Lemma (1) of both proofs: the ``r`` of ``⟦p⟧`` is exactly the
    status-``0`` trace set."""
    inferred = words_up_to(behavior(program).ongoing, max_length)
    return inferred == ongoing_traces(program, max_length)


def check_returned_lemma(program: Program, max_length: int) -> bool:
    """Lemma (2) of both proofs: the union of ``s`` is exactly the
    status-``R`` trace set."""
    returned_regex = union_all(behavior(program).returned_set())
    inferred = words_up_to(returned_regex, max_length)
    return inferred == returned_traces(program, max_length)


def check_regularity(program: Program, max_length: int) -> bool:
    """Corollary 1 on one program: the language survives the automaton
    round trip regex → NFA → DFA → regex."""
    from repro.automata.determinize import determinize
    from repro.automata.minimize import minimize
    from repro.automata.thompson import thompson
    from repro.automata.to_regex import nfa_to_regex

    inferred = infer(program)
    dfa = minimize(determinize(thompson(inferred)))
    round_tripped = nfa_to_regex(dfa.to_nfa())
    return words_up_to(inferred, max_length) == words_up_to(round_tripped, max_length)


_CHECKS = {
    "Theorem 1 (soundness)": check_soundness,
    "Theorem 2 (completeness)": check_completeness,
    "Lemma ongoing (r ~ status 0)": check_ongoing_lemma,
    "Lemma returned (s ~ status R)": check_returned_lemma,
    "Corollary 1 (regularity)": check_regularity,
}


def check_theorem(
    name: str,
    max_program_size: int = 4,
    max_trace_length: int = 6,
    alphabet: Sequence[str] = ("a", "b"),
    programs: Iterable[Program] | None = None,
    max_counterexamples: int = 3,
) -> TheoremReport:
    """Run one named check over a program space and collect a report."""
    if name not in _CHECKS:
        raise KeyError(f"unknown theorem {name!r}; choose from {sorted(_CHECKS)}")
    check = _CHECKS[name]
    report = TheoremReport(
        name=name,
        max_program_size=max_program_size,
        max_trace_length=max_trace_length,
    )
    space = programs if programs is not None else all_programs(max_program_size, alphabet)
    for program in space:
        report.programs_checked += 1
        if not check(program, max_trace_length):
            report.counterexamples.append(format_program(program))
            if len(report.counterexamples) >= max_counterexamples:
                break
    return report


def check_all_theorems(
    max_program_size: int = 4,
    max_trace_length: int = 6,
    alphabet: Sequence[str] = ("a", "b"),
) -> list[TheoremReport]:
    """Run every metatheory check over the same bounded-exhaustive space."""
    programs = list(all_programs(max_program_size, alphabet))
    return [
        check_theorem(
            name,
            max_program_size=max_program_size,
            max_trace_length=max_trace_length,
            alphabet=alphabet,
            programs=programs,
        )
        for name in _CHECKS
    ]


def theorem_names() -> tuple[str, ...]:
    """The names accepted by :func:`check_theorem`."""
    return tuple(_CHECKS)
