"""The end-to-end pipeline on whole modules — golden paper verdicts."""


from repro.core.checker import check_source
from repro.paper import GOOD_MODULE, SECTION_2_MODULE, SECTOR_MODULE, VALVE


class TestPaperVerdicts:
    def test_section_2_module_fails(self):
        result = check_source(SECTION_2_MODULE)
        assert not result.ok

    def test_invalid_subsystem_usage_report(self):
        result = check_source(SECTION_2_MODULE)
        usage = result.by_code("invalid-subsystem-usage")
        assert len(usage) == 1
        assert usage[0].format() == (
            "Error in specification: INVALID SUBSYSTEM USAGE\n"
            "Counter example: open_a, a.test, a.open\n"
            "Subsystems errors:\n"
            "  * Valve 'a': test, >open< (not final)"
        )

    def test_claim_failure_report(self):
        result = check_source(SECTION_2_MODULE)
        claims = result.by_code("unmet-requirement")
        assert len(claims) == 1
        text = claims[0].format()
        assert text.startswith(
            "Error in specification: FAIL TO MEET REQUIREMENT\n"
            "Formula: (!a.open) W b.open\n"
            "Counter example: "
        )

    def test_exactly_two_errors(self):
        result = check_source(SECTION_2_MODULE)
        assert len(result.errors) == 2

    def test_good_module_verifies(self):
        result = check_source(GOOD_MODULE)
        assert result.ok
        assert result.diagnostics == []
        assert result.format() == "OK: specification verified"

    def test_sector_module_verifies(self):
        assert check_source(SECTOR_MODULE).ok

    def test_valve_alone_verifies(self):
        assert check_source(VALVE).ok


class TestPipelineBehavior:
    def test_subset_violations_surface(self):
        result = check_source(
            "@sys\n"
            "class C:\n"
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        try:\n"
            "            pass\n"
            "        except Exception:\n"
            "            pass\n"
            "        return []\n"
        )
        assert result.by_code("unsupported-construct")
        assert not result.ok

    def test_structural_errors_suppress_behavior_checks(self):
        # A broken spec (unknown next method) should not also produce
        # noisy usage/claim verdicts built on a meaningless automaton.
        source = VALVE + (
            "\n\n@claim(\"F v.open\")\n"
            "@sys(['v'])\n"
            "class User:\n"
            "    def __init__(self):\n"
            "        self.v = Valve()\n"
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        self.v.test()\n"
            "        return ['ghost']\n"
        )
        result = check_source(source)
        assert result.by_code("unknown-next-method")
        assert not result.by_code("unmet-requirement")
        assert not result.by_code("invalid-subsystem-usage")

    def test_multiple_composites_checked_independently(self):
        source = SECTION_2_MODULE + "\n\n" + GOOD_MODULE.split("\n\n", 1)[1]
        result = check_source(source)
        # BadSector still fails; GoodSector adds nothing.
        assert len(result.by_code("invalid-subsystem-usage")) == 1

    def test_empty_module_is_ok(self):
        assert check_source("x = 1\n").ok

    def test_hierarchical_composition(self):
        """A composite (Farm) using another composite (GoodSector)."""
        source = GOOD_MODULE + (
            "\n\n@sys(['s'])\n"
            "class Farm:\n"
            "    def __init__(self):\n"
            "        self.s = GoodSector()\n"
            "    @op_initial_final\n"
            "    def water(self):\n"
            "        self.s.irrigate()\n"
            "        return []\n"
        )
        result = check_source(source)
        assert result.ok

    def test_hierarchical_misuse_detected(self):
        source = GOOD_MODULE + (
            "\n\n@sys(['s'])\n"
            "class Farm:\n"
            "    def __init__(self):\n"
            "        self.s = GoodSector()\n"
            "    @op_initial_final\n"
            "    def water(self):\n"
            "        self.s.irrigate()\n"
            "        self.s.irrigate()\n"
            "        return []\n"
        )
        result = check_source(source)
        usage = result.by_code("invalid-subsystem-usage")
        assert len(usage) == 1
        assert usage[0].counterexample == ("water", "s.irrigate", "s.irrigate")


class TestCheckPath:
    def test_reads_file(self, tmp_path):
        from repro.core.checker import check_path

        target = tmp_path / "module.py"
        target.write_text(GOOD_MODULE, encoding="utf-8")
        assert check_path(target).ok
