"""Admission control and round-robin fairness (repro.serve.queue)."""

import pytest

from repro.serve.jobs import make_job
from repro.serve.queue import (
    REASON_QUEUE_FULL,
    REASON_TENANT_LIMIT,
    AdmissionError,
    AdmissionQueue,
)


def job_for(seq, tenant):
    job, _files = make_job(
        seq, tenant, {"m.py": f"# job {seq}\n"}, deadline=10.0, now=0.0
    )
    return job


class TestAdmission:
    def test_accepts_up_to_depth(self):
        queue = AdmissionQueue(depth=3, tenant_cap=3)
        for seq in range(3):
            queue.submit(job_for(seq, "a"), retry_after=1.0)
        assert len(queue) == 3
        assert queue.saturated

    def test_overflow_is_an_explicit_rejection(self):
        queue = AdmissionQueue(depth=2, tenant_cap=2)
        queue.submit(job_for(1, "a"), retry_after=1.0)
        queue.submit(job_for(2, "b"), retry_after=1.0)
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(job_for(3, "c"), retry_after=2.5)
        assert excinfo.value.reason == REASON_QUEUE_FULL
        assert excinfo.value.retry_after == 2.5
        assert "2/2" in str(excinfo.value)
        assert len(queue) == 2  # nothing silently dropped or displaced

    def test_tenant_cap_is_enforced_before_global_depth(self):
        queue = AdmissionQueue(depth=10, tenant_cap=2)
        queue.submit(job_for(1, "greedy"), retry_after=1.0)
        queue.submit(job_for(2, "greedy"), retry_after=1.0)
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(job_for(3, "greedy"), retry_after=1.0)
        assert excinfo.value.reason == REASON_TENANT_LIMIT
        # Another tenant still gets in.
        queue.submit(job_for(4, "modest"), retry_after=1.0)
        assert queue.depths() == {"greedy": 2, "modest": 1}

    def test_restore_bypasses_admission(self):
        queue = AdmissionQueue(depth=1, tenant_cap=1)
        queue.submit(job_for(1, "a"), retry_after=1.0)
        # A crash-retry re-enqueue must never be shed.
        queue.restore(job_for(2, "a"))
        assert len(queue) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(depth=0, tenant_cap=1)
        with pytest.raises(ValueError):
            AdmissionQueue(depth=1, tenant_cap=0)


class TestFairTake:
    def test_round_robin_across_tenants(self):
        queue = AdmissionQueue(depth=12, tenant_cap=12)
        for seq in range(4):
            queue.submit(job_for(seq, "a"), retry_after=1.0)
        for seq in range(4, 6):
            queue.submit(job_for(seq, "b"), retry_after=1.0)
        order = []
        while True:
            job = queue.take()
            if job is None:
                break
            order.append(job.tenant)
        # Tenants alternate while both have work; "a" never starves "b".
        assert order == ["a", "b", "a", "b", "a", "a"]

    def test_fifo_within_a_tenant(self):
        queue = AdmissionQueue(depth=4, tenant_cap=4)
        for seq in (1, 2, 3):
            queue.submit(job_for(seq, "a"), retry_after=1.0)
        assert [queue.take().seq for _ in range(3)] == [1, 2, 3]

    def test_concurrency_cap_skips_saturated_tenants(self):
        queue = AdmissionQueue(depth=4, tenant_cap=4)
        queue.submit(job_for(1, "busy"), retry_after=1.0)
        queue.submit(job_for(2, "idle"), retry_after=1.0)
        job = queue.take({"busy": 2}, tenant_concurrency=2)
        assert job.tenant == "idle"
        # Everyone at cap: nothing is dispatchable, nothing is lost.
        assert queue.take({"busy": 2, "idle": 2}, tenant_concurrency=2) is None
        assert len(queue) == 1

    def test_restore_front_preserves_retry_priority(self):
        queue = AdmissionQueue(depth=4, tenant_cap=4)
        queue.submit(job_for(1, "a"), retry_after=1.0)
        queue.submit(job_for(2, "a"), retry_after=1.0)
        first = queue.take()
        queue.restore(first, front=True)
        assert queue.take().seq == first.seq

    def test_drain_all_empties_deterministically(self):
        queue = AdmissionQueue(depth=6, tenant_cap=6)
        for seq, tenant in ((1, "b"), (2, "a"), (3, "b")):
            queue.submit(job_for(seq, tenant), retry_after=1.0)
        drained = queue.drain_all()
        assert [(job.tenant, job.seq) for job in drained] == [
            ("a", 2),
            ("b", 1),
            ("b", 3),
        ]
        assert len(queue) == 0
        assert queue.take() is None
