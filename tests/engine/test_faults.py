"""The deterministic fault-injection layer (repro.engine.faults)."""

import json

import pytest

from repro.engine import faults
from repro.engine.cache import InferenceCache
from repro.engine.faults import (
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    WorkerKilled,
    parse_faults,
)


class TestSpecParsing:
    def test_minimal_rule(self):
        plan = parse_faults("worker:raise:Controller0")
        assert plan.rules == (
            FaultRule(site="worker", action="raise", pattern="Controller0"),
        )
        assert plan.seed == 0

    def test_full_grammar(self):
        plan = parse_faults(
            "seed=42;worker:delay:Device*:arg=0.25:times=3;"
            "cache-put:corrupt:class/*:p=0.5"
        )
        assert plan.seed == 42
        assert plan.rules[0] == FaultRule(
            site="worker", action="delay", pattern="Device*", arg=0.25, times=3
        )
        assert plan.rules[1] == FaultRule(
            site="cache-put", action="corrupt", pattern="class/*", p=0.5
        )

    def test_empty_segments_are_skipped(self):
        assert parse_faults(";;worker:raise:*;").rules != ()

    @pytest.mark.parametrize(
        "spec",
        [
            "worker:raise",  # missing pattern
            "nowhere:raise:*",  # unknown site
            "worker:explode:*",  # unknown action
            "worker:raise:*:zap=1",  # unknown parameter
            "worker:raise:*:times=soon",  # bad int
            "seed=tomorrow",  # bad seed
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_faults(spec)

    @pytest.mark.parametrize(
        "site", ["serve-accept", "serve-dispatch", "serve-respond"]
    )
    def test_serve_sites_parse(self, site):
        plan = parse_faults(f"{site}:delay:*:arg=0.5")
        assert plan.rules[0].site == site

    def test_unknown_site_error_lists_the_valid_sites(self):
        with pytest.raises(FaultSpecError) as excinfo:
            parse_faults("nowhere:raise:*")
        message = str(excinfo.value)
        for site in faults.SITES:
            assert site in message

    def test_unknown_action_error_lists_the_valid_actions(self):
        with pytest.raises(FaultSpecError) as excinfo:
            parse_faults("worker:explode:*")
        message = str(excinfo.value)
        for action in faults.ACTIONS:
            assert action in message


class TestValidateEnvironment:
    """Eager REPRO_FAULTS validation at entry-point startup."""

    def test_unset_or_blank_env_returns_none(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert faults.validate_environment() is None
        monkeypatch.setenv(faults.FAULTS_ENV, "   ")
        assert faults.validate_environment() is None

    def test_valid_spec_returns_the_parsed_plan(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV, "serve-dispatch:raise:*:times=1"
        )
        plan = faults.validate_environment()
        assert plan is not None
        assert plan.rules[0].site == "serve-dispatch"

    def test_malformed_spec_raises_with_the_site_list(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "typo-site:raise:*")
        with pytest.raises(FaultSpecError) as excinfo:
            faults.validate_environment()
        assert "typo-site" in str(excinfo.value)
        assert "serve-dispatch" in str(excinfo.value)


class TestFiring:
    def test_raise_action(self):
        plan = parse_faults("worker:raise:Poison")
        with pytest.raises(InjectedFault):
            plan.fire("worker", "Poison")

    def test_pattern_and_site_must_match(self):
        plan = parse_faults("worker:raise:Poison")
        plan.fire("worker", "Healthy")  # no match: no fault
        plan.fire("cache-put", "Poison")  # wrong site: no fault
        assert plan.fired() == 0

    def test_times_bounds_firing(self):
        plan = parse_faults("worker:raise:*:times=2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire("worker", "X")
        plan.fire("worker", "X")  # third evaluation: exhausted
        assert plan.fired() == 2

    def test_kill_in_thread_context_raises_worker_killed(self):
        # In the parent process there is no worker to _exit.
        plan = parse_faults("worker:kill:*")
        with pytest.raises(WorkerKilled):
            plan.fire("worker", "X")

    def test_delay_sleeps(self):
        import time

        plan = parse_faults("worker:delay:*:arg=0.05")
        started = time.perf_counter()
        plan.fire("worker", "X")
        assert time.perf_counter() - started >= 0.04

    def test_probability_is_deterministic(self):
        decisions = []
        for _run in range(2):
            plan = parse_faults("seed=7;worker:raise:*:p=0.5")
            run = []
            for i in range(20):
                try:
                    plan.fire("worker", f"C{i}")
                    run.append(False)
                except InjectedFault:
                    run.append(True)
            decisions.append(run)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_seed_changes_decisions(self):
        def run(seed):
            plan = parse_faults(f"seed={seed};worker:raise:*:p=0.5")
            out = []
            for i in range(30):
                try:
                    plan.fire("worker", f"C{i}")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        assert run(1) != run(2)


class TestActivePlan:
    def test_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "worker:raise:FromEnv")
        plan = FaultPlan((FaultRule("worker", "raise", "FromInstall"),))
        faults.install(plan)
        assert faults.active_plan() is plan

    def test_env_plan_is_cached_with_counters(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "worker:raise:*:times=1")
        with pytest.raises(InjectedFault):
            faults.fire("worker", "X")
        # Same env value → same plan object → `times` already spent.
        faults.fire("worker", "X")
        assert faults.active_plan().fired() == 1

    def test_no_spec_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert faults.active_plan() is None
        faults.fire("worker", "X")  # no-op


class TestCorruptCacheEntry:
    def test_corrupt_at_put_truncates_the_file(self, tmp_path):
        faults.install(parse_faults("cache-put:corrupt:method/*"))
        cache = InferenceCache(tmp_path)
        cache.put("method", "abcdef", {"v": 1})
        path = tmp_path / "method" / "ab" / "abcdef.json"
        with pytest.raises(ValueError):
            json.loads(path.read_text())
        # A fresh cache self-heals: miss, file deleted, stat counted.
        faults.install(None)
        fresh = InferenceCache(tmp_path)
        assert fresh.get("method", "abcdef") is None
        assert fresh.stats.corrupt["method"] == 1
        assert not path.exists()
