"""Kernel selection: the ``REPRO_KERNEL`` switch.

Two interchangeable automata cores exist (docs/kernel.md):

* ``bitset`` (default) — the integer-interned kernel in this package;
* ``classic`` — the original object automata, kept as the differential
  oracle and as an escape hatch.

Selection is read from the environment at *use* time, so one process
can flip kernels between checks (the differential harness and the bench
comparison both rely on this), and process-pool workers inherit the
choice through the environment automatically.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

#: Environment variable naming the active kernel.
KERNEL_ENV = "REPRO_KERNEL"

#: Recognized kernel names.
KERNELS = ("bitset", "classic")

#: The kernel used when the environment does not choose one.
DEFAULT_KERNEL = "bitset"


class KernelConfigError(ValueError):
    """Raised when ``REPRO_KERNEL`` names an unknown kernel."""


def kernel_name() -> str:
    """The active kernel name (validated)."""
    value = os.environ.get(KERNEL_ENV, "").strip().lower()
    if not value:
        return DEFAULT_KERNEL
    if value not in KERNELS:
        raise KernelConfigError(
            f"{KERNEL_ENV}={value!r} is not a kernel; "
            f"expected one of {', '.join(KERNELS)}"
        )
    return value


def use_bitset() -> bool:
    """Is the bitset kernel active?"""
    return kernel_name() == "bitset"


@contextmanager
def forced_kernel(name: str):
    """Temporarily force a kernel (tests, benchmarks, the oracle)."""
    if name not in KERNELS:
        raise KernelConfigError(
            f"unknown kernel {name!r}; expected one of {', '.join(KERNELS)}"
        )
    previous = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous
