"""Persistent per-project incremental state (``.repro-cache/state.json``).

One verified project leaves behind a *state file*: for every class, the
fingerprints the incremental planner diffs against (the full-syntax
class fingerprint and the spec-structure digest), the names of the
subsystem classes it declares, and — for classes whose check completed —
the serialized verdict, ready to splice into the next run's report
without re-checking anything (:mod:`repro.engine.incremental`).

The file is versioned twice over: by :data:`STATE_VERSION` (this
module's payload shape) *and* by
:data:`repro.engine.fingerprint.FINGERPRINT_VERSION` (the meaning of the
stored digests).  A mismatch on either — like any unreadable, truncated
or structurally malformed file, or an envelope whose SHA-256 seal does
not match its content (:mod:`repro.engine.store`) — makes
:func:`load_state` report an unusable state, and the caller falls back
to a cold run instead of erroring: stale state can only ever cost a
recomputation, never wrong output.

**Crash-safe, multi-process writes** (docs/robustness.md).  The file is
single-writer across processes: :func:`save_state` takes an advisory
file lock (``state.json.lock``, :mod:`repro.engine.locking`), re-reads
the file on disk, **merges** a concurrent writer's verdicts into the
fresh snapshot (a verified entry with identical digests is never
clobbered by our "unverified"), bumps the envelope's ``generation``
counter, and publishes with a fsynced atomic rename.  Every failure —
lock timeout, full disk, failed rename — degrades to "this run's state
was not recorded" (the next run is colder, never wrong) and comes back
as a structured :class:`SaveReport` instead of vanishing in a silent
``except``.

Classes the supervisor quarantined are stored with ``diagnostics=None``
("digests known, verdict unknown"): the next incremental run re-checks
them without also dirtying their dependents, whose view of the class —
its spec structure — was computed from the parse and is still valid.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.engine import store
from repro.engine.fingerprint import FINGERPRINT_VERSION
from repro.engine.locking import LockTimeout, lock_for
from repro.obs.tracer import NULL_TRACER, Tracer

#: Bump when the state payload shape changes; old files then fall back
#: to a cold run instead of being misread.  Version 2 added the
#: checksum seal and the generation counter.
STATE_VERSION = 2

#: Deadline for the state write lock; a timed-out save is skipped (and
#: reported), never forced — state is an optimization, not an output.
STATE_LOCK_TIMEOUT = 5.0

#: File name inside the cache directory (state is co-located with the
#: content-addressed cache; ``repro cache clear`` removes both).
STATE_FILENAME = "state.json"


def state_path(cache_dir: str | Path) -> Path:
    """Default state-file location for a cache directory."""
    return Path(cache_dir) / STATE_FILENAME


@dataclass(frozen=True)
class ClassState:
    """What the last run knew about one class."""

    name: str
    #: Digest of the full syntactic content (line numbers included) —
    #: :func:`repro.engine.fingerprint.class_fingerprint`.
    fingerprint: str
    #: Digest of the specification structure only —
    #: :func:`repro.engine.fingerprint.spec_fingerprint`.
    spec: str
    #: Names of every class this one declares as a subsystem type,
    #: sorted; in-module or not (missing dependencies matter too).
    deps: tuple[str, ...]
    #: Serialized verdict (:mod:`repro.engine.serialize` dicts), or
    #: ``None`` when the last run quarantined the class.
    diagnostics: tuple[dict[str, Any], ...] | None
    #: Wave index and wall time of the recorded check (diagnostics
    #: context for ``repro state show``; not used for planning).
    wave: int = 0
    seconds: float = 0.0

    @property
    def verified(self) -> bool:
        return self.diagnostics is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "deps": list(self.deps),
            "diagnostics": (
                None if self.diagnostics is None else list(self.diagnostics)
            ),
            "wave": self.wave,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class ProjectState:
    """The complete recorded outcome of one project run."""

    classes: Mapping[str, ClassState] = field(default_factory=dict)
    source_name: str = ""
    #: Monotonic write counter: every successful :func:`save_state`
    #: stores the on-disk generation + 1, so concurrent writers are
    #: observable and "did someone write since I loaded?" is a compare.
    generation: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "state_version": STATE_VERSION,
            "fingerprint_version": FINGERPRINT_VERSION,
            "generation": self.generation,
            "source_name": self.source_name,
            "classes": {
                name: entry.to_dict()
                for name, entry in sorted(self.classes.items())
            },
        }


# ----------------------------------------------------------------------
# Load / save / remove
# ----------------------------------------------------------------------

def _class_state_from_dict(name: str, data: Any) -> ClassState | None:
    """One class entry, or ``None`` when it is structurally malformed.

    Only the *shape* is validated here; whether the stored diagnostics
    deserialize is the planner's concern (it drops unusable verdicts by
    marking the class dirty, so a half-corrupt file still salvages every
    healthy entry).
    """
    if not isinstance(data, dict):
        return None
    fingerprint = data.get("fingerprint")
    spec = data.get("spec")
    deps = data.get("deps")
    diagnostics = data.get("diagnostics")
    if not isinstance(fingerprint, str) or not isinstance(spec, str):
        return None
    if not isinstance(deps, list) or not all(isinstance(d, str) for d in deps):
        return None
    if diagnostics is not None:
        if not isinstance(diagnostics, list) or not all(
            isinstance(entry, dict) for entry in diagnostics
        ):
            return None
    wave = data.get("wave", 0)
    seconds = data.get("seconds", 0.0)
    if not isinstance(wave, int) or not isinstance(seconds, (int, float)):
        return None
    return ClassState(
        name=name,
        fingerprint=fingerprint,
        spec=spec,
        deps=tuple(deps),
        diagnostics=None if diagnostics is None else tuple(diagnostics),
        wave=wave,
        seconds=float(seconds),
    )


def load_state(path: str | Path) -> tuple[ProjectState | None, str | None]:
    """Read a state file; ``(state, None)`` or ``(None, why-not)``.

    Every failure mode — missing file, unreadable file, invalid JSON,
    version mismatch, malformed structure — comes back as a reason
    string so callers can report *why* the run went cold.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, "no state file (first run?)"
    except OSError as error:
        return None, f"unreadable state file: {error}"
    try:
        envelope = json.loads(text)
    except ValueError:
        return None, "corrupt state file (invalid JSON)"
    if not isinstance(envelope, dict):
        return None, "corrupt state file (not an object)"
    if envelope.get("state_version") != STATE_VERSION:
        return None, (
            f"state version {envelope.get('state_version')!r} "
            f"(this build expects {STATE_VERSION})"
        )
    if envelope.get("fingerprint_version") != FINGERPRINT_VERSION:
        return None, (
            f"stale fingerprint version {envelope.get('fingerprint_version')!r} "
            f"(this build expects {FINGERPRINT_VERSION})"
        )
    if not store.seal_intact(envelope):
        # Valid JSON, right versions, wrong bytes: the torn-but-valid
        # write only the checksum catches.
        return None, "corrupt state file (checksum mismatch)"
    raw_classes = envelope.get("classes")
    if not isinstance(raw_classes, dict):
        return None, "corrupt state file (no class table)"
    classes: dict[str, ClassState] = {}
    for name, data in raw_classes.items():
        entry = _class_state_from_dict(name, data)
        if entry is None:
            # One malformed entry does not spoil the rest: the class
            # simply looks "never seen before" and gets re-checked.
            continue
        classes[name] = entry
    source_name = envelope.get("source_name")
    generation = envelope.get("generation")
    return (
        ProjectState(
            classes=classes,
            source_name=source_name if isinstance(source_name, str) else "",
            generation=generation if isinstance(generation, int) else 0,
        ),
        None,
    )


@dataclass(frozen=True)
class SaveReport:
    """What one :func:`save_state` call actually did.

    ``ok=False`` means the snapshot was *not* published — the next run
    degrades toward cold, nothing worse — and ``reason`` says why.
    """

    ok: bool
    reason: str | None = None
    #: Generation written (or the last one observed when the save failed).
    generation: int = 0
    #: Verdicts preserved from a concurrent writer's on-disk state.
    merged_classes: int = 0
    #: Wall time spent waiting for the state lock.
    waited: float = 0.0
    lock_timeout: bool = False


def merge_states(
    disk: ProjectState, fresh: ProjectState
) -> tuple[ProjectState, int]:
    """Overlay ``fresh`` onto ``disk``; returns (merged, kept-from-disk).

    The fresh snapshot is authoritative for the class *set* (it reflects
    the current parse) and for every class it verified.  The one thing a
    concurrent writer can contribute is a **verdict we lack**: where our
    entry is unverified (quarantined this run) and the on-disk entry has
    identical fingerprints *and* a stored verdict, theirs is kept —
    verdicts are pure functions of those digests, so this can never
    merge in wrong output, only rescue work another process finished.
    """
    kept = 0
    classes: dict[str, ClassState] = {}
    for name, ours in fresh.classes.items():
        theirs = disk.classes.get(name)
        if (
            ours.diagnostics is None
            and theirs is not None
            and theirs.diagnostics is not None
            and theirs.fingerprint == ours.fingerprint
            and theirs.spec == ours.spec
        ):
            classes[name] = theirs
            kept += 1
        else:
            classes[name] = ours
    return (
        ProjectState(
            classes=classes,
            source_name=fresh.source_name,
            generation=fresh.generation,
        ),
        kept,
    )


def save_state(
    path: str | Path,
    state: ProjectState,
    *,
    lock_timeout: float = STATE_LOCK_TIMEOUT,
    tracer: Tracer | None = None,
) -> SaveReport:
    """Persist ``state`` crash-safely with single-writer semantics.

    Under the ``<path>.lock`` advisory lock: re-read the file on disk,
    merge a concurrent writer's compatible verdicts into the snapshot
    (:func:`merge_states`), bump the generation counter, seal, and
    publish with a fsynced atomic rename.  Every failure mode is
    reported (and traced), never swallowed: a lock timeout skips the
    save entirely (writing without the lock could drop a concurrent
    writer's generation), a failed write leaves the previous state
    intact.
    """
    path = Path(path)
    tracer = tracer if tracer is not None else NULL_TRACER
    path.parent.mkdir(parents=True, exist_ok=True)
    lock = lock_for(path, name="state", timeout=lock_timeout)
    try:
        lock.acquire()
    except LockTimeout as timeout:
        tracer.event("lock-timeout", lock="state")
        tracer.event("state-save-failed", reason="lock timeout")
        return SaveReport(
            ok=False,
            reason=f"state lock timeout: {timeout}",
            waited=timeout.waited,
            lock_timeout=True,
        )
    try:
        if lock.waited > 0.001:
            tracer.event(
                "lock-wait", lock="state", seconds=round(lock.waited, 6)
            )
        disk, _reason = load_state(path)
        merged_classes = 0
        generation = 1
        merged = state
        if disk is not None:
            generation = disk.generation + 1
            if disk.source_name == state.source_name:
                merged, merged_classes = merge_states(disk, state)
                if merged_classes:
                    tracer.event(
                        "state-merge", kept=merged_classes,
                        generation=generation,
                    )
        merged = ProjectState(
            classes=merged.classes,
            source_name=merged.source_name,
            generation=generation,
        )
        text = json.dumps(store.seal(merged.to_dict()), indent=2, sort_keys=True)
        try:
            store.atomic_write_text(path, text, fault_key="state", fsync=True)
        except OSError as error:
            tracer.event("state-save-failed", reason=str(error))
            return SaveReport(
                ok=False,
                reason=f"state write failed: {error}",
                generation=generation,
                merged_classes=merged_classes,
                waited=lock.waited,
            )
        return SaveReport(
            ok=True,
            generation=generation,
            merged_classes=merged_classes,
            waited=lock.waited,
        )
    finally:
        lock.release()


def remove_state(path: str | Path) -> bool:
    """Delete a state file; ``True`` when one existed and was removed."""
    try:
        Path(path).unlink()
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False
