"""Crash-safe storage primitives (repro.engine.store) and their
integration with the cache's sealed envelopes (docs/robustness.md)."""

import json
import os

import pytest

from repro.engine import faults, store
from repro.engine.cache import CACHE_VERSION, InferenceCache, classify_entry


class TestSeal:
    def test_round_trip(self):
        envelope = store.seal({"cache_version": 2, "payload": {"x": 1}})
        assert store.CHECKSUM_KEY in envelope
        assert store.seal_intact(envelope)

    def test_seal_is_idempotent(self):
        first = store.seal({"a": 1})
        assert store.seal(first) == first

    def test_tampered_content_detected(self):
        envelope = store.seal({"payload": {"x": 1}})
        envelope["payload"]["x"] = 2
        assert not store.seal_intact(envelope)

    def test_tampered_checksum_detected(self):
        envelope = store.seal({"payload": {"x": 1}})
        envelope[store.CHECKSUM_KEY] = "0" * 64
        assert not store.seal_intact(envelope)

    @pytest.mark.parametrize("bad", [None, 42, "x", [], {"a": 1}])
    def test_non_envelopes_are_not_intact(self, bad):
        assert not store.seal_intact(bad)

    def test_canonical_bytes_ignore_key_order(self):
        assert store.canonical_bytes({"a": 1, "b": 2}) == store.canonical_bytes(
            {"b": 2, "a": 1}
        )

    def test_survives_json_round_trip(self):
        envelope = store.seal({"payload": {"nested": [1, 2, {"k": "v"}]}})
        assert store.seal_intact(json.loads(json.dumps(envelope)))


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "deep" / "file.json"
        store.atomic_write_text(target, "one")
        assert target.read_text(encoding="utf-8") == "one"
        store.atomic_write_text(target, "two")
        assert target.read_text(encoding="utf-8") == "two"

    def test_no_temp_file_left_on_success(self, tmp_path):
        store.atomic_write_text(tmp_path / "file.json", "payload")
        assert store.orphan_tmp_files(tmp_path) == []

    def test_torn_write_is_published_torn(self, tmp_path):
        """``torn`` tears the temp file *before* the rename — modeling
        the power cut that publishes wrong data blocks."""
        faults.install(faults.parse_faults("store-write:torn:key:arg=4"))
        target = tmp_path / "file.json"
        store.atomic_write_text(target, "0123456789", fault_key="key")
        assert target.read_text(encoding="utf-8") == "0123"

    def test_enospc_keeps_old_content_and_cleans_temp(self, tmp_path):
        target = tmp_path / "file.json"
        store.atomic_write_text(target, "old")
        faults.install(faults.parse_faults("store-write:enospc:key"))
        with pytest.raises(OSError):
            store.atomic_write_text(target, "new", fault_key="key")
        assert target.read_text(encoding="utf-8") == "old"
        assert store.orphan_tmp_files(tmp_path) == []

    def test_rename_failure_keeps_old_content(self, tmp_path):
        target = tmp_path / "file.json"
        store.atomic_write_text(target, "old")
        faults.install(faults.parse_faults("store-rename:rename-fail:key"))
        with pytest.raises(OSError):
            store.atomic_write_text(target, "new", fault_key="key")
        assert target.read_text(encoding="utf-8") == "old"
        assert store.orphan_tmp_files(tmp_path) == []

    def test_unkeyed_writes_are_exempt_from_faults(self, tmp_path):
        faults.install(faults.parse_faults("store-write:enospc:*"))
        store.atomic_write_text(tmp_path / "file.json", "ok")
        assert (tmp_path / "file.json").read_text(encoding="utf-8") == "ok"


class TestOrphanGC:
    def _plant_orphan(self, root, age_seconds, name="x"):
        orphan = root / f"{store.TMP_PREFIX}{name}.json"
        orphan.write_text("debris", encoding="utf-8")
        old = orphan.stat().st_mtime - age_seconds
        os.utime(orphan, (old, old))
        return orphan

    def test_lists_orphans_recursively_and_sorted(self, tmp_path):
        (tmp_path / "sub").mkdir()
        b = self._plant_orphan(tmp_path / "sub", 0, "b")
        a = self._plant_orphan(tmp_path, 0, "a")
        assert store.orphan_tmp_files(tmp_path) == sorted([a, b])

    def test_age_gate_spares_young_files(self, tmp_path):
        self._plant_orphan(tmp_path, age_seconds=0)
        assert store.gc_tmp_files(tmp_path, min_age_seconds=3600) == 0
        assert store.gc_tmp_files(tmp_path, min_age_seconds=0) == 1
        assert store.orphan_tmp_files(tmp_path) == []

    def test_old_files_are_swept(self, tmp_path):
        self._plant_orphan(tmp_path, age_seconds=7200)
        assert store.gc_tmp_files(tmp_path, min_age_seconds=3600) == 1

    def test_missing_root_is_empty(self, tmp_path):
        assert store.orphan_tmp_files(tmp_path / "nope") == []
        assert store.gc_tmp_files(tmp_path / "nope") == 0

    def test_cache_startup_gc_sweeps_and_counts(self, tmp_path):
        cache = InferenceCache(tmp_path)
        cache.put("method", "aa11", {"v": 1})
        self._plant_orphan(tmp_path / "method", age_seconds=7200)
        reopened = InferenceCache(tmp_path)
        assert reopened.stats.orphans_removed == 1
        assert reopened.orphan_count() == 0

    def test_cache_gc_tmp_sweeps_regardless_of_age(self, tmp_path):
        cache = InferenceCache(tmp_path)
        (tmp_path / "class").mkdir(exist_ok=True)
        self._plant_orphan(tmp_path / "class", age_seconds=0)
        assert cache.orphan_count() == 1
        assert cache.gc_tmp() == 1
        assert cache.stats.orphans_removed == 1


class TestSealedCacheEntries:
    """The cache's envelope-v2 read path (classify_entry) and the
    checksum-specific healing counters."""

    def _entry_path(self, tmp_path, cache, key="cafebabe"):
        return cache._path("method", key)

    def test_entries_on_disk_are_sealed(self, tmp_path):
        cache = InferenceCache(tmp_path)
        cache.put("method", "cafebabe", {"v": 1})
        envelope = json.loads(
            self._entry_path(tmp_path, cache).read_text(encoding="utf-8")
        )
        assert envelope["cache_version"] == CACHE_VERSION
        assert store.seal_intact(envelope)

    def test_classify_verdicts(self):
        sealed = json.dumps(
            store.seal({"cache_version": CACHE_VERSION, "payload": {"v": 1}})
        )
        assert classify_entry(sealed) == ("ok", {"v": 1})
        assert classify_entry("not json")[0] == "corrupt"
        assert classify_entry("[1, 2]")[0] == "corrupt"
        other_build = json.dumps(
            store.seal({"cache_version": CACHE_VERSION + 1, "payload": {}})
        )
        assert classify_entry(other_build)[0] == "version-skew"
        unsealed = json.dumps(
            {"cache_version": CACHE_VERSION, "payload": {"v": 1}}
        )
        assert classify_entry(unsealed)[0] == "checksum"

    def test_torn_but_valid_payload_is_healed_as_checksum_failure(
        self, tmp_path
    ):
        """The signature failure mode: valid JSON, wrong content."""
        cache = InferenceCache(tmp_path)
        cache.put("method", "cafebabe", {"v": 1})
        path = self._entry_path(tmp_path, cache)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["payload"] = {"v": 2}  # tampered, still valid JSON
        path.write_text(json.dumps(envelope), encoding="utf-8")

        fresh = InferenceCache(tmp_path)
        assert fresh.get("method", "cafebabe") is None
        assert fresh.stats.misses["method"] == 1
        assert fresh.stats.corrupt["method"] == 1
        assert fresh.stats.checksum["method"] == 1
        assert not path.exists()  # healed

    def test_structural_corruption_is_not_a_checksum_failure(self, tmp_path):
        cache = InferenceCache(tmp_path)
        cache.put("method", "cafebabe", {"v": 1})
        path = self._entry_path(tmp_path, cache)
        path.write_text("garbage", encoding="utf-8")
        fresh = InferenceCache(tmp_path)
        assert fresh.get("method", "cafebabe") is None
        assert fresh.stats.corrupt["method"] == 1
        assert fresh.stats.checksum["method"] == 0

    def test_version_skew_left_in_place(self, tmp_path):
        cache = InferenceCache(tmp_path)
        cache.put("method", "cafebabe", {"v": 1})
        path = self._entry_path(tmp_path, cache)
        path.write_text(
            json.dumps(store.seal({"cache_version": 99, "payload": {"v": 1}})),
            encoding="utf-8",
        )
        fresh = InferenceCache(tmp_path)
        assert fresh.get("method", "cafebabe") is None
        assert fresh.stats.corrupt["method"] == 0
        assert path.exists()  # another build may still want it

    def test_write_failure_is_counted_and_memory_still_serves(self, tmp_path):
        faults.install(faults.parse_faults("store-write:enospc:method/*"))
        cache = InferenceCache(tmp_path)
        cache.put("method", "cafebabe", {"v": 1})
        assert cache.stats.write_failures["method"] == 1
        assert cache.get("method", "cafebabe") == {"v": 1}  # memory layer
        faults.install(None)
        assert InferenceCache(tmp_path).get("method", "cafebabe") is None


class TestStoreObsEvents:
    """The structured events the persistence layer emits into an
    attached tracer (docs/observability.md)."""

    def _events(self, tracer, name):
        return [
            event
            for span in tracer.root.walk()
            for event in span.events
            if event["name"] == name
        ]

    def test_checksum_heal_emits_both_events(self, tmp_path):
        from repro.obs import Tracer

        cache = InferenceCache(tmp_path)
        cache.put("method", "cafebabe", {"v": 1})
        path = cache._path("method", "cafebabe")
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["payload"] = {"v": 2}
        path.write_text(json.dumps(envelope), encoding="utf-8")

        fresh = InferenceCache(tmp_path)
        fresh.tracer = tracer = Tracer()
        assert fresh.get("method", "cafebabe") is None
        assert len(self._events(tracer, "checksum-fail")) == 1
        assert len(self._events(tracer, "cache-heal")) == 1

    def test_forced_lock_timeout_emits_event_and_still_persists(
        self, tmp_path
    ):
        from repro.obs import Tracer

        faults.install(faults.parse_faults("lock-acquire:lock-timeout:method"))
        cache = InferenceCache(tmp_path)
        cache.tracer = tracer = Tracer()
        cache.put("method", "cafebabe", {"v": 1})
        assert cache.stats.lock_timeouts == 1
        events = self._events(tracer, "lock-timeout")
        assert events == [{"name": "lock-timeout", "lock": "method"}]
        # Degradation contract: the write still happened.
        faults.install(None)
        assert InferenceCache(tmp_path).get("method", "cafebabe") == {"v": 1}

    def test_failed_state_save_emits_event_and_reports(self, tmp_path):
        from repro.engine.state import ProjectState, save_state
        from repro.obs import Tracer

        faults.install(faults.parse_faults("store-write:enospc:state"))
        tracer = Tracer()
        report = save_state(
            tmp_path / "state.json", ProjectState(), tracer=tracer
        )
        assert not report.ok
        assert not report.lock_timeout
        assert len(self._events(tracer, "state-save-failed")) == 1
        assert not (tmp_path / "state.json").exists()


class TestVerifyAudit:
    def test_clean_store_verifies_clean(self, tmp_path):
        cache = InferenceCache(tmp_path)
        cache.put("method", "aa11", {"v": 1})
        cache.put("class", "bb22", {"v": 2})
        report = cache.verify()
        assert report["method"] == {
            "scanned": 1, "ok": 1, "version_skew": 0,
            "corrupt": 0, "repaired": 0,
        }
        assert report["class"]["ok"] == 1

    def test_corrupt_entry_found_and_repaired(self, tmp_path):
        cache = InferenceCache(tmp_path)
        cache.put("method", "aa11", {"v": 1})
        path = cache._path("method", "aa11")
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")

        audit = cache.verify()
        assert audit["method"]["corrupt"] == 1
        assert audit["method"]["repaired"] == 0
        assert path.exists()  # audit without repair never deletes

        repaired = cache.verify(repair=True)
        assert repaired["method"]["repaired"] == 1
        assert not path.exists()
        assert cache.verify()["method"] == {
            "scanned": 0, "ok": 0, "version_skew": 0,
            "corrupt": 0, "repaired": 0,
        }

    def test_version_skew_never_repaired(self, tmp_path):
        cache = InferenceCache(tmp_path)
        cache.put("method", "aa11", {"v": 1})
        path = cache._path("method", "aa11")
        path.write_text(
            json.dumps(store.seal({"cache_version": 99, "payload": {}})),
            encoding="utf-8",
        )
        audit = cache.verify(repair=True)
        assert audit["method"]["version_skew"] == 1
        assert audit["method"]["repaired"] == 0
        assert path.exists()

    def test_memory_only_cache_reports_zeros(self):
        report = InferenceCache(None).verify(repair=True)
        assert all(
            value == 0 for counts in report.values() for value in counts.values()
        )
