"""Every example script runs to completion with exit status 0."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[path.stem for path in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script, capsys, tmp_path, monkeypatch):
    assert EXAMPLE_SCRIPTS, "no examples found"
    # Examples that write artifacts do so next to themselves; run from a
    # scratch directory so repeated test runs stay clean, then remove
    # any .dot files the tour example wrote beside itself.
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit) as exit_info:
        runpy.run_path(str(script), run_name="__main__")
    assert exit_info.value.code == 0, capsys.readouterr().out
    for artifact in EXAMPLES_DIR.glob("*.dot"):
        artifact.unlink()


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert (EXAMPLES_DIR / "quickstart.py") in EXAMPLE_SCRIPTS
