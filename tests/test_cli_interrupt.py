"""Signal discipline of ``repro check``: SIGINT/SIGTERM mid-run must
produce one clean ``ENGINE INTERRUPTED`` diagnostic and exit 130 — no
traceback, no partial report — and a typo'd ``REPRO_FAULTS`` must be a
one-line usage error at startup, not a quarantine deep in a worker."""

import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.paper import GOOD_MODULE

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
ENV = {"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR}


@pytest.fixture
def slow_check(tmp_path):
    """A ``repro check`` subprocess held mid-run by an injected delay."""
    target = tmp_path / "good.py"
    target.write_text(GOOD_MODULE, encoding="utf-8")

    def start():
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "check", str(target),
                "--faults", "worker:delay:*:arg=30",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=ENV,
        )
        time.sleep(2.0)  # clear interpreter startup; park in the delay
        assert proc.poll() is None, "check finished before the signal"
        return proc

    return start


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_signal_exits_130_with_clean_diagnostic(slow_check, signum):
    proc = slow_check()
    proc.send_signal(signum)
    stdout, stderr = proc.communicate(timeout=60)
    assert proc.returncode == 130
    assert "ENGINE INTERRUPTED" in stderr
    assert "Traceback" not in stderr
    assert "Traceback" not in stdout
    # The diagnostic names the guarantee the user cares about.
    assert "remain consistent" in stderr


def test_bad_faults_env_is_a_startup_error(tmp_path):
    target = tmp_path / "good.py"
    target.write_text(GOOD_MODULE, encoding="utf-8")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "check", str(target)],
        capture_output=True,
        text=True,
        timeout=120,
        env={**ENV, "REPRO_FAULTS": "nonsense:raise:*"},
    )
    assert completed.returncode != 0
    assert "invalid REPRO_FAULTS" in completed.stderr
    assert "unknown fault site" in completed.stderr
    # The error teaches: every valid site is listed.
    assert "serve-dispatch" in completed.stderr
    assert "Traceback" not in completed.stderr
