"""The CLI surface of the observability layer.

``repro check`` gains ``--trace/--trace-out/--metrics-out/--prom-out``;
``repro profile`` is the human per-phase view.  The cardinal rule: any
of those flags may change what *extra* output exists, never the report.
"""

import json

import pytest

from repro.cli import main
from repro.workloads.hierarchy import HierarchyShape, layered_project_source


@pytest.fixture()
def project(tmp_path):
    path = tmp_path / "layered.py"
    path.write_text(
        layered_project_source(HierarchyShape(), depth=3), encoding="utf-8"
    )
    return path


class TestCheckFlags:
    def test_report_is_byte_identical_with_sinks_enabled(
        self, project, tmp_path, capsys, no_ambient_faults
    ):
        assert main(["check", str(project)]) == 0
        plain = capsys.readouterr().out
        assert main([
            "check", str(project), "--jobs", "4",
            "--trace-out", str(tmp_path / "t.jsonl"),
            "--metrics-out", str(tmp_path / "m.json"),
            "--prom-out", str(tmp_path / "p.prom"),
        ]) == 0
        assert capsys.readouterr().out == plain

    def test_trace_out_is_a_valid_span_log(
        self, project, tmp_path, capsys, no_ambient_faults
    ):
        out = tmp_path / "t.jsonl"
        main(["check", str(project), "--trace-out", str(out)])
        lines = [
            json.loads(line)
            for line in out.read_text(encoding="utf-8").splitlines()
        ]
        assert lines[0]["type"] == "meta"
        kinds = {line["kind"] for line in lines if line["type"] == "span"}
        assert {"run", "wave", "class", "phase"} <= kinds
        # The module parse is traced too, as a top-level phase.
        parses = [
            line for line in lines
            if line["type"] == "span"
            and line["kind"] == "phase" and line["parent"] == 0
        ]
        assert len(parses) == 1 and parses[0]["name"] == "parse"

    def test_metrics_out_is_a_superset_of_engine_metrics(
        self, project, tmp_path, capsys, no_ambient_faults
    ):
        out = tmp_path / "m.json"
        main(["check", str(project), "--metrics-out", str(out)])
        payload = json.loads(out.read_text(encoding="utf-8"))
        for key in (
            "classes", "waves", "jobs", "executor", "wall_seconds",
            "cache", "supervisor", "per_class",
        ):
            assert key in payload
        assert payload["obs"]["phases"]
        assert payload["obs"]["spans"] > 0

    def test_prom_out_is_prometheus_text(
        self, project, tmp_path, capsys, no_ambient_faults
    ):
        out = tmp_path / "p.prom"
        main(["check", str(project), "--prom-out", str(out)])
        text = out.read_text(encoding="utf-8")
        assert text.startswith("# HELP repro_classes ")
        assert "repro_phase_seconds_total{" in text

    def test_trace_prints_the_tree_after_the_report(
        self, project, capsys, no_ambient_faults
    ):
        main(["check", str(project), "--trace"])
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "wave wave-0" in out
        assert out.index("trace:") > out.index("OK")


class TestProfile:
    def test_prints_the_per_phase_table(
        self, project, capsys, no_ambient_faults
    ):
        assert main(["profile", str(project)]) == 0
        out = capsys.readouterr().out
        assert "per-phase time breakdown:" in out
        for phase in ("parse", "infer", "determinize", "claims"):
            assert phase in out
        assert "slowest classes" in out

    def test_model_metrics_fills_the_minimize_phase(
        self, project, capsys, no_ambient_faults
    ):
        main(["profile", str(project), "--model-metrics"])
        table = capsys.readouterr().out
        minimize_row = next(
            line for line in table.splitlines()
            if line.strip().startswith("minimize")
        )
        calls = int(minimize_row.split()[1])
        assert calls > 0

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="no such file"):
            main(["profile", str(tmp_path / "missing.py")])
