"""Job model and the crash-safe job journal of the verification daemon.

A submitted project becomes a :class:`Job`: the sources land in a
per-job **spool** directory (``<cache>/serve/spool/<id>/``) and the
job's lifecycle record in the **journal**
(``<cache>/serve/jobs/<id>.json``), a sealed envelope written through
:func:`repro.engine.store.atomic_write_text` — the same checksummed,
atomic, fault-injectable path the inference cache uses.  Because the
journal entry is persisted *before* the job is dispatched, a daemon
killed at any point (SIGKILL included) restarts with the full queue
intact: :meth:`JobJournal.load_all` returns every job, and the service
re-enqueues the non-terminal ones.  Verdicts are pure functions of the
spooled sources (plus the shared content-addressed cache), so a
re-executed job serves byte-identical output.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.engine import store

#: Journal payload shape; bump on change so stale entries are skipped.
JOURNAL_VERSION = 1

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a restarted daemon does *not* re-enqueue.
TERMINAL_STATES = frozenset({DONE, FAILED})

# Failure kinds (the ``kind`` field of a FAILED job).
KIND_CRASH = "crash"
KIND_DEADLINE = "deadline"
KIND_INVALID = "invalid-input"
KIND_LOST_SPOOL = "lost-spool"


class JobError(ValueError):
    """Raised on an invalid job payload (bad filenames, empty project)."""


def _validate_files(files: dict[str, str]) -> dict[str, str]:
    if not files:
        raise JobError("a submission needs at least one source file")
    for name, text in files.items():
        if not isinstance(name, str) or not isinstance(text, str):
            raise JobError("files must map filename strings to source strings")
        if (
            not name.endswith(".py")
            or "/" in name
            or "\\" in name
            or name.startswith(".")
            or name in ("", ".py")
        ):
            raise JobError(
                f"bad source filename {name!r} (want a plain '<name>.py')"
            )
    return dict(files)


@dataclass(frozen=True)
class Job:
    """One verification job working its way through the daemon."""

    id: str
    tenant: str
    seq: int
    #: Source filenames in the spool, sorted (contents live on disk).
    files: tuple[str, ...]
    #: Wall-clock execution budget in seconds.
    deadline: float
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Executions attempted (crash retries increment it).
    attempts: int = 0
    #: Times a restarted daemon re-enqueued this job.
    recovered: int = 0
    ok: bool | None = None
    #: The merged verification report (``CheckResult.format()``), once done.
    report: str | None = None
    #: Failure kind + message for FAILED jobs.
    kind: str | None = None
    error: str | None = None
    classes: int = 0
    seconds: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "seq": self.seq,
            "files": list(self.files),
            "deadline": self.deadline,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "recovered": self.recovered,
            "ok": self.ok,
            "report": self.report,
            "kind": self.kind,
            "error": self.error,
            "classes": self.classes,
            "seconds": self.seconds,
        }

    def summary(self) -> dict[str, Any]:
        """The status dict served over HTTP (report included when done)."""
        return self.to_dict()

    @staticmethod
    def from_dict(data: Any) -> "Job | None":
        """Rebuild a journaled job; ``None`` on a malformed record."""
        if not isinstance(data, dict):
            return None
        try:
            job = Job(
                id=str(data["id"]),
                tenant=str(data["tenant"]),
                seq=int(data["seq"]),
                files=tuple(str(name) for name in data["files"]),
                deadline=float(data["deadline"]),
                state=str(data["state"]),
                submitted_at=float(data.get("submitted_at", 0.0)),
                started_at=data.get("started_at"),
                finished_at=data.get("finished_at"),
                attempts=int(data.get("attempts", 0)),
                recovered=int(data.get("recovered", 0)),
                ok=data.get("ok"),
                report=data.get("report"),
                kind=data.get("kind"),
                error=data.get("error"),
                classes=int(data.get("classes", 0)),
                seconds=float(data.get("seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError):
            return None
        if job.state not in (QUEUED, RUNNING, DONE, FAILED):
            return None
        return job


def make_job(
    seq: int,
    tenant: str,
    files: dict[str, str],
    deadline: float,
    now: float | None = None,
) -> tuple[Job, dict[str, str]]:
    """Build a queued job from a submission; returns (job, validated files).

    The id is ``j<seq>-<digest>``: the sequence number keeps ids unique
    and humanly ordered, the content digest (tenant + sources) makes a
    resubmission of the same project recognizable at a glance.
    """
    validated = _validate_files(files)
    digest = hashlib.sha256(
        store.canonical_bytes({"tenant": tenant, "files": validated})
    ).hexdigest()[:10]
    job = Job(
        id=f"j{seq:06d}-{digest}",
        tenant=tenant,
        seq=seq,
        files=tuple(sorted(validated)),
        deadline=deadline,
        submitted_at=time.time() if now is None else now,
    )
    return job, validated


# ----------------------------------------------------------------------
# Persistence: spool + journal
# ----------------------------------------------------------------------

@dataclass
class JournalStats:
    """Counters of the journal's degraded paths (all zero when healthy)."""

    write_failures: int = 0
    corrupt_entries: int = 0
    recovered_jobs: int = 0
    loaded_jobs: int = 0
    events: list[dict[str, Any]] = field(default_factory=list)


class JobJournal:
    """Sealed, atomic, per-job lifecycle records plus the source spool."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.spool_dir = self.root / "spool"
        self.stats = JournalStats()

    # -- spool ---------------------------------------------------------

    def spool_path(self, job_id: str) -> Path:
        return self.spool_dir / job_id

    def write_spool(self, job: Job, files: dict[str, str]) -> Path:
        target = self.spool_path(job.id)
        target.mkdir(parents=True, exist_ok=True)
        for name, text in files.items():
            (target / name).write_text(text, encoding="utf-8")
        return target

    def check_target(self, job: Job) -> Path | None:
        """What the engine should check: the single source file, or the
        spool directory for multi-file projects; ``None`` if the spool
        vanished (e.g. a cache clear between journal write and restart)."""
        spool = self.spool_path(job.id)
        if not spool.is_dir():
            return None
        present = [spool / name for name in job.files if (spool / name).is_file()]
        if len(present) != len(job.files) or not present:
            return None
        return present[0] if len(present) == 1 else spool

    # -- journal -------------------------------------------------------

    def path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def record(self, job: Job) -> bool:
        """Persist one job state crash-safely; ``False`` on failure.

        A failed journal write (full disk, injected fault) degrades the
        *durability* of this transition — the job proceeds in memory and
        a restart sees the previous state — but never blocks serving.
        """
        envelope = store.seal(
            {"journal_version": JOURNAL_VERSION, "job": job.to_dict()}
        )
        text = json.dumps(envelope, indent=2, sort_keys=True)
        try:
            store.atomic_write_text(
                self.path(job.id), text, fault_key=f"serve-job/{job.id}"
            )
        except OSError as error:
            self.stats.write_failures += 1
            self.stats.events.append(
                {"event": "journal-write-failed", "job": job.id, "error": str(error)}
            )
            return False
        return True

    def load_all(self) -> list[Job]:
        """Every journaled job, sequence order; corrupt records skipped.

        A record that is unreadable, not JSON, version-skewed, fails its
        checksum seal, or is structurally malformed is counted and
        skipped — one torn journal entry loses one job's bookkeeping,
        never the daemon.
        """
        jobs: list[Job] = []
        if not self.jobs_dir.is_dir():
            return jobs
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                self.stats.corrupt_entries += 1
                continue
            if (
                not isinstance(envelope, dict)
                or envelope.get("journal_version") != JOURNAL_VERSION
                or not store.seal_intact(envelope)
            ):
                self.stats.corrupt_entries += 1
                continue
            job = Job.from_dict(envelope.get("job"))
            if job is None:
                self.stats.corrupt_entries += 1
                continue
            jobs.append(job)
        jobs.sort(key=lambda job: job.seq)
        self.stats.loaded_jobs = len(jobs)
        return jobs

    def remove(self, job_id: str) -> bool:
        try:
            self.path(job_id).unlink()
            return True
        except OSError:
            return False

    def next_seq(self, jobs: list[Job]) -> int:
        return max((job.seq for job in jobs), default=0) + 1


def requeued(job: Job) -> Job:
    """A non-terminal journaled job, marked for re-execution after a
    daemon restart (the ``recovered`` counter is the audit trail)."""
    return replace(
        job,
        state=QUEUED,
        started_at=None,
        recovered=job.recovered + 1,
    )
