"""Passive model mining: learn lifecycle automata from monitored runs.

The pipeline inverts the static extractor: instead of deriving the
automaton from annotations, it observes monitored executions
(:mod:`repro.runtime`), folds the recorded traces into a prefix-tree
acceptor, generalizes with evidence-gated RPNI merges, and diffs the
mined machine against the statically extracted one via the bitset
kernel's inclusion search.  See docs/mining.md.
"""

from repro.mine.api import (
    ClassMineResult,
    MineError,
    MineReport,
    load_implementations,
    mine_path,
    mine_source,
)
from repro.mine.collect import (
    CollectConfig,
    CollectError,
    collect_corpus,
    random_lifecycles,
    transition_coverage,
)
from repro.mine.corpus import (
    KIND_COVER,
    KIND_RANDOM,
    KIND_REPLAY,
    StepEvidence,
    TraceCorpus,
    TraceSample,
)
from repro.mine.diff import DiffResult, diff_mined, static_bitdfa
from repro.mine.learn import MinedModel, MineStats, learn, mine_corpus
from repro.mine.pta import PrefixTreeAcceptor, PTANode

__all__ = [
    "ClassMineResult",
    "CollectConfig",
    "CollectError",
    "DiffResult",
    "KIND_COVER",
    "KIND_RANDOM",
    "KIND_REPLAY",
    "MineError",
    "MineReport",
    "MineStats",
    "MinedModel",
    "PTANode",
    "PrefixTreeAcceptor",
    "StepEvidence",
    "TraceCorpus",
    "TraceSample",
    "collect_corpus",
    "diff_mined",
    "learn",
    "load_implementations",
    "mine_corpus",
    "mine_path",
    "mine_source",
    "random_lifecycles",
    "static_bitdfa",
    "transition_coverage",
]
