"""The supervisor: deadlines, budgets, retries, crash recovery."""

import pytest

from repro.core.checker import Checker
from repro.engine import (
    BatchVerifier,
    EngineAborted,
    InferenceCache,
    parse_faults,
)
from repro.engine import faults
from repro.frontend.parse import parse_module
from repro.workloads.hierarchy import HierarchyShape, project_source

SHAPE = HierarchyShape(base_operations=4, subsystems=2, seed=13)


def _parse(source):
    return parse_module(source)


def _reference(module, violations):
    return Checker(module, violations).check().format()


def _class_names(module):
    return [parsed.name for parsed in module.classes]


class TestTimeoutQuarantine:
    def test_slow_class_is_quarantined_with_engine_timeout(self):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        faults.install(parse_faults("worker:delay:Controller1:arg=1.0"))
        batch = BatchVerifier(
            module, violations, jobs=2, timeout=0.2, retries=0, backoff=0.0
        ).run()
        assert batch.quarantined() == ("Controller1",)
        report = batch.result_for("Controller1").format()
        assert "ENGINE TIMEOUT" in report
        assert "engine-timeout" in report
        assert batch.metrics.timeouts >= 1
        assert batch.metrics.quarantines == 1
        assert not batch.ok

    def test_healthy_classes_unaffected_by_a_timeout(self):
        module, violations = _parse(project_source(SHAPE, pairs=2, correct=False))
        reference = {
            name: result.format()
            for name, result in zip(
                _class_names(module),
                (
                    Checker(module, violations).check_class(parsed)
                    for parsed in module.classes
                ),
            )
        }
        faults.install(parse_faults("worker:delay:Controller0:arg=1.0"))
        batch = BatchVerifier(
            module, violations, jobs=2, timeout=0.2, retries=0, backoff=0.0
        ).run()
        assert batch.quarantined() == ("Controller0",)
        for name in _class_names(module):
            if name == "Controller0":
                continue
            assert batch.result_for(name).format() == reference[name]


class TestBudgetQuarantine:
    def test_tiny_state_budget_quarantines_every_class(self, no_ambient_faults):
        module, violations = _parse(project_source(SHAPE, pairs=1))
        batch = BatchVerifier(
            module, violations, max_states=1, retries=2, backoff=0.0
        ).run()
        assert set(batch.quarantined()) == set(_class_names(module))
        report = batch.merged().format()
        assert "ENGINE BUDGET" in report
        assert batch.metrics.budget_trips == len(module.classes)
        # Budget failures are deterministic: never retried.
        assert batch.metrics.retries == 0
        for entry in batch.metrics.to_dict()["per_class"]:
            assert entry["quarantined"]

    def test_generous_budget_changes_nothing(self):
        module, violations = _parse(project_source(SHAPE, pairs=2, correct=False))
        batch = BatchVerifier(module, violations, max_states=100_000).run()
        assert batch.quarantined() == ()
        assert batch.merged().format() == _reference(module, violations)


class TestRetries:
    def test_transient_fault_is_retried_to_success(self):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        faults.install(parse_faults("worker:raise:Device0:times=1"))
        batch = BatchVerifier(
            module, violations, jobs=2, timeout=30.0, retries=2, backoff=0.0
        ).run()
        assert batch.quarantined() == ()
        assert batch.merged().format() == _reference(module, violations)
        assert batch.metrics.retries == 1

    def test_persistent_fault_exhausts_retries_then_quarantines(self):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        faults.install(parse_faults("worker:raise:Device1"))
        batch = BatchVerifier(
            module, violations, retries=2, backoff=0.0
        ).run()
        assert batch.quarantined() == ("Device1",)
        report = batch.result_for("Device1").format()
        assert "ENGINE CRASH" in report
        assert "after 3 attempts" in report
        assert batch.metrics.retries == 2

    def test_thread_worker_kill_is_survivable(self):
        # In thread pools `kill` degrades to WorkerKilled; the supervisor
        # treats it like any crash.
        module, violations = _parse(project_source(SHAPE, pairs=2))
        faults.install(parse_faults("worker:kill:Controller0:times=1"))
        batch = BatchVerifier(
            module, violations, jobs=2, timeout=30.0, retries=1, backoff=0.0
        ).run()
        assert batch.quarantined() == ()
        assert batch.merged().format() == _reference(module, violations)


@pytest.mark.slow
class TestProcessPoolCrashRecovery:
    def test_killed_worker_quarantines_only_the_poison_class(self, monkeypatch):
        module, violations = _parse(project_source(SHAPE, pairs=2, correct=False))
        monkeypatch.setenv(faults.FAULTS_ENV, "worker:kill:Controller1")
        batch = BatchVerifier(
            module,
            violations,
            jobs=2,
            executor="process",
            timeout=60.0,
            retries=1,
            backoff=0.0,
        ).run()
        assert batch.quarantined() == ("Controller1",)
        report = batch.result_for("Controller1").format()
        assert "ENGINE CRASH" in report
        assert "worker process died" in report
        assert batch.metrics.pool_restarts >= 1
        # Healthy classes match the serial checker byte for byte.
        for parsed in module.classes:
            if parsed.name == "Controller1":
                continue
            assert (
                batch.result_for(parsed.name).format()
                == Checker(module, violations).check_class(parsed).format()
            )

    def test_warm_cache_rerun_after_crash_is_byte_identical(
        self, monkeypatch, tmp_path
    ):
        module, violations = _parse(project_source(SHAPE, pairs=2, correct=False))
        reference = BatchVerifier(module, violations).run().merged().format()

        monkeypatch.setenv(faults.FAULTS_ENV, "worker:kill:Device0")
        crashed = BatchVerifier(
            module,
            violations,
            jobs=2,
            executor="process",
            timeout=60.0,
            retries=0,
            backoff=0.0,
            cache=InferenceCache(tmp_path),
        ).run()
        assert crashed.quarantined() == ("Device0",)

        # Faults off, warm cache: healthy verdicts were cached, the
        # quarantined class was not, and the rerun heals it.
        monkeypatch.delenv(faults.FAULTS_ENV)
        healed = BatchVerifier(
            module, violations, cache=InferenceCache(tmp_path)
        ).run()
        assert healed.quarantined() == ()
        assert healed.merged().format() == reference
        assert healed.metrics.class_misses == 1  # only Device0 re-checked


class TestFailFast:
    def test_fail_fast_raises_engine_aborted(self):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        faults.install(parse_faults("worker:raise:Device0"))
        with pytest.raises(EngineAborted) as excinfo:
            BatchVerifier(
                module, violations, retries=0, backoff=0.0, fail_fast=True
            ).run()
        assert excinfo.value.class_name == "Device0"
        assert "fail-fast" in str(excinfo.value)

    def test_keep_going_is_the_default(self):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        faults.install(parse_faults("worker:raise:Device0"))
        batch = BatchVerifier(module, violations, retries=0, backoff=0.0).run()
        assert batch.quarantined() == ("Device0",)


class TestValidation:
    def test_rejects_bad_supervisor_parameters(self):
        module, violations = _parse(project_source(SHAPE, pairs=1))
        from repro.engine import EngineError

        with pytest.raises(EngineError):
            BatchVerifier(module, violations, timeout=0)
        with pytest.raises(EngineError):
            BatchVerifier(module, violations, retries=-1)
        with pytest.raises(EngineError):
            BatchVerifier(module, violations, backoff=-0.1)

    def test_quarantined_classes_are_never_cached(self):
        module, violations = _parse(project_source(SHAPE, pairs=1))
        cache = InferenceCache(None)
        faults.install(parse_faults("worker:raise:*"))
        first = BatchVerifier(
            module, violations, retries=0, backoff=0.0, cache=cache
        ).run()
        assert set(first.quarantined()) == set(_class_names(module))
        assert cache.stats.writes["class"] == 0
        faults.install(None)
        second = BatchVerifier(module, violations, cache=cache).run()
        assert second.quarantined() == ()
        assert second.metrics.class_hits == 0  # nothing poisoned the cache
