"""The batch engine: parity with the serial checker, caching, pooling."""

import pytest

from repro.core.checker import Checker
from repro.engine import (
    BatchVerifier,
    EngineError,
    InferenceCache,
    cached_behavior_dfa,
    verify_module,
    verify_path,
)
from repro.frontend.parse import parse_module
from repro.workloads.hierarchy import (
    HierarchyShape,
    lifecycle_claim,
    module_source,
    project_files,
    project_source,
)

SHAPE = HierarchyShape(base_operations=4, subsystems=2, seed=13)


def _parse(source):
    return parse_module(source)


def _reference(module, violations):
    return Checker(module, violations).check().format()


class TestParityWithChecker:
    @pytest.mark.parametrize("correct", [True, False])
    def test_project_parity_serial(self, correct):
        module, violations = _parse(project_source(SHAPE, pairs=3, correct=correct))
        batch = BatchVerifier(module, violations, jobs=1).run()
        assert batch.merged().format() == _reference(module, violations)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_project_parity_parallel(self, jobs):
        module, violations = _parse(project_source(SHAPE, pairs=3, correct=False))
        batch = BatchVerifier(module, violations, jobs=jobs).run()
        assert batch.merged().format() == _reference(module, violations)

    def test_single_module_with_claim(self):
        source = module_source(SHAPE, claim=lifecycle_claim(SHAPE))
        module, violations = _parse(source)
        batch = verify_module(module, violations, jobs=2)
        assert batch.merged().format() == _reference(module, violations)
        assert batch.ok

    def test_subset_violations_surface_in_module_result(self):
        module, violations = _parse(
            "@sys\n"
            "class Odd:\n"
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        with open('x'):\n"
            "            pass\n"
            "        return []\n"
        )
        assert violations
        batch = BatchVerifier(module, violations).run()
        assert batch.merged().format() == _reference(module, violations)
        assert not batch.module_result.ok

    def test_result_for(self):
        module, violations = _parse(project_source(SHAPE, pairs=2, correct=False))
        batch = BatchVerifier(module, violations).run()
        assert batch.result_for("Controller1") is not None
        assert not batch.result_for("Controller1").ok
        assert batch.result_for("Device0").ok
        assert batch.result_for("Nope") is None


class TestValidation:
    def test_rejects_zero_jobs(self):
        module, violations = _parse(module_source(SHAPE))
        with pytest.raises(EngineError):
            BatchVerifier(module, violations, jobs=0)

    def test_rejects_unknown_executor(self):
        module, violations = _parse(module_source(SHAPE))
        with pytest.raises(EngineError):
            BatchVerifier(module, violations, executor="greenlet")


class TestCacheIntegration:
    def test_warm_run_is_fully_cached_and_identical(self, tmp_path):
        module, violations = _parse(project_source(SHAPE, pairs=3))
        cold = BatchVerifier(
            module, violations, cache=InferenceCache(tmp_path)
        ).run()
        assert cold.metrics.class_hits == 0
        assert cold.metrics.class_misses == 6
        assert cold.metrics.method_hits == 0

        warm = BatchVerifier(
            module, violations, cache=InferenceCache(tmp_path)
        ).run()
        assert warm.metrics.fully_cached
        assert warm.metrics.class_hits == 6
        assert warm.merged().format() == cold.merged().format()

    def test_method_layer_survives_class_edit(self, tmp_path):
        source = project_source(SHAPE, pairs=2)
        module, violations = _parse(source)
        BatchVerifier(module, violations, cache=InferenceCache(tmp_path)).run()

        # Append an unrelated trailing class: every original class keeps
        # its verdict; the new class still reuses nothing but also
        # invalidates nothing.
        extra = (
            "\n@sys\n"
            "class Appendix:\n"
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        return []\n"
        )
        module2, violations2 = _parse(source + extra)
        second = BatchVerifier(
            module2, violations2, cache=InferenceCache(tmp_path)
        ).run()
        assert second.metrics.class_hits == 4
        assert second.metrics.class_misses == 1  # only Appendix

    def test_memory_only_cache_works_within_one_run(self):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        cache = InferenceCache(None)
        first = BatchVerifier(module, violations, cache=cache).run()
        assert first.metrics.class_misses == 4
        second = BatchVerifier(module, violations, cache=cache).run()
        assert second.metrics.fully_cached

    def test_cached_behavior_dfa_for_composites(self, tmp_path):
        module, violations = _parse(project_source(SHAPE, pairs=1))
        cache = InferenceCache(tmp_path)
        BatchVerifier(module, violations, cache=cache).run()
        classes = {parsed.name: parsed for parsed in module.classes}
        composite = cached_behavior_dfa(cache, classes["Controller0"], classes)
        assert composite is not None
        assert composite.accepts(())  # behavior always accepts the empty trace
        # Base-class checks never determinize, so no DFA is stored.
        assert cached_behavior_dfa(cache, classes["Device0"], classes) is None

    def test_corrupt_entry_heals_and_is_counted(self, tmp_path):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        cold = BatchVerifier(
            module, violations, cache=InferenceCache(tmp_path)
        ).run()
        victim = next((tmp_path / "class").rglob("*.json"))
        victim.write_text("{ truncated")
        healed = BatchVerifier(
            module, violations, cache=InferenceCache(tmp_path)
        ).run()
        assert healed.metrics.corrupt_entries == 1
        assert healed.metrics.class_misses == 1  # only the corrupted class
        assert "cache healed          1 corrupt entry" in healed.metrics.format()
        assert healed.merged().format() == cold.merged().format()

    def test_fully_cached_is_false_for_empty_module(self):
        module, violations = _parse("x = 1\n")
        batch = BatchVerifier(module, violations, cache=InferenceCache(None)).run()
        assert not batch.metrics.fully_cached


class TestProcessExecutor:
    def test_process_pool_parity(self):
        module, violations = _parse(project_source(SHAPE, pairs=2))
        batch = BatchVerifier(
            module, violations, jobs=2, executor="process"
        ).run()
        assert batch.merged().format() == _reference(module, violations)
        assert batch.metrics.executor == "process"


class TestVerifyPath:
    def test_file(self, tmp_path):
        target = tmp_path / "plant.py"
        target.write_text(module_source(SHAPE))
        batch = verify_path(target)
        assert batch.ok
        assert batch.metrics.classes == 2

    def test_directory_project(self, tmp_path):
        project_files(SHAPE, 3, tmp_path)
        batch = verify_path(tmp_path, jobs=2)
        assert batch.metrics.classes == 6
        assert batch.metrics.waves == 2
        assert batch.ok


class TestMetrics:
    def test_timings_cover_every_class(self):
        module, violations = _parse(project_source(SHAPE, pairs=3))
        batch = BatchVerifier(module, violations, jobs=2).run()
        metrics = batch.metrics
        assert {t.class_name for t in metrics.timings} == {
            parsed.name for parsed in module.classes
        }
        assert metrics.waves == 2
        assert {t.wave for t in metrics.timings} == {0, 1}
        assert metrics.class_hit_rate == 0.0
        text = metrics.format()
        assert "6 in 2 wave(s)" in text
        assert "[checked]" in text

    def test_to_dict_roundtrips_through_json(self):
        import json

        module, violations = _parse(project_source(SHAPE, pairs=2))
        metrics = BatchVerifier(module, violations).run().metrics
        assert json.loads(json.dumps(metrics.to_dict()))["classes"] == 4
