"""NuSMV concrete-syntax building blocks.

Tiny, dependency-free helpers for emitting well-formed NuSMV text:
identifier mangling (dots are not legal in NuSMV symbols), enumerated
``VAR``/``IVAR`` declarations, ``case`` expressions, and LTL formula
rendering.  Kept separate from :mod:`repro.nusmv.emit` so tests can
check syntax rules in isolation.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

_IDENT_PATTERN = re.compile(r"[^A-Za-z0-9_]")


def mangle(name: str) -> str:
    """Turn an event label or state name into a NuSMV identifier.

    ``a.open`` becomes ``a_open``; anything else non-alphanumeric is
    underscored; a leading digit gets an ``s_`` prefix.
    """
    text = _IDENT_PATTERN.sub("_", str(name))
    if not text or text[0].isdigit():
        text = "s_" + text
    return text


def unique_names(names: Sequence[str]) -> dict[str, str]:
    """Map each input name to a unique mangled identifier (stable order)."""
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for name in names:
        base = mangle(name)
        candidate = base
        counter = 1
        while candidate in used:
            counter += 1
            candidate = f"{base}_{counter}"
        used.add(candidate)
        mapping[name] = candidate
    return mapping


def enum_declaration(variable: str, values: Iterable[str], *, input_var: bool = False) -> str:
    """One ``VAR``/``IVAR`` declaration with an enumerated domain."""
    keyword = "IVAR" if input_var else "VAR"
    domain = ", ".join(values)
    return f"{keyword}\n  {variable} : {{{domain}}};"


def case_expression(branches: Sequence[tuple[str, str]], indent: str = "    ") -> str:
    """A ``case ... esac`` expression from (condition, value) pairs.

    Callers are responsible for including a ``TRUE`` default branch —
    NuSMV requires cases to be exhaustive.
    """
    lines = ["case"]
    for condition, value in branches:
        lines.append(f"{indent}{condition} : {value};")
    lines.append(f"{indent[:-2]}esac")
    return "\n".join(lines)


def conjunction(terms: Sequence[str]) -> str:
    """``t1 & t2 & ...`` (``TRUE`` for no terms)."""
    if not terms:
        return "TRUE"
    if len(terms) == 1:
        return terms[0]
    return " & ".join(f"({term})" for term in terms)


def disjunction(terms: Sequence[str]) -> str:
    """``t1 | t2 | ...`` (``FALSE`` for no terms)."""
    if not terms:
        return "FALSE"
    if len(terms) == 1:
        return terms[0]
    return " | ".join(f"({term})" for term in terms)
