"""Execution-trace recording for the runtime monitor.

The static checker reasons about *all* traces; the runtime monitor
observes *one* — the sequence of operation calls an actual execution
performs.  Recorded traces use the same event vocabulary as the static
models (bare operation names, or ``field.method`` when the recorder is
given a field prefix), so a recorded trace can be replayed directly
against a :class:`repro.core.spec.ClassSpec` automaton or an LTLf claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TraceRecorder:
    """An append-only event log shared by monitored instances."""

    events: list[str] = field(default_factory=list)

    def record(self, event: str) -> None:
        self.events.append(event)

    def as_trace(self) -> tuple[str, ...]:
        return tuple(self.events)

    def clear(self) -> None:
        self.events.clear()

    def __iter__(self) -> Iterator[str]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def format(self) -> str:
        return ", ".join(self.events)

    def scoped(self, field_name: str) -> "ScopedRecorder":
        """A view recording ``field_name.method`` events into this log.

        A composite's subsystem instance scopes its events the way the
        static models do (``Valve`` used as field ``a`` emits ``a.test``),
        so one shared recorder collects the *interleaved* hierarchical
        trace — directly replayable against ``spec.nfa(prefix="a.")``.
        Scoping nests: ``r.scoped("a").scoped("b")`` records ``a.b.m``.
        """
        return ScopedRecorder(root=self, prefix=_join_prefix("", field_name))


@dataclass(frozen=True)
class ScopedRecorder:
    """A prefixing view over a shared :class:`TraceRecorder`.

    Only :meth:`record` is scoped; the reading side lives on the root
    recorder, which owns the single interleaved event list.
    """

    root: TraceRecorder
    prefix: str

    def record(self, event: str) -> None:
        self.root.record(self.prefix + event)

    def scoped(self, field_name: str) -> "ScopedRecorder":
        return ScopedRecorder(
            root=self.root, prefix=_join_prefix(self.prefix, field_name)
        )


def _join_prefix(prefix: str, field_name: str) -> str:
    """Join a field name onto an event prefix, normalizing the dots.

    Accepts a bare field name (``"a"``) or an already-dotted one
    (``"a."``) and always produces exactly one trailing dot, so nested
    scopes never emit ``a..b.m`` or ``ab.m``.
    """
    if not field_name:
        raise ValueError("scoped() needs a non-empty field name")
    return prefix + field_name.rstrip(".") + "."
