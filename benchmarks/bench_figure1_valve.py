"""Figure 1 — the Valve behavior diagram generated from Listing 2.1.

Regenerates the diagram (DOT) from the annotations and asserts its exact
node and edge structure: an entry arrow into ``test``, arcs
test→{open, clean}, open→close, {close, clean}→test, and double circles
on the final operations.  Times the parse → spec → diagram pipeline.
"""

from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.paper import VALVE
from repro.viz.dot import spec_diagram


def _generate_figure1() -> str:
    module, violations = parse_module(VALVE)
    assert violations == []
    return spec_diagram(ClassSpec.of(module.get_class("Valve")))


def test_figure1_valve_diagram(benchmark):
    dot = benchmark(_generate_figure1)

    # Initial arrow.
    assert '__start__ -> "test";' in dot
    # Final markers.
    assert '"close" [shape=doublecircle];' in dot
    assert '"clean" [shape=doublecircle];' in dot
    assert '"test" [shape=circle];' in dot
    assert '"open" [shape=circle];' in dot
    # The five arcs of the figure, and nothing else.
    edges = sorted(
        line.strip() for line in dot.splitlines() if '" -> "' in line
    )
    assert edges == [
        '"clean" -> "test";',
        '"close" -> "test";',
        '"open" -> "close";',
        '"test" -> "clean";',
        '"test" -> "open";',
    ]
    print("\nFigure 1 (reproduced as DOT):")
    print(dot)


def test_figure1_language_shape(benchmark):
    """The diagram denotes the valve lifecycle language; time acceptance
    checks over representative words."""
    module, _ = parse_module(VALVE)
    dfa = ClassSpec.of(module.get_class("Valve")).dfa()
    words = [
        (True, ()),
        (True, ("test", "clean")),
        (True, ("test", "open", "close")),
        (True, ("test", "open", "close", "test", "clean")),
        (False, ("test",)),
        (False, ("test", "open")),
        (False, ("open",)),
        (False, ("test", "open", "clean")),
    ]

    def check_all():
        for expected, word in words:
            assert dfa.accepts(word) == expected, word
        return len(words)

    assert benchmark(check_all) == 8
