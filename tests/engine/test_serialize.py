"""Diagnostic serialization must round-trip exactly (cache correctness)."""

import json

from repro.core.checker import Checker
from repro.engine.serialize import (
    diagnostic_from_dict,
    diagnostic_to_dict,
    diagnostics_from_list,
    diagnostics_to_list,
)
from repro.frontend.parse import parse_module
from repro.paper import SECTION_2_MODULE
from repro.workloads.hierarchy import HierarchyShape, lifecycle_claim, module_source


def _diagnostics(source):
    module, violations = parse_module(source)
    return Checker(module, violations).check().diagnostics


class TestRoundTrip:
    def test_counterexample_diagnostics_round_trip(self):
        originals = _diagnostics(SECTION_2_MODULE)
        assert originals  # BadSector fails
        for original in originals:
            assert diagnostic_from_dict(diagnostic_to_dict(original)) == original

    def test_claim_diagnostics_round_trip(self):
        shape = HierarchyShape(base_operations=3, subsystems=2, seed=1)
        source = module_source(shape, correct=False, claim=lifecycle_claim(shape))
        originals = _diagnostics(source)
        assert diagnostics_from_list(diagnostics_to_list(originals)) == originals

    def test_payload_survives_json(self):
        originals = _diagnostics(SECTION_2_MODULE)
        reloaded = diagnostics_from_list(
            json.loads(json.dumps(diagnostics_to_list(originals)))
        )
        assert reloaded == originals

    def test_formatting_is_preserved(self):
        from repro.core.diagnostics import CheckResult

        originals = _diagnostics(SECTION_2_MODULE)
        reloaded = diagnostics_from_list(diagnostics_to_list(originals))
        assert (
            CheckResult(diagnostics=reloaded).format()
            == CheckResult(diagnostics=list(originals)).format()
        )
