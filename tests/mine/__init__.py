"""Tests of the passive model-mining pipeline (repro.mine)."""
