"""Monitoring composites and their subsystems simultaneously.

The composite's own operations are guarded by its spec; its subsystem
instances carry their own monitors.  A buggy composite body trips the
*subsystem's* monitor mid-operation — the dynamic mirror of the static
INVALID SUBSYSTEM USAGE verdict.
"""

import pytest

from repro.frontend.decorators import op, op_final, op_initial, op_initial_final, sys
from repro.runtime.monitor import (
    IncompleteLifecycleError,
    OrderViolationError,
    finalize,
    history_of,
    monitored,
)


def build_classes():
    @sys
    class Pump:
        @op_initial
        def prime(self):
            return ["run"]

        @op
        def run(self):
            return ["stop"]

        @op_final
        def stop(self):
            return ["prime"]

    @sys(["p"])
    class GoodStation:
        def __init__(self):
            self.p = Pump()

        @op_initial_final
        def cycle(self):
            self.p.prime()
            self.p.run()
            self.p.stop()
            return ["cycle"]

    @sys(["p"])
    class BadStation:
        def __init__(self):
            self.p = Pump()

        @op_initial_final
        def cycle(self):
            self.p.run()  # BUG: run before prime
            return []

    monitored(Pump)
    monitored(GoodStation)
    monitored(BadStation)
    return Pump, GoodStation, BadStation


class TestCompositeMonitoring:
    def test_good_station_runs_clean(self):
        _pump, good_station, _bad = build_classes()
        station = good_station()
        station.cycle()
        station.cycle()
        finalize(station)
        finalize(station.p)
        assert history_of(station) == ("cycle", "cycle")
        assert history_of(station.p) == ("prime", "run", "stop") * 2

    def test_bad_station_trips_subsystem_monitor(self):
        _pump, _good, bad_station = build_classes()
        station = bad_station()
        with pytest.raises(OrderViolationError) as exc:
            station.cycle()
        assert "Pump.run" in str(exc.value)

    def test_composite_own_order_enforced(self):
        _pump, good_station, _bad = build_classes()
        station = good_station()
        station.cycle()
        finalize(station)
        with pytest.raises(OrderViolationError):
            station.cycle()  # finalized instances reject further calls

    def test_subsystem_left_open_caught_at_finalize(self):
        @sys
        class Door:
            @op_initial
            def unlock(self):
                return ["lock"]

            @op_final
            def lock(self):
                return ["unlock"]

        monitored(Door)
        door = Door()
        door.unlock()
        with pytest.raises(IncompleteLifecycleError):
            finalize(door)

    def test_two_stations_do_not_interfere(self):
        _pump, good_station, _bad = build_classes()
        first, second = good_station(), good_station()
        first.cycle()
        second.cycle()
        finalize(first)
        # second is also finalizable independently.
        finalize(second)
        assert history_of(first.p) == ("prime", "run", "stop")
        assert history_of(second.p) == ("prime", "run", "stop")
