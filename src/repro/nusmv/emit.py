"""Emission of NuSMV models from extracted automata.

Shelley delegates model checking to NuSMV by encoding the extracted NFA
(a regular language) as an ω-regular structure; this module reproduces
that interface.  The encoding is the standard finite-to-infinite lifting:

* the event input variable gains a reserved ``_end`` value;
* a fresh ``done`` state is entered from any *accepting* state on
  ``_end`` and self-loops on ``_end`` forever;
* any other move lands in a ``dead`` sink.

A finite word is accepted by the DFA iff the lifted structure has a run
reading the word followed by ``_end^ω`` that reaches ``done`` — which is
what the emitted ``JUSTICE``/``LTLSPEC`` lines quantify over.

NuSMV itself is not bundled (offline environment; substitution recorded
in DESIGN.md): the verdicts in this reproduction come from the native
automata checker, and this emitter is golden-tested for syntax and
structure so the artifact stays interoperable with a real NuSMV.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.dfa import DFA
from repro.ltlf.ast import (
    And,
    Atom,
    Bottom,
    Eventually,
    Formula,
    Globally,
    Next,
    Not,
    Or,
    Release,
    Top,
    Until,
    WeakNext,
    WeakUntil,
)
from repro.nusmv.syntax import (
    case_expression,
    disjunction,
    enum_declaration,
    unique_names,
)

#: Reserved identifiers of the encoding.
END_EVENT = "_end"
DONE_STATE = "done"
DEAD_STATE = "dead"


def emit_dfa(dfa: DFA, module_name: str = "main") -> str:
    """Emit a NuSMV module for the ω-lifting of ``dfa``."""
    ordered_states = sorted(dfa.states, key=str)
    ordered_events = sorted(dfa.alphabet)
    state_names = unique_names([str(s) for s in ordered_states] + [DONE_STATE, DEAD_STATE])
    event_names = unique_names(list(ordered_events) + [END_EVENT])

    def state_id(state) -> str:
        return state_names[str(state)]

    lines = [f"MODULE {module_name}"]
    lines.append(
        enum_declaration("event", [event_names[e] for e in ordered_events] + [event_names[END_EVENT]], input_var=True)
    )
    lines.append(
        enum_declaration(
            "state",
            [state_id(s) for s in ordered_states]
            + [state_names[DONE_STATE], state_names[DEAD_STATE]],
        )
    )
    branches: list[tuple[str, str]] = []
    for state in ordered_states:
        for event in ordered_events:
            successor = dfa.successor(state, event)
            if successor is None:
                continue
            branches.append(
                (
                    f"state = {state_id(state)} & event = {event_names[event]}",
                    state_id(successor),
                )
            )
    for state in sorted(dfa.accepting_states, key=str):
        branches.append(
            (
                f"state = {state_id(state)} & event = {event_names[END_EVENT]}",
                state_names[DONE_STATE],
            )
        )
    branches.append(
        (
            f"state = {state_names[DONE_STATE]} & event = {event_names[END_EVENT]}",
            state_names[DONE_STATE],
        )
    )
    branches.append(("TRUE", state_names[DEAD_STATE]))

    lines.append("ASSIGN")
    lines.append(f"  init(state) := {state_id(dfa.initial_state)};")
    lines.append("  next(state) := " + case_expression(branches, indent="    ") + ";")
    lines.append("DEFINE")
    accepting_terms = [
        f"state = {state_id(s)}" for s in sorted(dfa.accepting_states, key=str)
    ]
    lines.append(f"  accepting := {disjunction(accepting_terms)};")
    lines.append(f"  finished := state = {state_names[DONE_STATE]};")
    lines.append("JUSTICE")
    lines.append("  finished;")
    return "\n".join(lines) + "\n"


def formula_to_nusmv(formula: Formula, event_names: dict[str, str]) -> str:
    """Render an LTLf formula as NuSMV LTL over the lifted structure.

    Atoms become ``event = <id>``; the finite-trace operators are guarded
    by the end-marker: positions after the word has ended (``event =
    _end``) satisfy no atom, strong next requires a real next event, and
    ``G``/weak operators tolerate the ``_end`` tail.  ``W`` (absent from
    NuSMV) expands to ``(φ U ψ) | G φ``.
    """
    end_id = event_names[END_EVENT]
    in_word = f"event != {end_id}"

    def render(node: Formula) -> str:
        if isinstance(node, Top):
            return "TRUE"
        if isinstance(node, Bottom):
            return "FALSE"
        if isinstance(node, Atom):
            return f"event = {event_names[node.name]}"
        if isinstance(node, Not):
            return f"!({render(node.operand)})"
        if isinstance(node, And):
            return " & ".join(f"({render(op)})" for op in node.operands)
        if isinstance(node, Or):
            return " | ".join(f"({render(op)})" for op in node.operands)
        if isinstance(node, Next):
            return f"X (({in_word}) & ({render(node.operand)}))"
        if isinstance(node, WeakNext):
            return f"X ((!({in_word})) | ({render(node.operand)}))"
        if isinstance(node, Eventually):
            return f"F (({in_word}) & ({render(node.operand)}))"
        if isinstance(node, Globally):
            return f"G ((!({in_word})) | ({render(node.operand)}))"
        if isinstance(node, Until):
            left = f"(!({in_word})) | ({render(node.left)})"
            right = f"({in_word}) & ({render(node.right)})"
            return f"(({left}) U ({right}))"
        if isinstance(node, WeakUntil):
            left = f"(!({in_word})) | ({render(node.left)})"
            right = f"({in_word}) & ({render(node.right)})"
            return f"((({left}) U ({right})) | G ({left}))"
        if isinstance(node, Release):
            left = f"({in_word}) & ({render(node.left)})"
            right = f"(!({in_word})) | ({render(node.right)})"
            return f"(({left}) V ({right}))"
        raise TypeError(f"not a Formula: {node!r}")

    return render(formula)


def emit_model(
    dfa: DFA,
    claims: Sequence[Formula] = (),
    module_name: str = "main",
) -> str:
    """Emit the lifted DFA plus one ``LTLSPEC`` per claim."""
    text = emit_dfa(dfa, module_name)
    if not claims:
        return text
    event_names = unique_names(sorted(dfa.alphabet) + [END_EVENT])
    lines = [text.rstrip("\n")]
    for claim in claims:
        lines.append(f"LTLSPEC {formula_to_nusmv(claim, event_names)};")
    return "\n".join(lines) + "\n"
