"""Sharded verification: deterministic plans, byte-identical merges.

The load-bearing property is differential: for any project and any
shard count, merging the per-shard results must reproduce the serial
report *byte for byte* (same contract the incremental engine honors).
The subprocess tests then pin the same property end to end through
``repro check --shards`` workers and the ``repro coordinate`` driver,
including cross-worker cache warming through a live ``repro cache
serve`` daemon.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    BatchVerifier,
    EngineError,
    InferenceCache,
    coordinate,
    merge_shard_results,
    plan_shards,
    run_shard,
    shard_result_from_dict,
    shard_result_to_dict,
)
from repro.engine.backends.server import run_cache_server
from repro.frontend.parse import parse_module
from repro.workloads.hierarchy import (
    HierarchyShape,
    project_source,
)

SHAPE = HierarchyShape(base_operations=4, subsystems=2, seed=29)


def _project(pairs=3, correct=False):
    return parse_module(project_source(SHAPE, pairs=pairs, correct=correct))


def _serial_report(module, violations):
    return BatchVerifier(module, violations).run().merged().format()


def _sharded_report(module, violations, shards):
    plans = plan_shards(module, shards)
    results = []
    for plan in plans:
        batch = run_shard(module, violations, plan)
        # Round-trip through the wire format, exactly like coordinate().
        payload = json.loads(json.dumps(shard_result_to_dict(plan, batch)))
        results.append(shard_result_from_dict(payload))
    return merge_shard_results(module, violations, results)


class TestShardPlans:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_partition_is_disjoint_and_complete(self, shards):
        module, _ = _project()
        plans = plan_shards(module, shards)
        assert len(plans) == shards
        full = BatchVerifier(module).plan().classes()
        seen = set()
        for index, plan in enumerate(plans):
            assert plan.index == index
            assert plan.shards == shards
            assert not (seen & plan.classes)
            seen |= plan.classes
        assert seen == full

    def test_plans_are_deterministic(self):
        module, _ = _project()
        first = plan_shards(module, 3)
        second = plan_shards(module, 3)
        for a, b in zip(first, second):
            assert a.classes == b.classes
            assert a.waves == b.waves

    def test_waves_balance_each_layer(self):
        module, _ = _project(pairs=4)
        plans = plan_shards(module, 2)
        # Round-robin within each wave: shard sizes differ by at most
        # one class per wave.
        for wave_index in range(len(plans[0].waves)):
            sizes = [
                sum(1 for name in plan.waves[wave_index] if name in plan.classes)
                for plan in plans
            ]
            assert max(sizes) - min(sizes) <= 1

    def test_round_trip_through_dict(self):
        module, _ = _project()
        for plan in plan_shards(module, 2):
            clone = type(plan).from_dict(plan.to_dict())
            assert clone == plan

    def test_rejects_nonpositive_shards(self):
        module, _ = _project()
        with pytest.raises(EngineError):
            plan_shards(module, 0)


class TestMergeDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    @pytest.mark.parametrize("correct", [True, False])
    def test_merged_report_is_byte_identical(self, shards, correct):
        module, violations = _project(correct=correct)
        serial = _serial_report(module, violations)
        merged = _sharded_report(module, violations, shards)
        assert merged.merged().format() == serial

    def test_more_shards_than_classes(self):
        module, violations = _project(pairs=1)
        shards = len(module.classes) + 3
        merged = _sharded_report(module, violations, shards)
        assert merged.merged().format() == _serial_report(module, violations)

    def test_merge_rejects_missing_shard(self):
        module, violations = _project()
        plans = plan_shards(module, 2)
        batch = run_shard(module, violations, plans[0])
        only_half = [
            shard_result_from_dict(shard_result_to_dict(plans[0], batch))
        ]
        with pytest.raises(EngineError, match="incomplete shard set"):
            merge_shard_results(module, violations, only_half)

    def test_merge_sums_counters_and_takes_max_wall(self):
        module, violations = _project()
        plans = plan_shards(module, 2)
        results = []
        for plan in plans:
            cache = InferenceCache(backend=None)
            batch = run_shard(module, violations, plan, cache=cache)
            results.append(
                shard_result_from_dict(shard_result_to_dict(plan, batch))
            )
        merged = merge_shard_results(module, violations, results)
        assert merged.metrics.classes == sum(len(p.classes) for p in plans)
        assert merged.metrics.wall_seconds == max(
            float(r.metrics["wall_seconds"]) for r in results
        )
        assert merged.metrics.class_misses == sum(
            int(r.metrics["class_misses"]) for r in results
        )


def _write_project(tmp_path: Path) -> Path:
    source = project_source(SHAPE, pairs=2, correct=False)
    target = tmp_path / "project.py"
    target.write_text(source, encoding="utf-8")
    return target


def _cli(args, cwd):
    import os

    import repro

    env = dict(os.environ)
    # The subprocess runs from ``cwd``; a relative PYTHONPATH inherited
    # from the test runner would stop resolving there.
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        timeout=120,
    )


class TestCoordinateSubprocess:
    def test_coordinate_matches_serial_check(self, tmp_path):
        target = _write_project(tmp_path)
        serial = _cli(["check", str(target)], tmp_path)
        run = coordinate(target, shards=2)
        assert run.batch.merged().format() + "\n" == serial.stdout
        assert len(run.shard_metrics) == 2

    def test_cross_worker_remote_hits(self, tmp_path):
        target = _write_project(tmp_path)
        server = run_cache_server(tmp_path / "served")
        try:
            cold = coordinate(
                target,
                shards=2,
                worker_cache_root=tmp_path / "cold-workers",
                remote_cache=server.endpoint,
            )
            assert cold.batch.metrics.remote_puts > 0
            # A second fleet with empty local trees must be warmed
            # entirely across the wire.
            warm = coordinate(
                target,
                shards=2,
                worker_cache_root=tmp_path / "warm-workers",
                remote_cache=server.endpoint,
            )
            assert warm.batch.metrics.remote_hits > 0
            assert warm.batch.metrics.class_misses == 0
            assert (
                warm.batch.merged().format() == cold.batch.merged().format()
            )
            # And the report still matches a cache-free serial run.
            serial = BatchVerifier(*_load(target)).run().merged().format()
            assert warm.batch.merged().format() == serial
        finally:
            server.shutdown()
            server.server_close()


def _load(target):
    from repro.frontend.parse import parse_file

    return parse_file(str(target))


class TestRemoteCacheCLI:
    def test_check_remote_cache_flag_warms_second_worker(self, tmp_path):
        target = _write_project(tmp_path)
        server = run_cache_server(tmp_path / "served")
        try:
            first = _cli(
                [
                    "check", str(target),
                    "--cache", "--cache-dir", str(tmp_path / "w1"),
                    "--remote-cache", server.endpoint,
                ],
                tmp_path,
            )
            assert first.returncode in (0, 1), first.stderr
            second = _cli(
                [
                    "check", str(target), "--stats",
                    "--cache", "--cache-dir", str(tmp_path / "w2"),
                    "--remote-cache", server.endpoint,
                ],
                tmp_path,
            )
            assert second.returncode == first.returncode
            assert "remote cache" in second.stdout
            report_first = first.stdout.split("engine metrics:")[0]
            report_second = second.stdout.split("engine metrics:")[0]
            assert report_first.strip() == report_second.strip()
        finally:
            server.shutdown()
            server.server_close()

    def test_shard_flags_validate(self, tmp_path):
        target = _write_project(tmp_path)
        missing_index = _cli(["check", str(target), "--shards", "2"], tmp_path)
        assert missing_index.returncode != 0
        assert "--shard-index" in missing_index.stderr
        bad_index = _cli(
            ["check", str(target), "--shards", "2", "--shard-index", "2"],
            tmp_path,
        )
        assert bad_index.returncode != 0
        incremental = _cli(
            [
                "check", str(target),
                "--shards", "2", "--shard-index", "0", "--incremental",
            ],
            tmp_path,
        )
        assert incremental.returncode != 0
        assert "incompatible" in incremental.stderr
