"""The pluggable storage protocol behind the inference cache.

:class:`~repro.engine.cache.InferenceCache` owns everything *semantic*
about caching — envelopes, seals, self-healing, the counter contract,
the in-memory layer — while a :class:`CacheBackend` owns the *transport*:
where sealed envelope **text** physically lives.  Three implementations
ship (docs/distributed.md):

* :class:`~repro.engine.backends.local.LocalDirBackend` — the classic
  ``.repro-cache/`` directory tree (sharded paths, advisory write locks,
  atomic writes through :mod:`repro.engine.store`);
* :class:`~repro.engine.backends.remote.RemoteHTTPBackend` — GET/PUT of
  sealed envelopes against a ``repro cache serve`` daemon;
* :class:`~repro.engine.backends.tiered.TieredBackend` — local
  read-through over a remote, with asynchronous write-behind and clean
  degradation to local-only when the remote misbehaves.

The protocol is deliberately text-in/text-out: a backend never parses
an envelope, so a corrupt remote byte stream can only ever become a
detected corruption on the client (the seal check lives in the cache),
never wrong output.

**Error contract.**  ``get_text`` returns ``None`` for a plain miss and
raises :class:`OSError` for an *unreadable* entry (the cache heals it);
an unreachable remote raises the :class:`RemoteUnavailable` subclass,
which the cache treats as a plain miss — a down cache server is not a
corrupt entry.  ``put_text`` raises :class:`OSError` on a failed
persist (the cache counts it and keeps serving from memory).

Modules in this package must not import :mod:`repro.engine.cache` at
module level — the cache imports the package, and envelope helpers like
``classify_entry`` are imported lazily where needed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any


class RemoteUnavailable(OSError):
    """The remote cache endpoint could not serve the request.

    A subclass of :class:`OSError` so generic persistence error handling
    keeps working, but distinguishable: readers treat it as a plain miss
    (nothing to heal), and :class:`TieredBackend` feeds it into its
    degradation counter.
    """


class CacheBackend:
    """Where sealed cache-envelope text lives; see the module docstring.

    Subclasses implement :meth:`get_text` / :meth:`put_text` /
    :meth:`delete`.  :meth:`bind` attaches the owning cache, whose
    ``stats`` (:class:`~repro.engine.cache.CacheStats`) and ``tracer``
    the backend uses for counters and structured events — the owner is
    duck-typed to keep this package import-cycle-free.
    """

    #: Does this backend have an enumerable local directory tree?  The
    #: cache's scan operations (``entry_count``, ``verify``, ``clear``,
    #: orphan GC) run over :attr:`local_root` when it is set.
    supports_scan = False

    #: The local directory the cache's scan/GC/state machinery operates
    #: on, or ``None`` when there is no local tree (pure remote).
    local_root: Path | None = None

    def __init__(self) -> None:
        self._owner: Any = None

    def bind(self, owner: Any) -> None:
        """Attach the owning cache (for ``owner.stats`` / ``owner.tracer``)."""
        self._owner = owner

    # -- counter/event plumbing (no-ops until bound) --------------------

    def _stats(self) -> Any:
        owner = self._owner
        return None if owner is None else owner.stats

    def _event(self, name: str, **attrs: Any) -> None:
        owner = self._owner
        if owner is not None:
            owner.tracer.event(name, **attrs)

    # -- the transport protocol ----------------------------------------

    def get_text(self, namespace: str, key: str) -> str | None:
        """The stored envelope text, ``None`` on a plain miss.

        Raises :class:`OSError` for an unreadable entry (healed by the
        cache) or :class:`RemoteUnavailable` (treated as a miss).
        """
        raise NotImplementedError

    def put_text(self, namespace: str, key: str, text: str) -> None:
        """Persist envelope text; raises :class:`OSError` on failure."""
        raise NotImplementedError

    def delete(self, namespace: str, key: str) -> bool:
        """Best-effort removal; ``True`` if an entry was deleted."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Wait for any deferred writes to settle (write-behind tiers)."""

    def close(self) -> None:
        """Release background resources; the backend stays usable-ish
        for reads but owes no further deferred work."""
