"""Method dependency extraction (§3.1) — including the exact node/arc
structure the paper spells out for Listing 3.1's Sector (Figure 3)."""

from repro.core.dependency import EntryNode, ExitNode, extract_dependency_graph


class TestSectorGraph:
    """§3.1 narrates this example in full; every sentence is asserted."""

    def test_four_entry_nodes(self, sector):
        graph = extract_dependency_graph(sector)
        assert {entry.method for entry in graph.entries} == {
            "open_a",
            "clean_a",
            "close_a",
            "open_b",
        }

    def test_one_exit_per_return(self, sector):
        graph = extract_dependency_graph(sector)
        # open_a has 2 returns, clean_a 1, close_a 1, open_b 2.
        assert len(graph.exits_of("open_a")) == 2
        assert len(graph.exits_of("clean_a")) == 1
        assert len(graph.exits_of("close_a")) == 1
        assert len(graph.exits_of("open_b")) == 2
        assert len(graph.exits) == 6

    def test_entry_links_to_its_exits(self, sector):
        graph = extract_dependency_graph(sector)
        entry = graph.entry("open_a")
        successors = graph.successors(entry)
        assert set(successors) == set(graph.exits_of("open_a"))

    def test_exit_a_links_to_close_a_and_open_b(self, sector):
        # "since exit node (A) returns ["close_a", "open_b"], we link exit
        # node (A) to the entry node of close_a, and to the entry of open_b."
        graph = extract_dependency_graph(sector)
        exit_a = next(
            node
            for node in graph.exits_of("open_a")
            if node.next_methods == ("close_a", "open_b")
        )
        successors = set(graph.successors(exit_a))
        assert successors == {graph.entry("close_a"), graph.entry("open_b")}

    def test_exit_b_links_to_clean_a(self, sector):
        graph = extract_dependency_graph(sector)
        exit_b = next(
            node
            for node in graph.exits_of("open_a")
            if node.next_methods == ("clean_a",)
        )
        assert set(graph.successors(exit_b)) == {graph.entry("clean_a")}

    def test_open_b_exits_are_terminal(self, sector):
        graph = extract_dependency_graph(sector)
        for exit_node in graph.exits_of("open_b"):
            assert graph.successors(exit_node) == ()

    def test_counts(self, sector):
        graph = extract_dependency_graph(sector)
        assert graph.node_count == 10
        # arcs: 6 entry->exit plus (2+1+1+1) exit->entry = 11.
        assert graph.arc_count == 11


class TestValveGraph:
    def test_structure(self, valve):
        graph = extract_dependency_graph(valve)
        assert len(graph.entries) == 4
        assert len(graph.exits) == 5  # test has 2 returns, others 1 each
        assert graph.arc_count == 5 + 5  # entry->exit + one successor per exit

    def test_no_dangling_references(self, valve):
        graph = extract_dependency_graph(valve)
        assert graph.dangling_references() == ()


class TestDanglingReferences:
    def test_unknown_next_method_reported(self):
        from repro.frontend.parse import parse_module

        module, _violations = parse_module(
            "@sys\n"
            "class C:\n"
            "    @op_initial_final\n"
            "    def m(self):\n"
            "        return ['ghost']\n"
        )
        graph = extract_dependency_graph(module.get_class("C"))
        dangling = graph.dangling_references()
        assert len(dangling) == 1
        exit_node, missing = dangling[0]
        assert missing == "ghost"
        assert exit_node.method == "m"


class TestNodeLabels:
    def test_entry_label(self):
        assert EntryNode("open_a").label() == "open_a"

    def test_exit_label_with_methods(self):
        node = ExitNode("open_a", 0, ("close_a", "open_b"))
        assert node.label() == "open_a/return [close_a, open_b]"

    def test_exit_label_empty(self):
        assert ExitNode("open_b", 0, ()).label() == "open_b/return []"
