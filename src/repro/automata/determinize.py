"""Subset construction: NFA → DFA.

The produced DFA is partial — the empty subset is simply not a state, so
missing transitions encode rejection.  States are frozensets of NFA
states, preserved so diagnostics can map DFA states back to the model's
entry/exit points; call :meth:`repro.automata.dfa.DFA.renumbered` when
opaque integer states are preferable.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA


def determinize(nfa: NFA) -> DFA:
    """Determinize ``nfa`` by the subset construction."""
    initial = nfa.epsilon_closure(nfa.initial_states)
    states: set[frozenset] = {initial}
    transitions: dict[tuple[frozenset, str], frozenset] = {}
    accepting: set[frozenset] = set()
    queue: deque[frozenset] = deque([initial])
    ordered_alphabet = sorted(nfa.alphabet)
    while queue:
        subset = queue.popleft()
        if subset & nfa.accepting_states:
            accepting.add(subset)
        for symbol in ordered_alphabet:
            successor = nfa.step(subset, symbol)
            if not successor:
                continue
            transitions[(subset, symbol)] = successor
            if successor not in states:
                states.add(successor)
                queue.append(successor)
    return DFA(
        states=frozenset(states),
        alphabet=nfa.alphabet,
        transitions=transitions,
        initial_state=initial,
        accepting_states=frozenset(accepting),
    )
