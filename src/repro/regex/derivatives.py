"""Brzozowski derivatives of regular expressions.

The derivative of a language ``L`` with respect to a symbol ``f`` is
``{ l | f . l in L }``.  Derivatives give us, without ever building an
automaton, regex membership testing (:mod:`repro.regex.matching`), word
enumeration (:mod:`repro.regex.enumerate_words`), equivalence checking
(:mod:`repro.regex.equivalence`) and a direct DFA construction
(:func:`derivative_dfa_table`).

Because the smart constructors of :mod:`repro.regex.ast` canonicalise
terms (ACI unions, right-nested concats, absorbed units), the set of
derivatives of any regex is finite, which makes the constructions below
terminate — this is Brzozowski's classic theorem, and it is also the
engine behind Corollary 1 of the paper (``L(p)`` is regular).
"""

from __future__ import annotations

from functools import lru_cache

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    union,
)


@lru_cache(maxsize=None)
def nullable(regex: Regex) -> bool:
    """Does ``regex`` accept the empty word?"""
    if isinstance(regex, (Empty, Symbol)):
        return False
    if isinstance(regex, (Epsilon, Star)):
        return True
    if isinstance(regex, Concat):
        return nullable(regex.left) and nullable(regex.right)
    if isinstance(regex, Union):
        return nullable(regex.left) or nullable(regex.right)
    raise TypeError(f"not a Regex: {regex!r}")


@lru_cache(maxsize=None)
def derivative(regex: Regex, symbol: str) -> Regex:
    """The Brzozowski derivative of ``regex`` with respect to ``symbol``."""
    if isinstance(regex, (Empty, Epsilon)):
        return EMPTY
    if isinstance(regex, Symbol):
        return EPSILON if regex.name == symbol else EMPTY
    if isinstance(regex, Concat):
        head = concat(derivative(regex.left, symbol), regex.right)
        if nullable(regex.left):
            return union(head, derivative(regex.right, symbol))
        return head
    if isinstance(regex, Union):
        return union(derivative(regex.left, symbol), derivative(regex.right, symbol))
    if isinstance(regex, Star):
        return concat(derivative(regex.inner, symbol), regex)
    raise TypeError(f"not a Regex: {regex!r}")


def derivative_word(regex: Regex, word: tuple[str, ...] | list[str]) -> Regex:
    """Derivative with respect to a whole word (left to right)."""
    current = regex
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, Empty):
            return EMPTY
    return current


def derivative_dfa_table(
    regex: Regex,
    alphabet: frozenset[str] | set[str],
    max_states: int = 100_000,
) -> tuple[dict[Regex, dict[str, Regex]], Regex]:
    """Explore the derivative DFA of ``regex`` over ``alphabet``.

    Returns ``(table, initial)`` where ``table`` maps each reachable
    derivative to its successor map.  States are the (canonical) regexes
    themselves; a state is accepting iff :func:`nullable` holds of it.

    Raises :class:`RuntimeError` if more than ``max_states`` derivatives
    are discovered, which cannot happen for canonically constructed terms
    of reasonable size but guards against pathological inputs.
    """
    ordered_alphabet = sorted(alphabet)
    table: dict[Regex, dict[str, Regex]] = {}
    frontier = [regex]
    while frontier:
        state = frontier.pop()
        if state in table:
            continue
        successors: dict[str, Regex] = {}
        for symbol in ordered_alphabet:
            successor = derivative(state, symbol)
            successors[symbol] = successor
            if successor not in table:
                frontier.append(successor)
        table[state] = successors
        if len(table) > max_states:
            raise RuntimeError(
                f"derivative DFA exceeded {max_states} states; "
                "the input regex is not canonically constructed"
            )
    return table, regex
