"""Shelley core: model extraction and call-ordering verification.

* :mod:`repro.core.spec` — class specifications and their automata,
* :mod:`repro.core.dependency` — method dependency extraction (§3.1),
* :mod:`repro.core.behavior` — behavior automata (spec + inferred bodies),
* :mod:`repro.core.usage` — subsystem-usage inclusion check (§2.2),
* :mod:`repro.core.exhaustiveness` — invocation & match analyses (§3.3),
* :mod:`repro.core.claims` — LTLf claim verification (§2.2),
* :mod:`repro.core.lint` — specification well-formedness,
* :mod:`repro.core.checker` — the end-to-end pipeline,
* :mod:`repro.core.diagnostics` — structured, paper-style reports.
"""

from repro.core.behavior import behavior_nfa, operation_exit_regexes, subsystem_alphabet
from repro.core.checker import Checker, check_path, check_source
from repro.core.claims import check_claims
from repro.core.dependency import (
    DependencyGraph,
    EntryNode,
    ExitNode,
    extract_dependency_graph,
)
from repro.core.diagnostics import (
    FAIL_TO_MEET_REQUIREMENT,
    INVALID_SUBSYSTEM_USAGE,
    CheckResult,
    Diagnostic,
    Severity,
    SubsystemError,
)
from repro.core.exhaustiveness import check_invocations, check_match_exhaustiveness
from repro.core.explain import Explanation, TraceStep, explain_counterexample
from repro.core.lint import lint_spec
from repro.core.metrics import ModelMetrics, collect_metrics
from repro.core.refinement import (
    check_refinement,
    check_substitutable,
    equivalent_specs,
)
from repro.core.model_io import (
    ModelFormatError,
    dump_dependency_graph,
    dump_dfa,
    dump_spec,
    load_dependency_graph,
    load_dfa,
    load_spec,
)
from repro.core.spec import START_STATE, ClassSpec, exit_state
from repro.core.vacuity import (
    VacuityWitness,
    check_claim_vacuity,
    find_vacuous_atoms,
    strengthening_mutants,
)
from repro.core.usage import (
    UsageViolation,
    check_subsystem_usage,
    find_usage_violations,
    replay_against_spec,
)

__all__ = [
    "Checker",
    "CheckResult",
    "ClassSpec",
    "DependencyGraph",
    "Diagnostic",
    "EntryNode",
    "ExitNode",
    "Explanation",
    "FAIL_TO_MEET_REQUIREMENT",
    "ModelFormatError",
    "ModelMetrics",
    "INVALID_SUBSYSTEM_USAGE",
    "START_STATE",
    "Severity",
    "SubsystemError",
    "TraceStep",
    "UsageViolation",
    "VacuityWitness",
    "behavior_nfa",
    "check_claim_vacuity",
    "check_claims",
    "check_invocations",
    "check_match_exhaustiveness",
    "check_path",
    "check_refinement",
    "check_source",
    "check_substitutable",
    "check_subsystem_usage",
    "collect_metrics",
    "dump_dependency_graph",
    "dump_dfa",
    "dump_spec",
    "equivalent_specs",
    "exit_state",
    "explain_counterexample",
    "extract_dependency_graph",
    "find_usage_violations",
    "find_vacuous_atoms",
    "lint_spec",
    "strengthening_mutants",
    "load_dependency_graph",
    "load_dfa",
    "load_spec",
    "operation_exit_regexes",
    "replay_against_spec",
    "subsystem_alphabet",
]
