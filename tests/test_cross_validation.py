"""Cross-validation: the static checker, the runtime monitor and the
specification automaton must agree on concrete traces.

* any trace the spec automaton accepts must drive a monitored instance
  to a clean finalize;
* any counterexample the static checker reports must trip the monitor
  at the same event;
* random monitored executions always produce spec-accepted traces.
"""

import random

import pytest

from repro.core.checker import check_source
from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.runtime.monitor import (
    IncompleteLifecycleError,
    OrderViolationError,
    call_operation,
    finalize,
    history_of,
    monitored,
)

VALVE_RUNTIME = '''
from repro.frontend.decorators import sys, op, op_initial, op_final

@sys
class RuntimeValve:
    def __init__(self):
        self.needs_cleaning = False

    @op_initial
    def test(self):
        if self.needs_cleaning:
            return ["clean"]
        return ["open"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        self.needs_cleaning = True
        return ["test"]

    @op_final
    def clean(self):
        self.needs_cleaning = False
        return ["test"]
'''


@pytest.fixture(scope="module")
def runtime_valve_class():
    namespace: dict = {}
    exec(compile(VALVE_RUNTIME, "<runtime-valve>", "exec"), namespace)
    cls = namespace["RuntimeValve"]
    module, violations = parse_module(VALVE_RUNTIME)
    assert not violations
    spec = ClassSpec.of(module.get_class("RuntimeValve"))
    return monitored(cls, spec=spec), spec


class TestSpecAcceptedTracesRunClean:
    def drive(self, cls, trace):
        instance = cls()
        for event in trace:
            getattr(instance, event)()
        finalize(instance)

    def test_accepted_traces(self, runtime_valve_class):
        cls, spec = runtime_valve_class
        dfa = spec.dfa()
        # Enumerate accepted traces up to length 6 and replay each —
        # skipping the ones the *implementation's data flow* cannot take
        # (the monitor narrows by actual return values).
        from repro.automata.shortest import iter_accepted_words

        replayed = 0
        for trace in iter_accepted_words(dfa, 6):
            try:
                self.drive(cls, trace)
                replayed += 1
            except OrderViolationError:
                # Statically allowed but dynamically excluded path (e.g.
                # "test, clean" when the valve is not dirty): the static
                # model over-approximates, exactly as the paper says.
                pass
        assert replayed >= 3

    def test_spec_rejected_trace_trips_monitor(self, runtime_valve_class):
        cls, spec = runtime_valve_class
        assert not spec.dfa().accepts(["open"])
        with pytest.raises(OrderViolationError):
            self.drive(cls, ["open"])

    def test_incomplete_trace_trips_finalize(self, runtime_valve_class):
        cls, spec = runtime_valve_class
        assert not spec.dfa().accepts(["test", "open"])
        with pytest.raises(IncompleteLifecycleError):
            self.drive(cls, ["test", "open"])


class TestMonitoredRunsAreSpecAccepted:
    def test_random_walks(self, runtime_valve_class):
        cls, spec = runtime_valve_class
        dfa = spec.dfa()
        rng = random.Random(1234)
        operations = spec.operation_names()
        for _round in range(50):
            instance = cls()
            performed = []
            for _step in range(rng.randrange(0, 8)):
                name = rng.choice(operations)
                try:
                    getattr(instance, name)()
                    performed.append(name)
                except OrderViolationError:
                    pass
            try:
                finalize(instance)
            except IncompleteLifecycleError:
                continue
            # A finalized monitored run is a word of the spec language.
            assert dfa.accepts(performed), performed


class TestStaticCounterexampleTripsMonitor:
    def test_bad_sector_counterexample(self):
        """The static counterexample (open_a, a.test, a.open) leaves
        valve 'a' mid-lifecycle; the monitor agrees at finalize time."""
        from repro.paper import SECTION_2_MODULE

        result = check_source(SECTION_2_MODULE)
        usage = result.by_code("invalid-subsystem-usage")[0]
        trace = usage.counterexample
        valve_events = [e.split(".", 1)[1] for e in trace if e.startswith("a.")]

        module, _ = parse_module(SECTION_2_MODULE)
        spec = ClassSpec.of(module.get_class("Valve"))

        class PlainValve:
            def test(self):
                return ["open"]

            def open(self):
                return ["close"]

            def close(self):
                return ["test"]

            def clean(self):
                return ["test"]

        cls = monitored(PlainValve, spec=spec)
        instance = cls()
        for event in valve_events:
            getattr(instance, event)()
        with pytest.raises(IncompleteLifecycleError):
            finalize(instance)


class TestEveryStaticCounterexampleTripsMonitor:
    """Every ``invalid-subsystem-usage`` counterexample of the paper
    listings, projected onto the failing field, must trip the runtime
    monitor at the exact event index the static DFA walk predicts —
    either an :class:`OrderViolationError` at the first missing
    transition, or an :class:`IncompleteLifecycleError` at finalize when
    the word runs through but ends in a non-accepting state."""

    @staticmethod
    def scripted_class(spec, word):
        """A fresh implementation steered along ``word``.

        Each operation returns the first declared exit point whose
        next-method set contains the next scripted symbol (falling back
        to the first exit point), so the monitor's dynamic narrowing
        follows exactly the path the static walk took.
        """

        def make_method(name):
            def method(self):
                index = self._cursor
                self._cursor = index + 1
                upcoming = word[index + 1] if index + 1 < len(word) else None
                points = spec.exit_points(name)
                for point in points:
                    if upcoming is not None and upcoming in point.next_methods:
                        return list(point.next_methods)
                return list(points[0].next_methods)

            return method

        def __init__(self):
            self._cursor = 0

        namespace = {"__init__": __init__}
        for operation in spec.operation_names():
            namespace[operation] = make_method(operation)
        return type(f"Scripted{spec.name}", (), namespace)

    @staticmethod
    def static_verdict(spec, word):
        """The static prediction: ``("order", i)`` when the DFA has no
        move on ``word[i]``; ``("incomplete", len(word))`` when the walk
        completes in a non-accepting state; ``None`` when accepted."""
        dfa = spec.dfa()
        state = dfa.initial_state
        for index, symbol in enumerate(word):
            state = dfa.successor(state, symbol)
            if state is None:
                return ("order", index)
        if state not in dfa.accepting_states:
            return ("incomplete", len(word))
        return None

    @pytest.mark.parametrize(
        "module_name", ["SECTION_2_MODULE", "SECTOR_MODULE", "GOOD_MODULE"]
    )
    def test_counterexamples_replay_at_the_same_index(self, module_name):
        import repro.paper as listings

        source = getattr(listings, module_name)
        result = check_source(source)
        module, _ = parse_module(source)
        replayed = 0
        for diagnostic in result.by_code("invalid-subsystem-usage"):
            assert diagnostic.counterexample is not None
            for sub in diagnostic.subsystem_errors:
                prefix = sub.field_name + "."
                word = tuple(
                    event[len(prefix):]
                    for event in diagnostic.counterexample
                    if event.startswith(prefix)
                )
                spec = ClassSpec.of(module.get_class(sub.class_name))
                verdict = self.static_verdict(spec, word)
                assert verdict is not None, (
                    "a failing field's projection must be spec-rejected"
                )
                kind, index = verdict
                cls = monitored(self.scripted_class(spec, word), spec=spec)
                instance = cls()
                if kind == "order":
                    # The monitor must allow exactly the prefix the
                    # static walk allowed, then refuse the same event.
                    for event in word[:index]:
                        call_operation(instance, event)
                    with pytest.raises(OrderViolationError):
                        call_operation(instance, word[index])
                    assert history_of(instance) == word[:index]
                else:
                    for event in word:
                        call_operation(instance, event)
                    assert history_of(instance) == word
                    with pytest.raises(IncompleteLifecycleError):
                        finalize(instance)
                replayed += 1
        if module_name == "SECTION_2_MODULE":
            # §2.2's BadSector counterexample (open_a, a.test, a.open).
            assert replayed >= 1
        else:
            # The repaired listings verify: nothing to replay.
            assert replayed == 0
