"""Counterexample explanation."""

from repro.core.explain import explain_counterexample
from repro.core.spec import ClassSpec


def specs_of(*parsed):
    return {p.name: ClassSpec.of(p) for p in parsed}


class TestBadSectorExplanation:
    TRACE = ("open_a", "a.test", "a.open")

    def test_segments_by_operation(self, valve, bad_sector):
        explanation = explain_counterexample(
            bad_sector, specs_of(valve, bad_sector), self.TRACE
        )
        text = explanation.format()
        assert text.startswith("during open_a:")

    def test_annotates_each_event(self, valve, bad_sector):
        explanation = explain_counterexample(
            bad_sector, specs_of(valve, bad_sector), self.TRACE
        )
        text = explanation.format()
        assert "Valve 'a': test -> exit [open] | [clean]" in text
        assert "Valve 'a': open -> exit [close]" in text

    def test_ending_names_the_stuck_subsystem(self, valve, bad_sector):
        explanation = explain_counterexample(
            bad_sector, specs_of(valve, bad_sector), self.TRACE
        )
        assert "Valve 'a' is not in a final state" in explanation.ending
        assert "close, clean still required" in explanation.ending

    def test_unused_subsystem_not_mentioned(self, valve, bad_sector):
        explanation = explain_counterexample(
            bad_sector, specs_of(valve, bad_sector), self.TRACE
        )
        assert "'b'" not in explanation.ending


class TestOtherShapes:
    def test_not_allowed_event_flagged(self, valve, bad_sector):
        trace = ("open_a", "a.open")  # open without test
        explanation = explain_counterexample(
            bad_sector, specs_of(valve, bad_sector), trace
        )
        text = explanation.format()
        assert "NOT ALLOWED" in text
        assert "allowed: test" in text

    def test_clean_trace_ends_cleanly(self, valve, bad_sector):
        trace = ("open_a", "a.test", "a.clean")
        explanation = explain_counterexample(
            bad_sector, specs_of(valve, bad_sector), trace
        )
        assert explanation.ending == "all subsystems completed their lifecycles"

    def test_undeclared_method_annotated(self, valve, bad_sector):
        trace = ("open_a", "a.explode")
        explanation = explain_counterexample(
            bad_sector, specs_of(valve, bad_sector), trace
        )
        assert "explode is not a declared operation" in explanation.format()

    def test_steps_expose_structure(self, valve, bad_sector):
        explanation = explain_counterexample(
            bad_sector,
            specs_of(valve, bad_sector),
            ("open_a", "a.test", "a.open"),
        )
        owners = [step.owner_operation for step in explanation.steps]
        assert owners == [None, "open_a", "open_a"]
