"""Runtime enforcement of extracted models (dynamic typestate checking).

The static analysis proves properties of *all* executions; the monitor
enforces the same specification on *one* execution, raising at the exact
call that leaves the specification.  It serves two purposes in this
reproduction: it makes the examples self-checking, and it
cross-validates the static verdicts (a trace the static checker deems a
counterexample must also trip the monitor, and tests assert this).

The monitor tracks, per instance, the set of specification-automaton
states the execution may be in.  Because the monitor *sees* each call's
return value, it can narrow that set to the exit point actually taken —
the dynamic analysis is strictly more precise than the static
abstraction, exactly as expected of an over-approximating extraction.
"""

from __future__ import annotations

import functools
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any

from repro.core.spec import START_STATE, ClassSpec, exit_state
from repro.frontend.parse import parse_module
from repro.runtime.trace import TraceRecorder


class MonitorError(Exception):
    """Base class of runtime-verification failures."""


class OrderViolationError(MonitorError):
    """An operation was invoked when the specification forbids it."""


class SpecMismatchError(MonitorError):
    """A method returned a next-method set its specification never declares."""


class IncompleteLifecycleError(MonitorError):
    """An instance was finalized before reaching a final operation's exit."""


@dataclass
class _InstanceState:
    """Monitor bookkeeping attached to each constrained instance."""

    states: frozenset = frozenset({START_STATE})
    history: list[str] = field(default_factory=list)
    finalized: bool = False


_STATE_ATTR = "__shelley_monitor_state__"
_RECORDER_ATTR = "__shelley_recorder__"


def _spec_from_class(cls: type) -> ClassSpec:
    """Extract the specification of ``cls`` from its own source code."""
    source = textwrap.dedent(inspect.getsource(cls))
    module, violations = parse_module(source, source_name=f"<{cls.__name__}>")
    errors = [v for v in violations if v.severity == "error"]
    if errors:
        raise MonitorError(
            f"cannot monitor {cls.__name__}: " + "; ".join(v.format() for v in errors)
        )
    parsed = module.get_class(cls.__name__)
    if parsed is None:
        raise MonitorError(f"{cls.__name__} is not an @sys class")
    return ClassSpec.of(parsed)


def _instance_state(instance: Any) -> _InstanceState:
    state = getattr(instance, _STATE_ATTR, None)
    if state is None:
        state = _InstanceState()
        object.__setattr__(instance, _STATE_ATTR, state)
    return state


def _allowed_operations(spec: ClassSpec, states: frozenset) -> frozenset[str]:
    return spec.allowed_after(states)


def _next_method_set(result: Any) -> tuple[str, ...]:
    """The declared-successor component of an operation's return value.

    Handles the Table 2 forms: a plain list, or a tuple whose first
    position is the list (the rest is the user value).
    """
    value = result
    if isinstance(value, tuple) and value and isinstance(value[0], (list, tuple)):
        value = value[0]
    if isinstance(value, (list, tuple)) and all(isinstance(m, str) for m in value):
        return tuple(value)
    raise SpecMismatchError(
        f"operation returned {result!r}, which does not carry a next-method list"
    )


def monitored(cls: type, spec: ClassSpec | None = None, recorder: TraceRecorder | None = None) -> type:
    """Wrap an ``@sys`` class so instances enforce their specification.

    Every operation is intercepted: a call outside the allowed set raises
    :class:`OrderViolationError`; a return value whose next-method set no
    exit point declares raises :class:`SpecMismatchError`.  Call
    :func:`finalize` when the instance's lifetime ends to enforce the
    final-operation requirement.  When ``recorder`` is given, every
    successful call is appended to it.
    """
    if spec is None:
        spec = _spec_from_class(cls)
    existing: ClassSpec | None = cls.__dict__.get("__shelley_spec__")
    if existing is not None:
        # Already wrapped.  Wrapping again would stack the interceptors:
        # every call would be checked twice and recorded twice, so a
        # second ``monitored()`` with the same spec is a no-op and a
        # conflicting one is an error.
        if existing == spec:
            if recorder is not None:
                set_recorder(cls, recorder)
            return cls
        raise MonitorError(
            f"{cls.__name__} is already monitored with a different specification"
        )
    operation_names = set(spec.operation_names())

    for name in operation_names:
        original = getattr(cls, name, None)
        if original is None:
            raise MonitorError(
                f"specification of {cls.__name__} names operation {name!r} "
                "but the class has no such method"
            )
        setattr(cls, name, _wrap_operation(original, name, spec))

    setattr(cls, "__shelley_spec__", spec)
    setattr(cls, _RECORDER_ATTR, recorder)
    return cls


def set_recorder(cls: type, recorder: TraceRecorder | None) -> None:
    """Rebind (or detach, with ``None``) a monitored class's recorder.

    The interceptors look the recorder up at call time, so a corpus
    collector can attach a fresh recorder per run without re-wrapping.
    """
    if getattr(cls, "__shelley_spec__", None) is None:
        raise MonitorError(f"{cls.__name__} is not monitored")
    setattr(cls, _RECORDER_ATTR, recorder)


def _wrap_operation(original, name: str, spec: ClassSpec):
    @functools.wraps(original)
    def wrapper(self, *args, **kwargs):
        state = _instance_state(self)
        if state.finalized:
            raise OrderViolationError(
                f"{spec.name}.{name} invoked after the instance was finalized"
            )
        allowed = _allowed_operations(spec, state.states)
        if name not in allowed:
            history = ", ".join(state.history) or "(no call yet)"
            legal = ", ".join(sorted(allowed)) or "(none)"
            raise OrderViolationError(
                f"{spec.name}.{name} not allowed here; history: {history}; "
                f"allowed now: {legal}"
            )
        result = original(self, *args, **kwargs)
        declared = _next_method_set(result)
        matching_exits = frozenset(
            exit_state(name, point.exit_id)
            for point in spec.exit_points(name)
            if point.next_methods == declared
        )
        if not matching_exits:
            raise SpecMismatchError(
                f"{spec.name}.{name} returned next-method set {list(declared)}, "
                "which no declared exit point produces"
            )
        state.states = matching_exits
        state.history.append(name)
        recorder = getattr(type(self), _RECORDER_ATTR, None)
        if recorder is not None:
            recorder.record(name)
        return result

    return wrapper


def _accepting_states(spec: ClassSpec) -> frozenset:
    """Monitor states from which finalization is legal."""
    return frozenset({START_STATE}) | frozenset(
        exit_state(operation.name, point.exit_id)
        for operation in spec.final_operations()
        for point in operation.returns
    )


def _spec_of(instance: Any) -> ClassSpec:
    spec: ClassSpec | None = getattr(type(instance), "__shelley_spec__", None)
    if spec is None:
        raise MonitorError(f"{type(instance).__name__} is not monitored")
    return spec


def allowed_now(instance: Any) -> frozenset[str]:
    """Operations the monitor would currently allow on ``instance``.

    This is the *dynamic* view: the monitor has narrowed the state set
    to the exit points actually taken, so the result can be a strict
    subset of what the static specification allows after the same call
    history.  Model miners read it as per-prefix negative evidence —
    every operation outside the set is a forbidden continuation.
    """
    spec = _spec_of(instance)
    state = _instance_state(instance)
    if state.finalized:
        return frozenset()
    return spec.allowed_after(state.states)


def is_finalizable(instance: Any) -> bool:
    """Would :func:`finalize` succeed right now?  (No side effects.)"""
    spec = _spec_of(instance)
    state = _instance_state(instance)
    if state.finalized:
        return False
    return bool(set(state.states) & _accepting_states(spec))


def finalize(instance: Any) -> None:
    """Assert that ``instance`` completed a valid lifecycle.

    Legal when no operation was ever invoked (the empty lifecycle) or
    when the last operation invoked was final; raises
    :class:`IncompleteLifecycleError` otherwise.
    """
    spec = _spec_of(instance)
    state = _instance_state(instance)
    if not (set(state.states) & _accepting_states(spec)):
        history = ", ".join(state.history) or "(no call)"
        raise IncompleteLifecycleError(
            f"{spec.name} instance finalized mid-lifecycle; history: {history}"
        )
    state.finalized = True


def call_operation(instance: Any, name: str, *args: Any, **kwargs: Any) -> Any:
    """Invoke operation ``name`` on ``instance``, resolved through its class.

    Drivers must not use ``getattr(instance, name)()``: the paper's own
    ``Valve`` assigns ``self.clean = Pin(28, OUT)`` in ``__init__``,
    shadowing the ``clean`` operation in the instance dict.  Class-side
    lookup always reaches the (monitored) method.
    """
    spec = _spec_of(instance)
    if spec.operation(name) is None:
        raise MonitorError(f"{spec.name} declares no operation {name!r}")
    return getattr(type(instance), name)(instance, *args, **kwargs)


def history_of(instance: Any) -> tuple[str, ...]:
    """The operations successfully invoked on ``instance``, in order."""
    return tuple(_instance_state(instance).history)


class lifecycle:
    """Context manager enforcing finalization::

        with lifecycle(valve):
            follow = valve.test()
            ...
    """

    def __init__(self, instance: Any):
        self._instance = instance

    def __enter__(self):
        return self._instance

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            finalize(self._instance)
        return False
