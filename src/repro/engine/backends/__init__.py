"""Pluggable storage backends for the inference cache.

See :mod:`repro.engine.backends.base` for the protocol and
docs/distributed.md for the deployment picture.  The HTTP daemon lives
in :mod:`repro.engine.backends.server` and is imported on demand (it
drags :mod:`http.server` in; nothing on the ``repro check`` hot path
needs it).
"""

from repro.engine.backends.base import CacheBackend, RemoteUnavailable
from repro.engine.backends.local import DEFAULT_LOCK_TIMEOUT, LocalDirBackend
from repro.engine.backends.remote import RemoteHTTPBackend
from repro.engine.backends.tiered import TieredBackend

__all__ = [
    "CacheBackend",
    "DEFAULT_LOCK_TIMEOUT",
    "LocalDirBackend",
    "RemoteHTTPBackend",
    "RemoteUnavailable",
    "TieredBackend",
]
