"""The command-line interface, end to end (in-process)."""

import pytest

from repro.cli import main
from repro.paper import GOOD_MODULE, SECTION_2_MODULE, SECTOR_MODULE


@pytest.fixture
def section2(tmp_path):
    path = tmp_path / "section2.py"
    path.write_text(SECTION_2_MODULE, encoding="utf-8")
    return str(path)


@pytest.fixture
def good(tmp_path):
    path = tmp_path / "good.py"
    path.write_text(GOOD_MODULE, encoding="utf-8")
    return str(path)


@pytest.fixture
def sector(tmp_path):
    path = tmp_path / "sector.py"
    path.write_text(SECTOR_MODULE, encoding="utf-8")
    return str(path)


class TestCheck:
    def test_failing_module_exits_1(self, section2, capsys):
        assert main(["check", section2]) == 1
        out = capsys.readouterr().out
        assert "INVALID SUBSYSTEM USAGE" in out
        assert "FAIL TO MEET REQUIREMENT" in out

    def test_passing_module_exits_0(self, good, capsys):
        assert main(["check", good]) == 0
        assert "OK: specification verified" in capsys.readouterr().out

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["check", "/nonexistent/file.py"])


class TestCheckBatch:
    def test_jobs_flag_keeps_output_identical(self, section2, capsys):
        assert main(["check", section2]) == 1
        serial = capsys.readouterr().out
        assert main(["check", section2, "--jobs", "4"]) == 1
        assert capsys.readouterr().out == serial

    def test_cache_warm_run_identical_and_fully_hit(self, good, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["check", good, "--cache", "--cache-dir", cache_dir, "--stats"]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "engine metrics:" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "OK: specification verified" in warm
        assert "[cache]" in warm
        assert "[checked]" not in warm

    def test_directory_project(self, tmp_path, capsys):
        from repro.workloads.hierarchy import HierarchyShape, project_files

        root = tmp_path / "project"
        root.mkdir()
        project_files(HierarchyShape(base_operations=3), 2, root)
        assert main(["check", str(root), "--jobs", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "4 in 2 wave(s)" in out

    def test_process_executor(self, good, capsys):
        assert main(["check", good, "-j", "2", "--executor", "process"]) == 0
        assert "OK: specification verified" in capsys.readouterr().out

    def test_rejects_bad_jobs(self, good):
        with pytest.raises(SystemExit):
            main(["check", good, "--jobs", "0"])


class TestCheckSupervisor:
    def test_supervisor_flags_keep_output_identical(self, section2, capsys):
        assert main(["check", section2]) == 1
        plain = capsys.readouterr().out
        args = [
            "check", section2,
            "--timeout", "60", "--max-states", "100000",
            "--retries", "3", "--keep-going",
        ]
        assert main(args) == 1
        assert capsys.readouterr().out == plain

    def test_injected_fault_quarantines_the_class(self, good, capsys):
        args = [
            "check", good, "--retries", "0",
            "--faults", "worker:raise:Valve",
        ]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "ENGINE CRASH" in out
        assert "Valve" in out
        # Faults do not leak into the next in-process run.
        assert main(["check", good]) == 0

    def test_transparent_recovery_under_transient_fault(self, good, capsys):
        assert main(["check", good]) == 0
        healthy = capsys.readouterr().out
        args = [
            "check", good, "--retries", "2",
            "--faults", "worker:raise:*:times=1",
        ]
        assert main(args) == 0
        assert capsys.readouterr().out == healthy

    def test_fail_fast_aborts(self, good):
        args = [
            "check", good, "--retries", "0", "--fail-fast",
            "--faults", "worker:raise:Valve",
        ]
        with pytest.raises(SystemExit, match="fail-fast"):
            main(args)

    def test_bad_fault_spec_is_a_usage_error(self, good):
        with pytest.raises(SystemExit, match="unknown fault site"):
            main(["check", good, "--faults", "nowhere:raise:*"])

    def test_fail_fast_and_keep_going_conflict(self, good):
        with pytest.raises(SystemExit):
            main(["check", good, "--fail-fast", "--keep-going"])


class TestCacheCommand:
    def test_stats_and_clear(self, good, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["check", good, "--cache", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = capsys.readouterr().out
        assert f"cache at {cache_dir}:" in stats
        assert "method" in stats and "class" in stats and "total" in stats

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "total         0 entries" in capsys.readouterr().out

    def test_stats_on_missing_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "never-created")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_clear_removes_the_project_state(self, good, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["check", good, "--incremental", "--cache-dir", cache_dir]
        ) == 0
        assert (tmp_path / "cache" / "state.json").is_file()
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "state" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "and the project state" in capsys.readouterr().out
        assert not (tmp_path / "cache" / "state.json").exists()

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "no project state" in capsys.readouterr().out

    def test_verify_flags_and_repairs_corruption(self, good, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["check", good, "--cache", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()

        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        clean = capsys.readouterr().out
        assert "0 corrupt" in clean

        victim = next((cache_dir / "method").rglob("*.json"))
        victim.write_text("torn garbage", encoding="utf-8")

        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out and "--repair" in out
        assert victim.exists()  # audit alone never deletes

        assert main(
            ["cache", "verify", "--repair", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "1 repaired" in capsys.readouterr().out
        assert not victim.exists()

    def test_stats_counts_orphans_and_gc_sweeps_them(
        self, good, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        assert main(["check", good, "--cache", "--cache-dir", str(cache_dir)]) == 0
        (cache_dir / "method" / ".tmp-orphan.json").write_text(
            "debris", encoding="utf-8"
        )
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "orphaned temp files: 1" in capsys.readouterr().out

        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "swept 1 orphaned temp file" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "orphaned temp files: 0" in capsys.readouterr().out

    def test_gc_min_age_spares_young_orphans(self, good, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["check", good, "--cache", "--cache-dir", str(cache_dir)]) == 0
        (cache_dir / "method" / ".tmp-young.json").write_text(
            "debris", encoding="utf-8"
        )
        capsys.readouterr()
        assert main(
            ["cache", "gc", "--min-age", "3600", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "swept 0" in capsys.readouterr().out


class TestIncrementalCheck:
    def test_warm_run_reuses_and_keeps_output_identical(
        self, good, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        args = ["check", good, "--incremental", "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args + ["--stats"]) == 0
        warm = capsys.readouterr().out
        assert cold.splitlines()[0] in warm
        assert "(100% reuse)" in warm
        assert "[state]" in warm

    def test_incremental_report_matches_plain_check(
        self, section2, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(["check", section2]) == 1
        plain = capsys.readouterr().out
        args = ["check", section2, "--incremental", "--cache-dir", cache_dir]
        assert main(args) == 1
        assert capsys.readouterr().out == plain
        assert main(args) == 1  # warm: verdicts spliced from state
        assert capsys.readouterr().out == plain

    def test_since_state_flag_uses_explicit_file(self, good, tmp_path, capsys):
        state_file = str(tmp_path / "elsewhere" / "snapshot.json")
        assert main(["check", good, "--since-state", state_file]) == 0
        capsys.readouterr()
        assert main(
            ["check", good, "--since-state", state_file, "--stats"]
        ) == 0
        assert "(100% reuse)" in capsys.readouterr().out


class TestStateCommand:
    def test_show_and_reset(self, good, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["check", good, "--incremental", "--cache-dir", cache_dir]
        ) == 0
        capsys.readouterr()

        assert main(["state", "show", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "project state at" in out
        assert "generation 1  (checksum seal intact)" in out
        assert "wave" in out and "fp" in out and "spec" in out

        assert main(["state", "reset", "--cache-dir", cache_dir]) == 0
        assert "removed project state" in capsys.readouterr().out

        assert main(["state", "reset", "--cache-dir", cache_dir]) == 0
        assert "no project state" in capsys.readouterr().out

    def test_show_without_state_exits_1(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["state", "show", "--cache-dir", cache_dir]) == 1
        assert "no usable project state" in capsys.readouterr().out


class TestModel:
    def test_prints_inferred_regexes(self, section2, capsys):
        assert main(["model", section2]) == 0
        out = capsys.readouterr().out
        assert "a.test . a.open" in out
        assert "class BadSector:" in out


class TestDeps:
    def test_text_output(self, sector, capsys):
        assert main(["deps", sector, "Sector"]) == 0
        out = capsys.readouterr().out
        assert "4 entry node(s), 6 exit node(s)" in out

    def test_dot_output(self, sector, capsys):
        assert main(["deps", sector, "Sector", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_class_required_when_ambiguous(self, sector):
        with pytest.raises(SystemExit):
            main(["deps", sector])

    def test_unknown_class(self, sector):
        with pytest.raises(SystemExit):
            main(["deps", sector, "Ghost"])


class TestViz:
    def test_text(self, section2, capsys):
        assert main(["viz", section2, "Valve"]) == 0
        assert "-> test [initial]" in capsys.readouterr().out

    def test_dot(self, section2, capsys):
        assert main(["viz", section2, "Valve", "--dot"]) == 0
        assert '"test" -> "open";' in capsys.readouterr().out

    def test_output_file(self, section2, tmp_path, capsys):
        target = tmp_path / "valve.dot"
        assert main(["viz", section2, "Valve", "--dot", "-o", str(target)]) == 0
        assert target.read_text(encoding="utf-8").startswith("digraph")


class TestExplain:
    def test_narrates_usage_error(self, section2, capsys):
        assert main(["explain", section2]) == 1
        out = capsys.readouterr().out
        assert "Explanation for BadSector:" in out
        assert "during open_a:" in out
        assert "not in a final state" in out

    def test_clean_module_has_no_explanations(self, good, capsys):
        assert main(["explain", good]) == 0
        out = capsys.readouterr().out
        assert "Explanation" not in out


class TestExport:
    def test_spec_json(self, section2, capsys):
        import json

        assert main(["export", section2, "Valve", "--what", "spec"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "class-spec"
        assert payload["name"] == "Valve"

    def test_deps_json(self, sector, capsys):
        import json

        assert main(["export", sector, "Sector", "--what", "deps"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "dependency-graph"
        assert len(payload["entries"]) == 4

    def test_dfa_json_round_trips(self, section2, capsys):
        import json

        from repro.core.model_io import dfa_from_dict

        assert main(["export", section2, "BadSector", "--what", "dfa"]) == 0
        payload = json.loads(capsys.readouterr().out)
        dfa = dfa_from_dict(payload)
        assert dfa.accepts(["open_a", "a.test", "a.open"])


class TestNusmv:
    def test_emits_module(self, section2, capsys):
        assert main(["nusmv", section2, "BadSector"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("MODULE main")
        assert "LTLSPEC" in out  # the claim is emitted


class TestSuite:
    def test_prints_sequences(self, section2, capsys):
        assert main(["suite", section2, "Valve"]) == 0
        out = capsys.readouterr().out
        assert "(empty lifecycle)" in out
        assert "test, open, close" in out

    def test_max_caps_output(self, section2, capsys):
        assert main(["suite", section2, "Valve", "--max", "2"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 2


class TestReport:
    def test_prints_markdown(self, section2, capsys):
        assert main(["report", section2]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Verification report")
        assert "## class `BadSector`" in out

    def test_writes_file(self, good, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", good, "-o", str(target)]) == 0
        assert target.read_text(encoding="utf-8").startswith("# Verification report")


class TestTheorems:
    def test_runs_and_passes(self, capsys):
        assert main(["theorems", "--size", "3", "--length", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("HOLDS") == 5
