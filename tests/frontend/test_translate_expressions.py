"""Control-flow-faithful call extraction inside expressions.

These behaviors matter for soundness: a conditional expression runs one
branch, a comprehension runs its body many times, a lambda runs later —
each must be abstracted with the matching IR shape, not flattened into
a straight-line sequence.
"""

import ast

from repro.frontend.translate import translate_body
from repro.lang.ast import calls, format_program
from repro.lang.inference import infer
from repro.regex.enumerate_words import words_up_to

FIELDS = frozenset({"a", "b"})


def translate(source: str):
    module = ast.parse(source)
    return translate_body(module.body[0].body, FIELDS)


def body_language(source: str, max_length: int = 4):
    return words_up_to(infer(translate(source).program), max_length)


class TestConditionalExpressions:
    def test_ifexp_is_a_choice(self):
        result = translate(
            "def f(self):\n"
            "    x = self.a.hot() if cond else self.a.cold()\n"
            "    return []\n"
        )
        text = format_program(result.program)
        assert "if(*) {a.hot()} else {a.cold()}" in text

    def test_ifexp_branches_are_exclusive(self):
        language = body_language(
            "def f(self):\n"
            "    x = self.a.hot() if cond else self.a.cold()\n"
            "    return []\n"
        )
        assert ("a.hot",) in language
        assert ("a.cold",) in language
        assert ("a.hot", "a.cold") not in language

    def test_ifexp_condition_always_runs(self):
        language = body_language(
            "def f(self):\n"
            "    x = self.a.read() if self.a.probe() else None\n"
            "    return []\n"
        )
        assert ("a.probe",) in language
        assert ("a.probe", "a.read") in language
        assert ("a.read",) not in language


class TestShortCircuiting:
    def test_and_second_operand_optional(self):
        language = body_language(
            "def f(self):\n"
            "    z = self.a.first() and self.a.second()\n"
            "    return []\n"
        )
        assert ("a.first",) in language
        assert ("a.first", "a.second") in language
        assert ("a.second",) not in language

    def test_or_behaves_the_same(self):
        language = body_language(
            "def f(self):\n"
            "    z = self.a.first() or self.a.second()\n"
            "    return []\n"
        )
        assert ("a.first",) in language
        assert ("a.first", "a.second") in language

    def test_three_way_boolop(self):
        language = body_language(
            "def f(self):\n"
            "    z = self.a.x() and self.a.y() and self.a.z()\n"
            "    return []\n",
            max_length=4,
        )
        assert ("a.x",) in language
        assert ("a.x", "a.y", "a.z") in language
        # y and z are jointly optional; z alone after x is legal in the
        # over-approximation (the abstraction groups the tail) — the key
        # soundness property is that x-only is present and nothing runs
        # before x.
        assert all(word[0] == "a.x" for word in language if word)


class TestComprehensions:
    def test_list_comprehension_loops(self):
        result = translate(
            "def f(self):\n"
            "    xs = [self.a.open() for i in items]\n"
            "    return []\n"
        )
        assert "loop(*) {a.open()}" in format_program(result.program)

    def test_comprehension_zero_iterations_possible(self):
        language = body_language(
            "def f(self):\n"
            "    xs = [self.a.open() for i in items]\n"
            "    return []\n"
        )
        assert () in language
        assert ("a.open", "a.open") in language

    def test_first_iterable_runs_once(self):
        result = translate(
            "def f(self):\n"
            "    xs = [self.a.open() for i in self.a.items()]\n"
            "    return []\n"
        )
        text = format_program(result.program)
        assert text.startswith("a.items(); loop(*) {a.open()}")

    def test_condition_calls_loop(self):
        result = translate(
            "def f(self):\n"
            "    xs = [i for i in items if self.a.check()]\n"
            "    return []\n"
        )
        assert "loop(*) {a.check()}" in format_program(result.program)

    def test_dict_comprehension_key_and_value(self):
        result = translate(
            "def f(self):\n"
            "    d = {self.a.key(): self.a.val() for i in items}\n"
            "    return []\n"
        )
        assert "loop(*) {a.key(); a.val()}" in format_program(result.program)

    def test_generator_expression_also_loops(self):
        result = translate(
            "def f(self):\n"
            "    g = (self.a.open() for i in items)\n"
            "    return []\n"
        )
        assert "loop(*)" in format_program(result.program)

    def test_nested_generators_later_iters_loop(self):
        result = translate(
            "def f(self):\n"
            "    xs = [1 for i in items for j in self.a.sub()]\n"
            "    return []\n"
        )
        assert "loop(*) {a.sub()}" in format_program(result.program)


class TestLambdas:
    def test_lambda_with_constrained_call_rejected(self):
        result = translate(
            "def f(self):\n"
            "    g = lambda: self.a.test()\n"
            "    return []\n"
        )
        assert any(v.code == "deferred-call" for v in result.violations)
        assert calls(result.program) == set()

    def test_innocent_lambda_allowed(self):
        result = translate(
            "def f(self):\n"
            "    g = lambda x: x + 1\n"
            "    return []\n"
        )
        assert result.violations == []

    def test_lambda_default_argument_scanned(self):
        # Defaults evaluate at definition time — not deferred; but we
        # conservatively treat the whole lambda as deferred only for its
        # body, so a call in a default is still observed... the current
        # abstraction rejects nothing here and extracts nothing: assert
        # the conservative outcome is at least flagged or extracted.
        result = translate(
            "def f(self):\n"
            "    g = lambda x=self.a.test(): x\n"
            "    return []\n"
        )
        flagged = any(v.code == "deferred-call" for v in result.violations)
        extracted = "a.test" in calls(result.program)
        assert flagged or extracted
