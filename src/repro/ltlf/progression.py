"""Formula progression: the one-step derivative of an LTLf formula.

``progress(φ, σ)`` computes a formula ``φ'`` with the defining property

    ``σ · w ⊨ φ``   iff   ``w ⊨ φ'``

and ``accepts_empty(φ)`` decides ``ε ⊨ φ``.  Together they turn the set
of (simplified) formulas reachable by progression into a DFA — the
construction in :mod:`repro.ltlf.translate`.  Progression is standard
(Bacchus–Kabanza), adapted to event traces where exactly one atom is
true per position.
"""

from __future__ import annotations

from functools import lru_cache

from repro.ltlf.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Eventually,
    Formula,
    Globally,
    Next,
    Not,
    Or,
    Release,
    Top,
    Until,
    WeakNext,
    WeakUntil,
    conj,
    disj,
    neg,
)


@lru_cache(maxsize=None)
def progress(formula: Formula, event: str) -> Formula:
    """The residual obligation after observing ``event``."""
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Atom):
        return TRUE if formula.name == event else FALSE
    if isinstance(formula, Not):
        return neg(progress(formula.operand, event))
    if isinstance(formula, And):
        return conj(progress(op, event) for op in formula.operands)
    if isinstance(formula, Or):
        return disj(progress(op, event) for op in formula.operands)
    if isinstance(formula, (Next, WeakNext)):
        # Both nexts progress to their operand: once an event has been
        # consumed a next position certainly existed.
        return formula.operand
    if isinstance(formula, Eventually):
        return disj([progress(formula.operand, event), formula])
    if isinstance(formula, Globally):
        return conj([progress(formula.operand, event), formula])
    if isinstance(formula, Until):
        return disj(
            [
                progress(formula.right, event),
                conj([progress(formula.left, event), formula]),
            ]
        )
    if isinstance(formula, WeakUntil):
        return disj(
            [
                progress(formula.right, event),
                conj([progress(formula.left, event), formula]),
            ]
        )
    if isinstance(formula, Release):
        return conj(
            [
                progress(formula.right, event),
                disj([progress(formula.left, event), formula]),
            ]
        )
    raise TypeError(f"not a Formula: {formula!r}")


@lru_cache(maxsize=None)
def accepts_empty(formula: Formula) -> bool:
    """Does the empty trace satisfy ``formula``?

    Mirrors the empty-suffix conventions of
    :mod:`repro.ltlf.semantics`: ``G``/``W``/``R``/``X[w]`` are true,
    atoms/``X``/``F``/``U`` are false.
    """
    if isinstance(formula, Top):
        return True
    if isinstance(formula, (Bottom, Atom, Next, Eventually, Until)):
        return False
    if isinstance(formula, (WeakNext, Globally, WeakUntil, Release)):
        return True
    if isinstance(formula, Not):
        return not accepts_empty(formula.operand)
    if isinstance(formula, And):
        return all(accepts_empty(op) for op in formula.operands)
    if isinstance(formula, Or):
        return any(accepts_empty(op) for op in formula.operands)
    raise TypeError(f"not a Formula: {formula!r}")


def progress_trace(formula: Formula, trace: tuple[str, ...] | list[str]) -> Formula:
    """Progress through a whole trace (left to right)."""
    current = formula
    for event in trace:
        current = progress(current, event)
        if isinstance(current, (Top, Bottom)):
            break
    return current


def satisfies_by_progression(formula: Formula, trace: tuple[str, ...] | list[str]) -> bool:
    """Decide ``trace ⊨ formula`` via progression (tested against
    :func:`repro.ltlf.semantics.evaluate`)."""
    return accepts_empty(progress_trace(formula, trace))
