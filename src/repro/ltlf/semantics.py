"""Direct finite-trace semantics of LTLf claims.

``evaluate(φ, trace)`` decides ``trace ⊨ φ`` by the textbook recursive
definition over suffixes.  This is the *reference* semantics: the
progression-based automaton of :mod:`repro.ltlf.translate` is
property-tested against it.

Conventions (traces may be empty; evaluation positions range over the
suffixes of the trace *including the empty suffix*):

* on the empty suffix: atoms, ``X``, ``F``, ``U`` are false;
  ``X[w]``, ``G``, ``W``, ``R`` are true;
* ``X φ`` consumes one event and evaluates φ on the (possibly empty)
  remainder — so ``X true`` means "an event exists here", and
  ``X (G φ)`` holds at the last event of a trace;
* ``F``/``G``/``U``/``W``/``R`` quantify over the *event positions* of
  the suffix (not the empty end-of-trace position).

These conventions are exactly mirrored by the progression rules in
:mod:`repro.ltlf.progression` — the agreement is property-tested.
"""

from __future__ import annotations

from typing import Sequence

from repro.ltlf.ast import (
    And,
    Atom,
    Bottom,
    Eventually,
    Formula,
    Globally,
    Next,
    Not,
    Or,
    Release,
    Top,
    Until,
    WeakNext,
    WeakUntil,
)


def evaluate(formula: Formula, trace: Sequence[str]) -> bool:
    """Decide whether the finite ``trace`` satisfies ``formula``."""
    return _holds(formula, tuple(trace), 0)


def _holds(formula: Formula, trace: tuple[str, ...], position: int) -> bool:
    """Does the suffix of ``trace`` starting at ``position`` satisfy
    ``formula``?  ``position == len(trace)`` is the empty suffix."""
    length = len(trace)
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Atom):
        return position < length and trace[position] == formula.name
    if isinstance(formula, Not):
        return not _holds(formula.operand, trace, position)
    if isinstance(formula, And):
        return all(_holds(op, trace, position) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_holds(op, trace, position) for op in formula.operands)
    if isinstance(formula, Next):
        return position < length and _holds(formula.operand, trace, position + 1)
    if isinstance(formula, WeakNext):
        return position >= length or _holds(formula.operand, trace, position + 1)
    if isinstance(formula, Eventually):
        return any(
            _holds(formula.operand, trace, k) for k in range(position, length)
        )
    if isinstance(formula, Globally):
        return all(
            _holds(formula.operand, trace, k) for k in range(position, length)
        )
    if isinstance(formula, Until):
        for k in range(position, length):
            if _holds(formula.right, trace, k):
                return True
            if not _holds(formula.left, trace, k):
                return False
        return False
    if isinstance(formula, WeakUntil):
        # φ W ψ  =  (φ U ψ) | G φ
        for k in range(position, length):
            if _holds(formula.right, trace, k):
                return True
            if not _holds(formula.left, trace, k):
                return False
        return True
    if isinstance(formula, Release):
        # φ R ψ: ψ must hold at every position up to and including the
        # first position where φ holds (if φ never holds, ψ always must).
        for k in range(position, length):
            if not _holds(formula.right, trace, k):
                return False
            if _holds(formula.left, trace, k):
                return True
        return True
    raise TypeError(f"not a Formula: {formula!r}")
