"""LTLf → regular expression, closing the regular-language circle.

The paper's conclusion (§5) proposes working "directly in
regular-languages" instead of re-encoding into ω-regular NuSMV models.
This module completes that programme: a claim formula translates to a
regular expression over event labels by composing the progression DFA
(:mod:`repro.ltlf.translate`) with state elimination
(:mod:`repro.automata.to_regex`), optionally simplified.

With both programs (via ``infer``) and claims as regexes, claim checking
becomes pure regular-language inclusion — exercised by the tests and by
``benchmarks/bench_scaling_ltlf.py``.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.minimize import minimize
from repro.automata.to_regex import nfa_to_regex
from repro.ltlf.ast import Formula, atoms as formula_atoms, neg
from repro.ltlf.translate import formula_to_dfa
from repro.regex.ast import Regex
from repro.regex.simplify import simplify


def formula_to_regex(
    formula: Formula,
    alphabet: Iterable[str] | None = None,
    simplified: bool = True,
) -> Regex:
    """A regular expression for the models of ``formula`` over ``alphabet``.

    The result accepts exactly the finite traces satisfying the formula
    under :mod:`repro.ltlf.semantics`.  ``alphabet`` defaults to the
    formula's atoms; enlarge it when the property must be judged over a
    wider event vocabulary (unmentioned events falsify atoms but are
    otherwise unconstrained).
    """
    if alphabet is None:
        alphabet = sorted(formula_atoms(formula))
    dfa = minimize(formula_to_dfa(formula, alphabet))
    regex = nfa_to_regex(dfa.to_nfa())
    return simplify(regex) if simplified else regex


def violation_regex(
    formula: Formula,
    alphabet: Iterable[str] | None = None,
    simplified: bool = True,
) -> Regex:
    """A regex for the *violating* traces (the language of ``!formula``)."""
    if alphabet is None:
        alphabet = sorted(formula_atoms(formula))
    return formula_to_regex(neg(formula), alphabet, simplified)
