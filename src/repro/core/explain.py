"""Counterexample explanation: from a flat trace to a narrated failure.

The paper's reports print a flat counterexample (``open_a, a.test,
a.open``).  For larger composites flat traces get hard to read, so this
module segments a counterexample by the composite operation that
produced each event and narrates the failing subsystem's progress
through its specification::

    during open_a:
        a.test        Valve 'a': test -> exit ['open']
        a.open        Valve 'a': open -> exit ['close']
    lifecycle ends here
        Valve 'a' is not in a final state (close or clean still required)

Used by the ``repro explain`` CLI command and available on the API as
:func:`explain_counterexample`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import START_STATE, ClassSpec
from repro.frontend.model_ast import ParsedClass


@dataclass(frozen=True)
class TraceStep:
    """One event of the counterexample, attributed and annotated.

    ``owner_operation`` is the composite operation during which the
    event happened; it is ``None`` exactly when the event *is* a
    composite operation (a segment header).
    """

    event: str
    owner_operation: str | None
    annotation: str


@dataclass(frozen=True)
class Explanation:
    """The narrated counterexample."""

    steps: tuple[TraceStep, ...]
    ending: str

    def format(self) -> str:
        lines: list[str] = []
        for step in self.steps:
            if step.owner_operation is None:
                lines.append(f"during {step.event}:")
            else:
                lines.append(f"    {step.event:<16} {step.annotation}".rstrip())
        lines.append("lifecycle ends here")
        lines.append(f"    {self.ending}")
        return "\n".join(lines)


def _describe_subsystem_event(
    specs: dict[str, ClassSpec],
    field_classes: dict[str, str],
    event: str,
    cursor: dict[str, frozenset],
) -> str:
    """Advance the per-field spec cursor and describe the move."""
    field, _dot, method = event.partition(".")
    class_name = field_classes.get(field)
    spec = specs.get(class_name) if class_name else None
    if spec is None:
        return ""
    states = cursor.get(field, frozenset({START_STATE}))
    allowed = spec.allowed_after(states)
    operation = spec.operation(method)
    if operation is None:
        cursor[field] = frozenset()
        return f"{class_name} '{field}': {method} is not a declared operation"
    if method not in allowed:
        legal = ", ".join(sorted(allowed)) or "(none)"
        cursor[field] = frozenset()
        return (
            f"{class_name} '{field}': {method} NOT ALLOWED here "
            f"(allowed: {legal})"
        )
    from repro.core.spec import exit_state

    cursor[field] = frozenset(
        exit_state(method, point.exit_id) for point in operation.returns
    )
    exits = " | ".join(
        "[" + ", ".join(point.next_methods) + "]" for point in operation.returns
    )
    return f"{class_name} '{field}': {method} -> exit {exits}"


def explain_counterexample(
    parsed: ParsedClass,
    specs: dict[str, ClassSpec],
    trace: tuple[str, ...],
) -> Explanation:
    """Narrate ``trace`` (a usage counterexample of ``parsed``)."""
    own_operations = set(parsed.operation_names())
    field_classes = {
        declaration.field_name: declaration.class_name
        for declaration in parsed.subsystems
    }
    cursor: dict[str, frozenset] = {}
    steps: list[TraceStep] = []
    current_owner: str | None = None
    for event in trace:
        if event in own_operations:
            current_owner = event
            steps.append(TraceStep(event=event, owner_operation=None, annotation=""))
            continue
        annotation = _describe_subsystem_event(specs, field_classes, event, cursor)
        steps.append(
            TraceStep(
                event=event,
                owner_operation=current_owner or "(top level)",
                annotation=annotation,
            )
        )

    # Which subsystems are left mid-lifecycle at the end?
    stuck: list[str] = []
    for field, states in cursor.items():
        class_name = field_classes.get(field)
        spec = specs.get(class_name) if class_name else None
        if spec is None or not states:
            continue
        accepting = {START_STATE} | {
            ("exit", operation.name, point.exit_id)
            for operation in spec.final_operations()
            for point in operation.returns
        }
        if not (set(states) & accepting):
            finals = ", ".join(op.name for op in spec.final_operations()) or "(none)"
            stuck.append(
                f"{class_name} '{field}' is not in a final state "
                f"({finals} still required)"
            )
    ending = "; ".join(stuck) if stuck else "all subsystems completed their lifecycles"
    return Explanation(steps=tuple(steps), ending=ending)
