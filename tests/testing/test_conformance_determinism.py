"""Conformance harness: determinism, and the outcome boundary.

The three-way classification is load-bearing for the miner (INFEASIBLE
sequences truncate the corpus, VIOLATIONs become notes), so each branch
of :func:`repro.testing.conformance.run_sequence` gets an explicit
boundary test:

* mid-run :class:`OrderViolationError`          → INFEASIBLE
* :class:`IncompleteLifecycleError` at finalize → INFEASIBLE
* :class:`SpecMismatchError`                    → VIOLATION
* any other exception from an operation body    → VIOLATION
"""

from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.runtime.monitor import monitored
from repro.testing.conformance import (
    Outcome,
    check_conformance,
    generate_suite,
    run_sequence,
)

# Two exit points on ``poll``: the static model over-approximates, so an
# implementation that always takes one exit renders suite sequences
# assuming the other exit infeasible (not faulty) — the §2 boundary.
GATE_SOURCE = '''
from repro.frontend.decorators import sys, op_initial, op_final

@sys
class Gate:
    @op_initial
    def poll(self):
        if self.ready:
            return ["fire"]
        return ["poll"]

    @op_final
    def fire(self):
        return ["poll"]
'''


def gate_spec() -> ClassSpec:
    module, _violations = parse_module(GATE_SOURCE)
    return ClassSpec.of(module.get_class("Gate"))


def make_impl(poll_returns, fire_raises=None):
    """A fresh (unmonitored) Gate implementation per call.

    ``monitored`` rewrites the class in place, so sharing one class
    between tests would leak monitor state across them.
    """

    class Gate:
        def poll(self):
            return list(poll_returns)

        def fire(self):
            if fire_raises is not None:
                raise fire_raises
            return ["poll"]

    return Gate


class TestDeterminism:
    def test_suite_is_deterministic_across_parses(self):
        first = generate_suite(gate_spec())
        second = generate_suite(gate_spec())
        assert first == second
        assert first, "transition cover must be non-empty"
        # Every suite sequence is a complete lifecycle of the spec.
        dfa = gate_spec().dfa()
        assert all(dfa.accepts(sequence) for sequence in first)

    def test_suite_truncation_is_a_prefix(self):
        full = generate_suite(gate_spec())
        assert generate_suite(gate_spec(), max_sequences=1) == full[:1]

    def test_report_bytes_are_deterministic(self):
        reports = [
            check_conformance(
                monitored(make_impl(["fire"]), spec=gate_spec()),
                gate_spec(),
            )
            for _ in range(2)
        ]
        assert reports[0].format() == reports[1].format()
        assert reports[0].conformant


class TestOutcomeBoundary:
    def test_order_violation_midrun_is_infeasible(self):
        # poll always retries, so a sequence assuming the ``fire`` exit
        # diverts: the static model over-approximated, no fault.
        wrapped = monitored(make_impl(["poll"]), spec=gate_spec())
        result = run_sequence(wrapped, ("poll", "fire"))
        assert result.outcome is Outcome.INFEASIBLE
        assert "after poll" in result.detail

    def test_incomplete_lifecycle_at_finalize_is_infeasible(self):
        # The calls all execute, but the run ends mid-lifecycle: the
        # sequence was infeasible *as a complete lifecycle*.
        wrapped = monitored(make_impl(["fire"]), spec=gate_spec())
        result = run_sequence(wrapped, ("poll",))
        assert result.outcome is Outcome.INFEASIBLE
        assert "mid-lifecycle" in result.detail

    def test_spec_mismatch_is_violation(self):
        wrapped = monitored(make_impl(["undeclared"]), spec=gate_spec())
        result = run_sequence(wrapped, ("poll", "fire"))
        assert result.outcome is Outcome.VIOLATION
        assert "no declared exit point" in result.detail

    def test_unexpected_exception_is_violation(self):
        wrapped = monitored(
            make_impl(["fire"], fire_raises=RuntimeError("solenoid jammed")),
            spec=gate_spec(),
        )
        result = run_sequence(wrapped, ("poll", "fire"))
        assert result.outcome is Outcome.VIOLATION
        assert "unexpected RuntimeError: solenoid jammed" in result.detail


class TestVerdict:
    def test_infeasible_does_not_break_conformance(self):
        # Always-fires implementation: retry sequences are infeasible,
        # the straight-through ones pass — still conformant.
        report = check_conformance(
            monitored(make_impl(["fire"]), spec=gate_spec()), gate_spec()
        )
        assert report.count(Outcome.VIOLATION) == 0
        assert report.count(Outcome.PASSED) > 0
        assert report.conformant
        assert "CONFORMANT" in report.format()

    def test_stuck_implementation_passes_only_the_empty_lifecycle(self):
        # Never fires: every non-empty suite sequence is infeasible.
        # Only the empty lifecycle (start state is accepting) passes.
        report = check_conformance(
            monitored(make_impl(["poll"]), spec=gate_spec()), gate_spec()
        )
        passed = [r for r in report.results if r.outcome is Outcome.PASSED]
        assert [r.sequence for r in passed] == [()]
        assert all(
            r.outcome is Outcome.INFEASIBLE
            for r in report.results
            if r.sequence
        )

    def test_violation_is_never_conformant(self):
        report = check_conformance(
            monitored(make_impl(["undeclared"]), spec=gate_spec()),
            gate_spec(),
        )
        assert report.violations()
        assert not report.conformant
        assert "NOT CONFORMANT" in report.format()
