"""Class specifications and their automata.

A class specification is the annotation-level view of a ``@sys`` class:
its operations, which are initial/final, and each operation's exit
points with their declared next-method sets.  Read as an automaton (the
dependency graph of §3.1 with the entry→exit arcs labelled by the
operation name), the specification denotes the *language of complete
lifecycles* of an instance:

* the automaton starts in a fresh ``start`` state;
* invoking operation ``m`` (allowed when ``m`` is initial, or listed in
  the current exit's next-method set) emits event ``m`` and moves to one
  of ``m``'s exit states (nondeterministically — which exit is taken is
  resolved by the callee's internal behavior);
* a lifecycle may end at any exit of a ``final`` operation, or before it
  ever began (the empty word: a never-used instance is a valid one —
  this matches the verdicts of §2.2, where the unused valve ``b`` is not
  reported).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, NFABuilder
from repro.frontend.model_ast import OperationDef, ParsedClass, ReturnPoint

#: State names used by the specification automaton.
START_STATE = "start"


def exit_state(operation: str, exit_id: int) -> tuple[str, str, int]:
    """The automaton state for exit ``exit_id`` of ``operation``."""
    return ("exit", operation, exit_id)


@dataclass(frozen=True)
class ClassSpec:
    """The specification of one ``@sys`` class."""

    name: str
    operations: tuple[OperationDef, ...]

    @staticmethod
    def of(parsed: ParsedClass) -> "ClassSpec":
        return ClassSpec(name=parsed.name, operations=parsed.operations)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def operation(self, name: str) -> OperationDef | None:
        for operation in self.operations:
            if operation.name == name:
                return operation
        return None

    def operation_names(self) -> tuple[str, ...]:
        return tuple(operation.name for operation in self.operations)

    def initial_operations(self) -> tuple[OperationDef, ...]:
        return tuple(op for op in self.operations if op.kind.is_initial)

    def final_operations(self) -> tuple[OperationDef, ...]:
        return tuple(op for op in self.operations if op.kind.is_final)

    def exit_points(self, operation: str) -> tuple[ReturnPoint, ...]:
        found = self.operation(operation)
        return found.returns if found is not None else ()

    # ------------------------------------------------------------------
    # Automata
    # ------------------------------------------------------------------

    def nfa(self, prefix: str = "") -> NFA:
        """The specification automaton, with events ``prefix + op name``.

        ``prefix`` is how a composite's subsystem instance scopes its
        events: ``Valve`` used as field ``a`` has events ``a.test`` etc.
        """
        builder = NFABuilder()
        builder.mark_initial(START_STATE)
        builder.mark_accepting(START_STATE)  # the empty lifecycle
        for operation in self.operations:
            for point in operation.returns:
                builder.add_state(exit_state(operation.name, point.exit_id))

        def connect(source, operation: OperationDef) -> None:
            label = prefix + operation.name
            for point in operation.returns:
                builder.add_transition(
                    source, label, exit_state(operation.name, point.exit_id)
                )

        for operation in self.initial_operations():
            connect(START_STATE, operation)
        for operation in self.operations:
            for point in operation.returns:
                source = exit_state(operation.name, point.exit_id)
                for next_name in point.next_methods:
                    next_operation = self.operation(next_name)
                    if next_operation is not None:
                        connect(source, next_operation)
            if operation.kind.is_final:
                for point in operation.returns:
                    builder.mark_accepting(exit_state(operation.name, point.exit_id))
        # Ensure every operation name is in the alphabet even when it is
        # unreachable (diagnosed separately) so products line up.
        for operation in self.operations:
            builder.alphabet.add(prefix + operation.name)
        return builder.build()

    def dfa(self, prefix: str = "") -> DFA:
        """Determinized specification automaton."""
        return determinize(self.nfa(prefix))

    def allowed_after(self, state: frozenset) -> frozenset[str]:
        """Operation names allowed from a subset-construction state.

        Used by diagnostics ("which calls were legal here?") and by the
        runtime monitor.
        """
        allowed: set[str] = set()
        for nfa_state in state:
            if nfa_state == START_STATE:
                allowed.update(op.name for op in self.initial_operations())
            elif isinstance(nfa_state, tuple) and nfa_state[0] == "exit":
                _tag, operation_name, exit_id = nfa_state
                for point in self.exit_points(operation_name):
                    if point.exit_id == exit_id:
                        allowed.update(point.next_methods)
        return frozenset(allowed)
