"""Structured verification diagnostics and their paper-style rendering.

The two headline errors of §2.2 are rendered byte-compatibly with the
paper's output::

    Error in specification: INVALID SUBSYSTEM USAGE
    Counter example: open_a, a.test, a.open
    Subsystems errors:
      * Valve 'a': test, >open< (not final)

    Error in specification: FAIL TO MEET REQUIREMENT
    Formula: (!a.open) W b.open
    Counter example: a.test, a.open, b.test, b.clean, a.close

Everything else (subset violations, specification lints, exhaustiveness
errors) uses a uniform ``severity code: message`` line format.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Diagnostic severity; only errors make a check fail."""

    ERROR = "error"
    WARNING = "warning"


#: Titles used in ``Error in specification:`` headers.
INVALID_SUBSYSTEM_USAGE = "INVALID SUBSYSTEM USAGE"
FAIL_TO_MEET_REQUIREMENT = "FAIL TO MEET REQUIREMENT"

#: Engine-failure kinds (quarantine verdicts of the batch supervisor):
#: the class could not be checked, and *that fact* is the diagnostic.
ENGINE_TIMEOUT = "timeout"
ENGINE_BUDGET = "budget"
ENGINE_CRASH = "crash"

_ENGINE_FAILURE_LABELS = {
    ENGINE_TIMEOUT: "ENGINE TIMEOUT",
    ENGINE_BUDGET: "ENGINE BUDGET",
    ENGINE_CRASH: "ENGINE CRASH",
}


@dataclass(frozen=True)
class SubsystemError:
    """One subsystem's failure along a counterexample trace.

    ``rendered`` is the annotated method sequence in the paper's
    notation, e.g. ``test, >open< (not final)``.
    """

    class_name: str
    field_name: str
    rendered: str

    def format(self) -> str:
        return f"  * {self.class_name} '{self.field_name}': {self.rendered}"


@dataclass(frozen=True)
class Diagnostic:
    """A single verification finding."""

    severity: Severity
    code: str
    message: str
    class_name: str = ""
    title: str = ""
    formula: str = ""
    counterexample: tuple[str, ...] | None = None
    subsystem_errors: tuple[SubsystemError, ...] = ()
    lineno: int = 0

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def format(self) -> str:
        """Render for terminal output (paper style for headline errors)."""
        if self.title:
            lines = [f"Error in specification: {self.title}"]
            if self.formula:
                lines.append(f"Formula: {self.formula}")
            if self.counterexample is not None:
                lines.append("Counter example: " + ", ".join(self.counterexample))
            if self.subsystem_errors:
                lines.append("Subsystems errors:")
                lines.extend(error.format() for error in self.subsystem_errors)
            return "\n".join(lines)
        scope = f" [{self.class_name}]" if self.class_name else ""
        location = f" (line {self.lineno})" if self.lineno else ""
        return f"{self.severity.value}{scope} {self.code}: {self.message}{location}"


@dataclass
class CheckResult:
    """The outcome of checking one class or one module."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostic was produced."""
        return not any(diagnostic.is_error for diagnostic in self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    def extend(self, other: "CheckResult") -> None:
        self.diagnostics.extend(other.diagnostics)

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def format(self) -> str:
        """All diagnostics, blank-line separated, or the OK banner."""
        if not self.diagnostics:
            return "OK: specification verified"
        return "\n\n".join(diagnostic.format() for diagnostic in self.diagnostics)


def engine_failure(
    kind: str, class_name: str, detail: str, attempts: int = 1
) -> Diagnostic:
    """The quarantine verdict of the batch supervisor for one class.

    ``kind`` is one of :data:`ENGINE_TIMEOUT`, :data:`ENGINE_BUDGET`,
    :data:`ENGINE_CRASH`.  The diagnostic is an *error* — the class was
    not verified — but it is structured and per-class, so one poisonous
    class degrades the report instead of sinking the whole run.
    """
    label = _ENGINE_FAILURE_LABELS.get(kind)
    if label is None:
        raise ValueError(f"unknown engine-failure kind: {kind!r}")
    plural = "s" if attempts != 1 else ""
    return Diagnostic(
        severity=Severity.ERROR,
        code=f"engine-{kind}",
        message=f"{label}: class not verified after "
        f"{attempts} attempt{plural}: {detail}",
        class_name=class_name,
    )


def from_subset_violation(violation) -> Diagnostic:
    """Adapt a frontend :class:`SubsetViolation` into a diagnostic."""
    severity = Severity.ERROR if violation.severity == "error" else Severity.WARNING
    return Diagnostic(
        severity=severity,
        code=violation.code,
        message=violation.message,
        class_name=violation.class_name,
        lineno=violation.lineno,
    )
