"""The tracing core: spans, events, counters, and the null fast path."""

import pickle

from repro.obs import NULL_TRACER, PHASES, STATUSES, Span, Tracer
from repro.obs.tracer import _NULL_SPAN


class TestSpans:
    def test_live_spans_nest_under_the_open_span(self):
        tracer = Tracer()
        with tracer.span("run", "run"):
            with tracer.span("wave", "wave-0"):
                with tracer.span("phase", "infer"):
                    pass
        (run,) = tracer.root.children
        (wave,) = run.children
        (phase,) = wave.children
        assert (run.kind, wave.kind, phase.kind) == ("run", "wave", "phase")

    def test_live_spans_measure_time(self):
        calls = iter([10.0, 10.25])
        tracer = Tracer(clock=lambda: next(calls))
        with tracer.span("phase", "infer"):
            pass
        assert tracer.root.children[0].seconds == 0.25

    def test_exception_marks_the_span_errored(self):
        tracer = Tracer()
        try:
            with tracer.span("phase", "infer"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.root.children[0].status == "error"

    def test_recorded_children_graft_without_a_clock(self):
        parent = Span("class", "Device")
        child = parent.child("phase", "infer", seconds=0.5, nfa_states=7)
        assert child.seconds == 0.5
        assert child.attrs == {"nfa_states": 7}
        assert parent.children == [child]

    def test_annotate_targets_the_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("phase", "determinize"):
            tracer.annotate(dfa_states=12)
        assert tracer.root.children[0].attrs == {"dfa_states": 12}

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("run", "run"):
            with tracer.span("wave", "w0"):
                pass
            with tracer.span("wave", "w1"):
                pass
        names = [span.name for span in tracer.root.walk()]
        assert names == ["root", "run", "w0", "w1"]


class TestEventsAndCounters:
    def test_events_attach_to_the_open_span_and_count(self):
        tracer = Tracer()
        with tracer.span("wave", "wave-0"):
            tracer.event("retry", cls="Device", attempt=1)
        (wave,) = tracer.root.children
        assert wave.events == [{"name": "retry", "cls": "Device", "attempt": 1}]
        assert tracer.counters == {"event.retry": 1}

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.counter("lookups")
        tracer.counter("lookups", 2)
        assert tracer.counters == {"lookups": 3}


class TestPhaseAggregation:
    def test_phase_totals_is_picklable_and_sums_same_named_phases(self):
        tracer = Tracer()
        with tracer.span("phase", "infer"):
            tracer.annotate(nfa_states=5)
        with tracer.span("phase", "infer"):
            pass
        totals = pickle.loads(pickle.dumps(tracer.phase_totals()))
        assert set(totals) == {"infer"}
        assert totals["infer"]["attrs"] == {"nfa_states": 5}

    def test_phase_aggregate_counts_non_ok_records(self):
        tracer = Tracer()
        with tracer.span("wave", "wave-0") as wave:
            span = wave.child("class", "Device", status="cached")
            for phase in PHASES:
                span.child("phase", phase, status="cached")
        aggregate = tracer.phase_aggregate()
        assert set(aggregate) == set(PHASES)
        assert all(entry["calls"] == 1 for entry in aggregate.values())


class TestNullFastPath:
    def test_disabled_tracer_allocates_nothing(self):
        # The singleton contract: every call returns the same object, so
        # instrumented hot loops pay one method call and nothing else.
        spans = {id(NULL_TRACER.span("phase", "infer")) for _ in range(32)}
        assert spans == {id(_NULL_SPAN)}
        assert NULL_TRACER.enabled is False

    def test_null_span_swallows_the_whole_api(self):
        with NULL_TRACER.span("phase", "infer", big=1) as span:
            span.annotate(x=1)
            span.event("noise")
            assert span.child("phase", "nested") is span
        NULL_TRACER.event("noise")
        NULL_TRACER.counter("n")
        NULL_TRACER.annotate(y=2)
        assert NULL_TRACER.current is None

    def test_statuses_are_the_documented_vocabulary(self):
        assert STATUSES == ("ok", "cached", "skipped", "quarantined")
        assert len(PHASES) == 7
