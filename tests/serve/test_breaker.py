"""The circuit breaker's state machine and deterministic backoff."""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def tripped(clock, threshold=3, base=1.0, maximum=30.0):
    breaker = CircuitBreaker(threshold, base, maximum, clock=clock)
    for _ in range(threshold):
        breaker.record_failure()
    assert breaker.state == OPEN
    return breaker


class TestTripping:
    def test_stays_closed_below_threshold(self, clock):
        breaker = CircuitBreaker(3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_crash_streak(self, clock):
        breaker = CircuitBreaker(3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never 3 *consecutive* failures

    def test_threshold_trips_open_and_blocks(self, clock):
        breaker = tripped(clock)
        assert not breaker.allow()
        assert breaker.trips_total == 1
        assert breaker.retry_after() == pytest.approx(1.0)

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(1, base_backoff=0.0, clock=clock)


class TestDeterministicBackoff:
    def test_backoff_doubles_per_consecutive_trip(self, clock):
        breaker = tripped(clock, threshold=1, base=1.0, maximum=30.0)
        observed = []
        for _ in range(7):
            observed.append(breaker.backoff)
            clock.advance(breaker.backoff)
            assert breaker.allow()  # half-open probe
            breaker.record_failure()  # probe crashes: re-trip
        assert observed == [1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0]

    def test_retry_after_counts_down_with_the_clock(self, clock):
        breaker = tripped(clock, threshold=1, base=4.0)
        clock.advance(1.5)
        assert breaker.retry_after() == pytest.approx(2.5)
        clock.advance(10.0)
        assert breaker.retry_after() == 0.0


class TestHalfOpen:
    def test_exactly_one_probe_is_admitted(self, clock):
        breaker = tripped(clock)
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # a second job must wait for the verdict

    def test_probe_success_closes_and_resets_backoff(self, clock):
        breaker = tripped(clock, threshold=1, base=1.0)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # trip 2 → backoff 2s
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_trips == 0
        assert breaker.backoff == pytest.approx(1.0)  # back to base
        assert breaker.allow()

    def test_probe_failure_retrips_immediately(self, clock):
        breaker = tripped(clock)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # one probe crash suffices in half-open
        assert breaker.state == OPEN
        assert breaker.trips_total == 2

    def test_snapshot_is_json_shaped(self, clock):
        breaker = tripped(clock)
        snapshot = breaker.snapshot()
        assert snapshot["state"] == OPEN
        assert snapshot["trips_total"] == 1
        assert snapshot["backoff_seconds"] == 1.0
        assert snapshot["retry_after_seconds"] == 1.0
