"""Bitset automata: int-state machines whose state *sets* are plain ints.

A :class:`BitNFA` stores, for every state ``s`` and symbol id ``a``, the
successor set as an int bit mask; epsilon structure is precomputed into
per-state closure masks and *closed* successor masks, so one macro-step
of the subset construction is just ``OR`` over set bits.  A
:class:`BitDFA` is a partial DFA with states ``0..n-1``, a flat
``delta`` array of length ``n*k`` (``-1`` = missing move = reject) and
an accepting bit mask.

Conversions to and from the classic object automata keep the kernel
interchangeable with the oracle implementation; state *names* are
dropped (the checker's verdicts never depend on them — counterexample
words and language questions are name-free).
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.kernel.alphabet import Alphabet


class BitNFA:
    """An NFA over interned symbols with bit-mask state sets.

    ``succ[s][a]`` is the raw successor mask for symbol id ``a``;
    ``eps[s]`` the direct epsilon-successor mask; ``closure[s]`` the
    full epsilon closure of ``{s}`` (always containing ``s``);
    ``closed_succ[s][a]`` the epsilon-closed successor mask — the only
    table the subset construction reads.  ``initial`` is already
    epsilon-closed.
    """

    __slots__ = (
        "alphabet",
        "n",
        "succ",
        "eps",
        "closure",
        "closed_succ",
        "initial",
        "accepting",
    )

    def __init__(
        self,
        alphabet: Alphabet,
        n: int,
        succ: list[list[int]],
        eps: list[int],
        initial: int,
        accepting: int,
    ):
        self.alphabet = alphabet
        self.n = n
        self.succ = succ
        self.eps = eps
        if not any(eps):
            # Epsilon-free fast path (every spec automaton, and any
            # projection that dropped nothing): closures are trivial and
            # the closed successor table IS the raw one.  Neither is
            # ever mutated, so sharing the list is safe.
            self.closure = [1 << s for s in range(n)]
            self.closed_succ = succ
            self.initial = initial
            self.accepting = accepting
            return
        self.closure = _closures(n, eps)
        closure = self.closure
        # States whose closure is more than themselves; masks disjoint
        # from this set need no folding at all.
        nontrivial = 0
        for s in range(n):
            if closure[s] != 1 << s:
                nontrivial |= 1 << s
        closed: list[list[int]] = []
        for row in succ:
            closed_row: list[int] = []
            for mask in row:
                if not mask & nontrivial:
                    closed_row.append(mask)
                    continue
                folded = mask & ~nontrivial
                mask &= nontrivial
                while mask:
                    low = mask & -mask
                    folded |= closure[low.bit_length() - 1]
                    mask ^= low
                closed_row.append(folded)
            closed.append(closed_row)
        self.closed_succ = closed
        if initial & nontrivial:
            init = initial & ~nontrivial
            mask = initial & nontrivial
            while mask:
                low = mask & -mask
                init |= closure[low.bit_length() - 1]
                mask ^= low
            self.initial = init
        else:
            self.initial = initial
        self.accepting = accepting

    # ------------------------------------------------------------------

    def step(self, subset: int, symbol_id: int) -> int:
        """One macro-step: closed successor mask of ``subset``."""
        closed_succ = self.closed_succ
        moved = 0
        while subset:
            low = subset & -subset
            moved |= closed_succ[low.bit_length() - 1][symbol_id]
            subset ^= low
        return moved

    def accepts(self, word: Iterable[str]) -> bool:
        """Does the automaton accept ``word`` (a word of symbols)?"""
        get_id = self.alphabet.get
        current = self.initial
        for symbol in word:
            symbol_id = get_id(symbol)
            if symbol_id < 0:
                return False
            current = self.step(current, symbol_id)
            if not current:
                return False
        return bool(current & self.accepting)


class BitDFA:
    """A partial DFA with int states and a flat transition array.

    ``delta[s * k + a]`` is the successor of state ``s`` on symbol id
    ``a``, or ``-1`` when the move is undefined (rejection).
    """

    __slots__ = ("alphabet", "n", "delta", "initial", "accepting")

    def __init__(
        self,
        alphabet: Alphabet,
        n: int,
        delta: list[int],
        initial: int,
        accepting: int,
    ):
        if len(delta) != n * len(alphabet):
            raise ValueError(
                f"delta length {len(delta)} != n*k = {n * len(alphabet)}"
            )
        if not 0 <= initial < max(n, 1):
            raise ValueError(f"initial state {initial} out of range")
        self.alphabet = alphabet
        self.n = n
        self.delta = delta
        self.initial = initial
        self.accepting = accepting

    # ------------------------------------------------------------------

    def successor(self, state: int, symbol_id: int) -> int:
        """Successor state id, or ``-1`` when the move is undefined."""
        return self.delta[state * len(self.alphabet) + symbol_id]

    def accepts(self, word: Iterable[str]) -> bool:
        """Does the automaton accept ``word`` (a word of symbols)?"""
        get_id = self.alphabet.get
        k = len(self.alphabet)
        delta = self.delta
        state = self.initial
        for symbol in word:
            symbol_id = get_id(symbol)
            if symbol_id < 0:
                return False
            state = delta[state * k + symbol_id]
            if state < 0:
                return False
        return bool(self.accepting >> state & 1)

    def accepting_states(self) -> tuple[int, ...]:
        """Accepting state ids, ascending."""
        found = []
        mask = self.accepting
        while mask:
            low = mask & -mask
            found.append(low.bit_length() - 1)
            mask ^= low
        return tuple(found)


# ----------------------------------------------------------------------
# Closure computation
# ----------------------------------------------------------------------

def _closures(n: int, eps: list[int]) -> list[int]:
    """Epsilon closure masks: ``closure[s]`` ⊇ ``{s}`` ∪ eps-reachable.

    Fixpoint by repeated mask folding; each round at least doubles the
    reachable path length, so rounds are logarithmic in the longest
    epsilon chain.
    """
    closure = [(1 << s) | eps[s] for s in range(n)]
    changed = True
    while changed:
        changed = False
        for s in range(n):
            current = closure[s]
            folded = current
            mask = current
            while mask:
                low = mask & -mask
                folded |= closure[low.bit_length() - 1]
                mask ^= low
            if folded != current:
                closure[s] = folded
                changed = True
    return closure


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------

def nfa_to_bitnfa(nfa: NFA, alphabet: Alphabet | None = None) -> BitNFA:
    """Intern a classic :class:`~repro.automata.nfa.NFA` into bitsets.

    ``alphabet`` (optional) supplies a shared interner; it must contain
    every symbol of ``nfa``.  State names are dropped — the id order is
    the sorted-by-``str`` order of the original states, which keeps the
    conversion deterministic across processes (state names hash
    differently per process, but sort identically).
    """
    if alphabet is None:
        alphabet = Alphabet(nfa.alphabet)
    states = sorted(nfa.states, key=str)
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    k = len(alphabet)
    succ: list[list[int]] = [[0] * k for _ in range(n)]
    for (source, symbol), targets in nfa.transitions.items():
        mask = 0
        for target in targets:
            mask |= 1 << index[target]
        succ[index[source]][alphabet.id_of(symbol)] |= mask
    eps = [0] * n
    for source, targets in nfa.epsilon_moves.items():
        mask = 0
        for target in targets:
            mask |= 1 << index[target]
        eps[index[source]] |= mask
    initial = 0
    for state in nfa.initial_states:
        initial |= 1 << index[state]
    accepting = 0
    for state in nfa.accepting_states:
        accepting |= 1 << index[state]
    return BitNFA(alphabet, n, succ, eps, initial, accepting)


def dfa_to_bitdfa(dfa: DFA, alphabet: Alphabet | None = None) -> BitDFA:
    """Intern a classic :class:`~repro.automata.dfa.DFA` into bitsets."""
    if alphabet is None:
        alphabet = Alphabet(dfa.alphabet)
    states = sorted(dfa.states, key=str)
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    k = len(alphabet)
    delta = [-1] * (n * k)
    for (source, symbol), target in dfa.transitions.items():
        delta[index[source] * k + alphabet.id_of(symbol)] = index[target]
    accepting = 0
    for state in dfa.accepting_states:
        accepting |= 1 << index[state]
    return BitDFA(alphabet, n, delta, index[dfa.initial_state], accepting)


def bitdfa_to_dfa(bitdfa: BitDFA) -> DFA:
    """The classic-object view of a :class:`BitDFA` (int state names)."""
    k = len(bitdfa.alphabet)
    symbols = bitdfa.alphabet.symbols
    delta = bitdfa.delta
    transitions: dict[tuple[int, str], int] = {}
    for state in range(bitdfa.n):
        base = state * k
        for symbol_id in range(k):
            target = delta[base + symbol_id]
            if target >= 0:
                transitions[(state, symbols[symbol_id])] = target
    return DFA(
        states=frozenset(range(max(bitdfa.n, 1))) if bitdfa.n else frozenset({0}),
        alphabet=frozenset(symbols),
        transitions=transitions,
        initial_state=bitdfa.initial,
        accepting_states=frozenset(bitdfa.accepting_states()),
    )


def project_bitnfa(bitnfa: BitNFA, keep: Iterable[str]) -> BitNFA:
    """Project onto a sub-vocabulary: dropped symbols become epsilon.

    The kernel twin of :func:`repro.automata.operations.project_nfa`.
    The result's alphabet is exactly ``keep`` (canonically interned),
    including symbols the automaton never produces — those simply have
    no transitions, which is what lets a claim observe an event that a
    violated absence never emits.
    """
    kept = Alphabet(keep)
    old = bitnfa.alphabet
    n = bitnfa.n
    old_succ = bitnfa.succ
    eps = list(bitnfa.eps)
    k_new = len(kept)
    kept_ids = [kept.get(symbol) for symbol in old.symbols]
    succ: list[list[int]] = [[0] * k_new for _ in range(n)]
    for s in range(n):
        row = old_succ[s]
        new_row = succ[s]
        extra_eps = 0
        for old_id, new_id in enumerate(kept_ids):
            mask = row[old_id]
            if not mask:
                continue
            if new_id < 0:
                extra_eps |= mask
            else:
                new_row[new_id] |= mask
        if extra_eps:
            eps[s] |= extra_eps
    return BitNFA(kept, n, succ, eps, bitnfa.initial, bitnfa.accepting)
