"""Table 2 — return statements and their meanings.

Regenerates every row by parsing each return form and rendering its
meaning through :func:`describe_return`, timing the return-analysis pass.
"""

import ast

from repro.frontend.returns import describe_return, parse_return

#: (source, expected next methods, expected has_user_value) per row.
ROWS = [
    ('return ["close"]', ("close",), False),
    ('return ["open", "clean"]', ("open", "clean"), False),
    ('return ["close"], 2', ("close",), True),
    ('return ["close"], True', ("close",), True),
    ('return ["open", "clean"], 2', ("open", "clean"), True),
]


def _return_node(source: str) -> ast.Return:
    module = ast.parse(f"def f():\n    {source}")
    return module.body[0].body[0]


def _parse_all_rows():
    parsed = []
    for source, next_methods, has_user_value in ROWS:
        point = parse_return(_return_node(source), 0)
        assert point.next_methods == next_methods
        assert point.has_user_value == has_user_value
        parsed.append((source, describe_return(point)))
    return parsed


def test_table2_return_forms(benchmark):
    rows = benchmark(_parse_all_rows)
    assert len(rows) == 5
    print("\nTable 2 (reproduced):")
    for source, meaning in rows:
        print(f"  {source:<30} {meaning}")
    # Spot-check the prose against the paper's wording.
    assert rows[0][1] == "expecting method 'close' to be invoked next"
    assert "'open' or 'clean'" in rows[1][1]
    assert rows[2][1].endswith("(and returns a user value)")
