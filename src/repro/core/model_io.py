"""Serialization of extracted models to a stable JSON interchange format.

Shelley-style toolchains pass extracted models between tools (checker,
visualizer, NuSMV backend); this module defines that interchange for the
reproduction.  Three payload kinds share an envelope with a ``kind`` and
``version`` field:

* ``class-spec`` — a :class:`ClassSpec` (operations, kinds, exits),
* ``dependency-graph`` — the §3.1 graph,
* ``dfa`` — any determinized automaton (states renumbered).

Round trips are exact: ``load_spec(dump_spec(spec)) == spec`` up to the
frontend-only fields (body IR and match facts are *not* serialized —
they are source-level artifacts; the model is the annotation structure).
"""

from __future__ import annotations

import json
from typing import Any

from repro.automata.dfa import DFA
from repro.core.dependency import DependencyGraph, extract_dependency_graph
from repro.core.spec import ClassSpec
from repro.frontend.model_ast import OperationDef, OpKind, ParsedClass, ReturnPoint
from repro.lang.ast import SKIP

FORMAT_VERSION = 1


class ModelFormatError(ValueError):
    """Raised when a payload is not a valid serialized model."""


def _envelope(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    return {"kind": kind, "version": FORMAT_VERSION, **payload}


def _check_envelope(data: dict[str, Any], kind: str) -> None:
    if not isinstance(data, dict):
        raise ModelFormatError("payload must be a JSON object")
    if data.get("kind") != kind:
        raise ModelFormatError(f"expected kind {kind!r}, got {data.get('kind')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ModelFormatError(f"unsupported format version {data.get('version')!r}")


# ----------------------------------------------------------------------
# Class specifications
# ----------------------------------------------------------------------

def spec_to_dict(spec: ClassSpec) -> dict[str, Any]:
    """Serialize a class specification."""
    return _envelope(
        "class-spec",
        {
            "name": spec.name,
            "operations": [
                {
                    "name": operation.name,
                    "kind": operation.kind.value,
                    "exits": [
                        {
                            "exit_id": point.exit_id,
                            "next_methods": list(point.next_methods),
                            "has_user_value": point.has_user_value,
                        }
                        for point in operation.returns
                    ],
                }
                for operation in spec.operations
            ],
        },
    )


def spec_from_dict(data: dict[str, Any]) -> ClassSpec:
    """Deserialize a class specification.

    The reconstructed operations carry ``skip`` bodies: the interchange
    format transports the *model*, not the source.
    """
    _check_envelope(data, "class-spec")
    try:
        operations = tuple(
            OperationDef(
                name=op["name"],
                kind=OpKind(op["kind"]),
                returns=tuple(
                    ReturnPoint(
                        exit_id=exit_data["exit_id"],
                        next_methods=tuple(exit_data["next_methods"]),
                        has_user_value=bool(exit_data.get("has_user_value", False)),
                    )
                    for exit_data in op["exits"]
                ),
                body=SKIP,
            )
            for op in data["operations"]
        )
        return ClassSpec(name=data["name"], operations=operations)
    except (KeyError, TypeError, ValueError) as error:
        raise ModelFormatError(f"malformed class-spec payload: {error}") from error


def dump_spec(spec: ClassSpec, indent: int | None = 2) -> str:
    return json.dumps(spec_to_dict(spec), indent=indent, sort_keys=True)


def load_spec(text: str) -> ClassSpec:
    return spec_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Dependency graphs
# ----------------------------------------------------------------------

def dependency_graph_to_dict(graph: DependencyGraph) -> dict[str, Any]:
    """Serialize a §3.1 dependency graph."""
    return _envelope(
        "dependency-graph",
        {
            "class_name": graph.class_name,
            "entries": [entry.method for entry in graph.entries],
            "exits": [
                {
                    "method": node.method,
                    "exit_id": node.exit_id,
                    "next_methods": list(node.next_methods),
                }
                for node in graph.exits
            ],
        },
    )


def dependency_graph_from_dict(data: dict[str, Any]) -> DependencyGraph:
    """Deserialize by rebuilding through the extraction function, which
    recomputes the arcs (they are derived data)."""
    _check_envelope(data, "dependency-graph")
    try:
        operations = []
        exits_by_method: dict[str, list[dict[str, Any]]] = {}
        for exit_data in data["exits"]:
            exits_by_method.setdefault(exit_data["method"], []).append(exit_data)
        for method in data["entries"]:
            returns = tuple(
                ReturnPoint(
                    exit_id=e["exit_id"], next_methods=tuple(e["next_methods"])
                )
                for e in exits_by_method.get(method, [])
            )
            operations.append(
                OperationDef(
                    name=method, kind=OpKind.MIDDLE, returns=returns, body=SKIP
                )
            )
        surrogate = ParsedClass(
            name=data["class_name"],
            subsystem_fields=(),
            claims=(),
            operations=tuple(operations),
            subsystems=(),
        )
        return extract_dependency_graph(surrogate)
    except (KeyError, TypeError) as error:
        raise ModelFormatError(f"malformed dependency-graph payload: {error}") from error


def dump_dependency_graph(graph: DependencyGraph, indent: int | None = 2) -> str:
    return json.dumps(dependency_graph_to_dict(graph), indent=indent, sort_keys=True)


def load_dependency_graph(text: str) -> DependencyGraph:
    return dependency_graph_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Automata
# ----------------------------------------------------------------------

def dfa_to_dict(dfa: DFA) -> dict[str, Any]:
    """Serialize a DFA (states renumbered to stable integers first)."""
    stable = dfa.renumbered()
    return _envelope(
        "dfa",
        {
            "alphabet": sorted(stable.alphabet),
            "states": sorted(stable.states),
            "initial": stable.initial_state,
            "accepting": sorted(stable.accepting_states),
            "transitions": [
                [source, symbol, target]
                for (source, symbol), target in sorted(
                    stable.transitions.items(), key=lambda kv: (kv[0][0], kv[0][1])
                )
            ],
        },
    )


def dfa_from_dict(data: dict[str, Any]) -> DFA:
    _check_envelope(data, "dfa")
    try:
        return DFA(
            states=frozenset(data["states"]),
            alphabet=frozenset(data["alphabet"]),
            transitions={
                (source, symbol): target
                for source, symbol, target in data["transitions"]
            },
            initial_state=data["initial"],
            accepting_states=frozenset(data["accepting"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ModelFormatError(f"malformed dfa payload: {error}") from error


def dump_dfa(dfa: DFA, indent: int | None = 2) -> str:
    return json.dumps(dfa_to_dict(dfa), indent=indent, sort_keys=True)


def load_dfa(text: str) -> DFA:
    return dfa_from_dict(json.loads(text))
