"""Content-addressed fingerprints of extracted models.

The batch engine caches two kinds of result (see :mod:`repro.engine.cache`):

* per-method: the inferred behavior of one body IR term ``p`` — keyed by
  the term itself (Figure 4's ``infer(p)`` is a pure function of ``p``);
* per-class: the check verdict — keyed by the class's full syntactic
  content *plus* the specification structure of every subsystem class it
  names (the usage, exhaustiveness and claim checks read those specs).

Keys are hex SHA-256 digests of a canonical textual rendering.  The
rendering is deliberately boring: nested s-expressions with every field
spelled out, so two inputs collide exactly when they are structurally
equal.  Line numbers are *included* in class fingerprints because cached
diagnostics carry line numbers — shifting a method down a file must miss
the verdict cache so reports stay byte-accurate — but *excluded* from
method fingerprints, where only the IR term determines the answer.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

from repro.frontend.model_ast import OperationDef, ParsedClass
from repro.lang.ast import Call, If, Loop, Program, Return, Seq, Skip

#: Bump when the rendering (or anything the cached payloads depend on)
#: changes shape; stale cache entries then miss instead of lying.
FINGERPRINT_VERSION = 1


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Body IR terms
# ----------------------------------------------------------------------

def program_text(program: Program) -> str:
    """Canonical rendering of a body IR term."""
    if isinstance(program, Call):
        return f"(call {program.name})"
    if isinstance(program, Skip):
        return "(skip)"
    if isinstance(program, Return):
        annotation = "-" if program.exit_id is None else str(program.exit_id)
        if program.next_methods is None:
            nexts = "-"
        else:
            nexts = ",".join(program.next_methods)
        return f"(return {annotation} [{nexts}])"
    if isinstance(program, Seq):
        return f"(seq {program_text(program.first)} {program_text(program.second)})"
    if isinstance(program, If):
        return (
            f"(if {program_text(program.then_branch)} "
            f"{program_text(program.else_branch)})"
        )
    if isinstance(program, Loop):
        return f"(loop {program_text(program.body)})"
    raise TypeError(f"not a Program: {program!r}")


def method_key(operation: OperationDef) -> str:
    """Cache key for one method's inferred behavior.

    The inferred per-exit regexes depend on the body term and on the
    declared exit points (missing exits default to ``eps``), nothing
    else — in particular not on the method's name or position.
    """
    exits = ",".join(str(point.exit_id) for point in operation.returns)
    text = f"v{FINGERPRINT_VERSION};exits[{exits}];{program_text(operation.body)}"
    return _digest(text)


# ----------------------------------------------------------------------
# Classes and their dependency context
# ----------------------------------------------------------------------

def _operation_text(operation: OperationDef, with_lineno: bool) -> str:
    returns = " ".join(
        f"(exit {point.exit_id} [{','.join(point.next_methods)}] "
        f"{int(point.has_user_value)}"
        + (f" @{point.lineno}" if with_lineno else "")
        + ")"
        for point in operation.returns
    )
    matches = " ".join(
        f"(match {use.subsystem}.{use.method} "
        f"[{';'.join(','.join(case) for case in use.handled)}] "
        f"{int(use.has_wildcard)}"
        + (f" @{use.lineno}" if with_lineno else "")
        + ")"
        for use in operation.match_uses
    )
    calls = ",".join(sorted(operation.calls))
    location = f" @{operation.lineno}" if with_lineno else ""
    return (
        f"(op {operation.name} {operation.kind.value}{location} "
        f"(returns {returns}) (matches {matches}) (calls {calls}) "
        f"{program_text(operation.body)})"
    )


def spec_text(parsed: ParsedClass) -> str:
    """Rendering of the *specification structure* only.

    This is exactly what :class:`repro.core.spec.ClassSpec` is built
    from: operation names, kinds and exit points.  Bodies, claims and
    line numbers are irrelevant to how a class behaves *as a subsystem
    of someone else*, so they are left out — editing a method body of
    ``Valve`` must not invalidate the cached verdict of ``Sector``.
    """
    operations = " ".join(
        f"(op {operation.name} {operation.kind.value} "
        + " ".join(
            f"(exit {point.exit_id} [{','.join(point.next_methods)}])"
            for point in operation.returns
        )
        + ")"
        for operation in parsed.operations
    )
    return f"(spec {parsed.name} {operations})"


def spec_fingerprint(parsed: ParsedClass) -> str:
    return _digest(f"v{FINGERPRINT_VERSION};{spec_text(parsed)}")


def class_text(parsed: ParsedClass) -> str:
    """Full canonical rendering of a parsed class, line numbers included."""
    fields = ",".join(parsed.subsystem_fields)
    claims = " ".join(f"(claim {text!r})" for text in parsed.claims)
    subsystems = " ".join(
        f"(uses {decl.field_name} {decl.class_name} @{decl.lineno})"
        for decl in parsed.subsystems
    )
    operations = " ".join(
        _operation_text(operation, with_lineno=True)
        for operation in parsed.operations
    )
    return (
        f"(class {parsed.name} @{parsed.lineno} (fields {fields}) "
        f"(claims {claims}) (subsystems {subsystems}) {operations})"
    )


def class_fingerprint(parsed: ParsedClass) -> str:
    """Digest of one class's full syntactic content, *dependencies
    excluded* — the "own syntax" half of :func:`class_key`.

    The incremental planner (:mod:`repro.engine.incremental`) stores
    this per class and compares it across runs: together with the
    :func:`spec_fingerprint` of every named subsystem it determines the
    verdict key exactly, so "own fingerprint unchanged + every
    dependency's spec digest unchanged" implies "``class_key``
    unchanged" — the soundness contract of verdict reuse.
    """
    return _digest(f"v{FINGERPRINT_VERSION};{class_text(parsed)}")


def class_key(parsed: ParsedClass, specs_in_scope: Mapping[str, ParsedClass]) -> str:
    """Cache key for a class's check verdict.

    ``specs_in_scope`` maps class name → parsed class for every class
    whose specification the checker could consult (all classes of the
    module/project).  Only the classes this one actually names as
    subsystem types contribute — their *spec* fingerprint, not their full
    content — so touching an unrelated class leaves the key unchanged.
    """
    parts = [f"v{FINGERPRINT_VERSION}", class_text(parsed)]
    for class_name in sorted({decl.class_name for decl in parsed.subsystems}):
        dependency = specs_in_scope.get(class_name)
        if dependency is None:
            parts.append(f"(missing {class_name})")
        else:
            parts.append(f"(dep {class_name} {spec_fingerprint(dependency)})")
    return _digest(";".join(parts))
