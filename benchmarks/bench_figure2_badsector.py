"""Figure 2 and the two §2.2 error reports — the BadSector verdicts.

Regenerates and times the complete verification of Listing 2.1 +
Listing 2.2 and asserts both error reports:

* ``INVALID SUBSYSTEM USAGE`` byte-for-byte as printed in the paper
  (counterexample ``open_a, a.test, a.open``; detail
  ``Valve 'a': test, >open< (not final)``);
* ``FAIL TO MEET REQUIREMENT`` for ``(!a.open) W b.open`` with a
  counterexample that genuinely violates the formula (ours is the
  *shortest* such trace; the paper prints a longer, non-minimal one —
  see EXPERIMENTS.md).
"""

from repro.core.checker import check_source
from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.ltlf.parser import parse_claim
from repro.ltlf.semantics import evaluate
from repro.paper import SECTION_2_MODULE
from repro.viz.dot import spec_diagram

PAPER_USAGE_REPORT = (
    "Error in specification: INVALID SUBSYSTEM USAGE\n"
    "Counter example: open_a, a.test, a.open\n"
    "Subsystems errors:\n"
    "  * Valve 'a': test, >open< (not final)"
)


def _check_module():
    return check_source(SECTION_2_MODULE)


def test_figure2_verdicts(benchmark):
    result = benchmark(_check_module)
    assert not result.ok
    assert len(result.errors) == 2

    usage = result.by_code("invalid-subsystem-usage")
    assert len(usage) == 1
    assert usage[0].format() == PAPER_USAGE_REPORT

    claims = result.by_code("unmet-requirement")
    assert len(claims) == 1
    assert claims[0].formula == "(!a.open) W b.open"
    counterexample = claims[0].counterexample
    assert counterexample is not None
    assert not evaluate(parse_claim("(!a.open) W b.open"), counterexample)

    print("\nSection 2.2 error reports (reproduced):")
    print(result.format())


def test_figure2_diagram(benchmark):
    def build():
        module, _ = parse_module(SECTION_2_MODULE)
        return spec_diagram(ClassSpec.of(module.get_class("BadSector")))

    dot = benchmark(build)
    # Figure 2's structure: open_a initial and final, open_b final,
    # one arc open_a -> open_b.
    assert '__start__ -> "open_a";' in dot
    assert '"open_a" [shape=doublecircle];' in dot
    assert '"open_b" [shape=doublecircle];' in dot
    assert '"open_a" -> "open_b";' in dot
    print("\nFigure 2 (reproduced as DOT):")
    print(dot)
