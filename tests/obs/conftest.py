"""Obs-suite fixtures: never leak an installed fault plan."""

import pytest

from repro.engine import faults


@pytest.fixture(autouse=True)
def clean_fault_plan():
    """Each test starts and ends with no installed plan."""
    faults.install(None)
    yield
    faults.install(None)


@pytest.fixture
def no_ambient_faults():
    """Shield a test from ``REPRO_FAULTS`` set by the CI fault job."""
    faults.install(faults.FaultPlan(()))
    yield
    faults.install(None)
