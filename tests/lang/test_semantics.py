"""The trace semantics ``s ⊢ l ∈ p``, rule by rule, plus the paper's
Examples 1 and 2."""


from repro.lang.builder import call, if_, loop, paper_example_program, ret, seq, skip
from repro.lang.semantics import (
    ONGOING,
    RETURNED,
    derivable,
    language,
    ongoing_traces,
    returned_traces,
    traces,
)


class TestAxioms:
    def test_rule_call(self):
        assert derivable(ONGOING, ("f",), call("f"))
        assert not derivable(RETURNED, ("f",), call("f"))
        assert not derivable(ONGOING, (), call("f"))
        assert not derivable(ONGOING, ("g",), call("f"))

    def test_rule_skip(self):
        assert derivable(ONGOING, (), skip())
        assert not derivable(RETURNED, (), skip())
        assert not derivable(ONGOING, ("a",), skip())

    def test_rule_return(self):
        assert derivable(RETURNED, (), ret())
        assert not derivable(ONGOING, (), ret())
        assert not derivable(RETURNED, ("a",), ret())


class TestSeq:
    def test_rule_seq_2_concatenates(self):
        program = seq(call("a"), call("b"))
        assert derivable(ONGOING, ("a", "b"), program)
        assert not derivable(ONGOING, ("a",), program)
        assert not derivable(ONGOING, ("b", "a"), program)

    def test_rule_seq_1_early_return_swallows_tail(self):
        program = seq(ret(), call("b"))
        assert derivable(RETURNED, (), program)
        assert not derivable(ONGOING, ("b",), program)
        assert not derivable(RETURNED, ("b",), program)

    def test_return_after_calls(self):
        program = seq(call("a"), seq(ret(), call("b")))
        assert derivable(RETURNED, ("a",), program)
        assert not derivable(RETURNED, ("a", "b"), program)

    def test_status_propagates_from_second(self):
        program = seq(call("a"), ret())
        assert derivable(RETURNED, ("a",), program)
        assert not derivable(ONGOING, ("a",), program)


class TestIf:
    def test_both_branches_contribute(self):
        program = if_(call("a"), call("b"))
        assert derivable(ONGOING, ("a",), program)
        assert derivable(ONGOING, ("b",), program)
        assert not derivable(ONGOING, ("a", "b"), program)

    def test_statuses_can_differ_across_branches(self):
        program = if_(ret(), call("b"))
        assert derivable(RETURNED, (), program)
        assert derivable(ONGOING, ("b",), program)


class TestLoop:
    def test_rule_loop_1_zero_iterations(self):
        assert derivable(ONGOING, (), loop(call("a")))

    def test_rule_loop_3_many_iterations(self):
        program = loop(call("a"))
        for count in range(1, 5):
            assert derivable(ONGOING, ("a",) * count, program)

    def test_rule_loop_2_return_inside(self):
        program = loop(seq(call("a"), ret()))
        assert derivable(RETURNED, ("a",), program)
        # Return fires during the second iteration too (LOOP-3 then LOOP-2)?
        # Body is a; return, so an ongoing iteration is impossible — a
        # one-iteration return is the only returned shape.
        assert not derivable(RETURNED, ("a", "a"), program)

    def test_loop_with_branching_body(self):
        # The paper's Example 1 and 2 program.
        program = paper_example_program()
        assert derivable(ONGOING, ("a", "c", "a", "c"), program)  # Example 1
        assert derivable(RETURNED, ("a", "c", "a", "b"), program)  # Example 2

    def test_example_traces_not_cross_status(self):
        program = paper_example_program()
        assert not derivable(RETURNED, ("a", "c", "a", "c"), program)
        assert not derivable(ONGOING, ("a", "c", "a", "b"), program)

    def test_loop_cannot_stop_mid_iteration(self):
        program = loop(seq(call("a"), call("b")))
        assert derivable(ONGOING, ("a", "b"), program)
        assert not derivable(ONGOING, ("a",), program)

    def test_nested_loops(self):
        program = loop(loop(call("a")))
        assert derivable(ONGOING, (), program)
        assert derivable(ONGOING, ("a", "a", "a"), program)


class TestTraceEnumeration:
    def test_matches_derivable(self):
        program = paper_example_program()
        enumerated = traces(program, 5)
        # Every enumerated judgment is derivable...
        for status, trace in enumerated:
            assert derivable(status, trace, program)
        # ...and spot-check the converse on all words up to length 4.
        from itertools import product

        for length in range(5):
            for word in product("abc", repeat=length):
                for status in (ONGOING, RETURNED):
                    assert derivable(status, word, program) == (
                        (status, word) in enumerated
                    )

    def test_length_bound_respected(self):
        program = loop(call("a"))
        for _status, trace in traces(program, 3):
            assert len(trace) <= 3

    def test_language_merges_statuses(self):
        program = if_(ret(), call("b"))
        assert language(program, 2) == {(), ("b",)}

    def test_ongoing_vs_returned_split(self):
        program = paper_example_program()
        assert ("a", "c") in ongoing_traces(program, 3)
        assert ("a", "b") in returned_traces(program, 3)
        assert ("a", "b") not in ongoing_traces(program, 3)

    def test_call_needs_budget(self):
        assert traces(call("a"), 0) == frozenset()
        assert traces(call("a"), 1) == {(ONGOING, ("a",))}
