"""The fault-tolerant parallel batch-verification engine.

Takes a parsed project (one :class:`ParsedModule`, possibly merged from
a directory), schedules its classes into topological waves over the
``@sys`` subsystem DAG (:mod:`repro.engine.scheduler`), and checks the
classes of each wave concurrently on a ``concurrent.futures`` pool.
Verification of a class is the pure function
:func:`repro.core.checker.check_parsed_class`, so workers share nothing
and the merged report is byte-identical to the serial
:class:`repro.core.checker.Checker` regardless of ``jobs``.

With an :class:`~repro.engine.cache.InferenceCache` attached, two cache
layers short-circuit work (keys in :mod:`repro.engine.fingerprint`):

* the **verdict layer** returns a class's diagnostics (and behavior DFA,
  when one was computed) without re-running anything;
* the **inference layer** returns each unchanged method's inferred
  per-exit regexes, so editing one method of a class only re-infers that
  method before the automaton is rebuilt.

A warm re-run of an unchanged project therefore performs no inference,
determinization or minimization at all — it parses, hashes and prints.

**Supervision** (docs/robustness.md).  Every class check runs under a
supervisor: a per-class wall-clock ``timeout``, a ``max_states``
resource budget threaded down to every state-exploration step, and
``retries`` with exponential backoff + deterministic jitter for
transient worker failures.  A killed process-pool worker
(``BrokenProcessPool``) respawns the pool and re-enqueues only the
unfinished classes (draining them one at a time so the poisonous class
is identified precisely).  A class that still fails after all attempts
is **quarantined**: it gets a structured ``ENGINE TIMEOUT`` /
``ENGINE BUDGET`` / ``ENGINE CRASH`` diagnostic in the report while
every healthy class's diagnostics stay byte-identical to a serial run.
Fault-injection hooks (:mod:`repro.engine.faults`) make each of these
paths testable on demand.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.checker import check_parsed_class, module_diagnostics
from repro.core.diagnostics import (
    ENGINE_BUDGET,
    ENGINE_CRASH,
    ENGINE_TIMEOUT,
    CheckResult,
    engine_failure,
)
from repro.core.limits import BudgetExceeded, Limits
from repro.core.model_io import dfa_to_dict
from repro.core.spec import ClassSpec
from repro.engine import faults
from repro.engine.cache import InferenceCache
from repro.engine.fingerprint import class_key, method_key
from repro.engine.metrics import ClassTiming, EngineMetrics
from repro.engine.scheduler import prune_waves, schedule
from repro.automata.kernel import BitDFA
from repro.engine.serialize import (
    bitdfa_to_flat,
    diagnostics_from_list,
    diagnostics_to_list,
)
from repro.frontend.model_ast import ParsedClass, ParsedModule, SubsetViolation
from repro.obs.tracer import NULL_TRACER, PHASES, Tracer
from repro.regex.ast import Regex, format_regex
from repro.regex.parser import RegexSyntaxError, parse_regex

EXECUTORS = ("thread", "process")


class EngineError(ValueError):
    """Raised on invalid engine configuration."""


class EngineAborted(RuntimeError):
    """Raised by ``fail_fast`` runs on the first quarantined class."""

    def __init__(self, class_name: str, kind: str, detail: str):
        super().__init__(
            f"aborted (fail-fast): class {class_name} hit ENGINE "
            f"{kind.upper()}: {detail}"
        )
        self.class_name = class_name
        self.kind = kind
        self.detail = detail


# ----------------------------------------------------------------------
# The worker task (module-level so a process pool can pickle it)
# ----------------------------------------------------------------------

def _exit_regexes_from_payload(
    parsed: ParsedClass, payloads: dict[str, dict[str, Any]]
) -> tuple[dict[str, dict[int, Regex]], int, int, dict[str, dict[str, Any]]]:
    """Reconstruct cached inferred behaviors; compute the rest.

    Returns (exit regexes per operation, hits, misses, new payloads to
    persist).  A malformed payload counts as a miss — the worker then
    recomputes and re-emits it.
    """
    from repro.core.behavior import operation_exit_regexes
    from repro.lang.inference import behavior

    exit_regexes: dict[str, dict[int, Regex]] = {}
    fresh: dict[str, dict[str, Any]] = {}
    hits = misses = 0
    for operation in parsed.operations:
        payload = payloads.get(operation.name)
        if payload is not None:
            try:
                exit_regexes[operation.name] = {
                    int(exit_id): parse_regex(text)
                    for exit_id, text in payload["exits"].items()
                }
                hits += 1
                continue
            except (KeyError, TypeError, ValueError, RegexSyntaxError):
                pass  # corrupt entry: fall through to recomputation
        misses += 1
        per_exit = operation_exit_regexes(operation)
        exit_regexes[operation.name] = per_exit
        fresh[operation.name] = {
            "ongoing": format_regex(behavior(operation.body).ongoing),
            "exits": {
                str(exit_id): format_regex(regex)
                for exit_id, regex in per_exit.items()
            },
        }
    return exit_regexes, hits, misses, fresh


def _check_class_task(
    parsed: ParsedClass,
    scope: dict[str, ParsedClass],
    method_payloads: dict[str, dict[str, Any]],
    limits: Limits | None = None,
    trace: bool = False,
) -> dict[str, Any]:
    """Check one class; everything in and out is picklable.

    ``scope`` carries the parsed classes whose specs the check may read
    (the class itself plus its direct subsystem dependencies).

    A :class:`BudgetExceeded` trip is a *verdict about the input*, not a
    worker malfunction, so it comes back as a structured ``failure``
    payload rather than an exception — the supervisor quarantines it
    without burning retries.

    With ``trace`` on, the worker collects per-phase spans into a local
    tracer and ships the aggregate back as a plain ``phases`` dict —
    the picklable form that survives a process pool, which the
    coordinator grafts under the class's span.  A quarantined class
    still returns whatever phases completed before the budget tripped.
    """
    started = time.perf_counter()
    faults.fire("worker", parsed.name)
    tracer = Tracer() if trace else NULL_TRACER
    try:
        with tracer.span("phase", "infer"):
            exit_regexes, hits, misses, fresh = _exit_regexes_from_payload(
                parsed, method_payloads
            )
        specs: Mapping[str, ClassSpec] = {
            name: ClassSpec.of(cls) for name, cls in scope.items()
        }
        result, dfa = check_parsed_class(
            parsed, specs, exit_regexes=exit_regexes, limits=limits,
            tracer=tracer,
        )
    except BudgetExceeded as error:
        kind = (
            ENGINE_TIMEOUT if error.resource == "wall-clock" else ENGINE_BUDGET
        )
        outcome: dict[str, Any] = {
            "class": parsed.name,
            "failure": {"kind": kind, "message": str(error)},
            "seconds": time.perf_counter() - started,
        }
        if trace:
            outcome["phases"] = tracer.phase_totals()
        return outcome
    # Classic DFAs keep the structured model_io payload; kernel BitDFAs
    # ship as flat int arrays (no state-name graphs cross the pool).
    dfa_payload = dfa_flat = None
    if isinstance(dfa, BitDFA):
        dfa_flat = bitdfa_to_flat(dfa)
    elif dfa is not None:
        dfa_payload = dfa_to_dict(dfa)
    outcome = {
        "class": parsed.name,
        "diagnostics": diagnostics_to_list(result.diagnostics),
        "dfa": dfa_payload,
        "dfa_flat": dfa_flat,
        "seconds": time.perf_counter() - started,
        "method_hits": hits,
        "method_misses": misses,
        "new_methods": fresh,
    }
    if trace:
        outcome["phases"] = tracer.phase_totals()
    return outcome


# ----------------------------------------------------------------------
# Verification plans (the planner half of the planner/executor split)
# ----------------------------------------------------------------------

#: Bumped when the serialized plan shape changes.
PLAN_VERSION = 1


@dataclass(frozen=True)
class VerificationPlan:
    """A serializable wave schedule: exactly what :meth:`BatchVerifier.execute`
    will run, and in which order.

    Produced by :meth:`BatchVerifier.plan` — topological waves over the
    subsystem DAG, already pruned to the ``only=`` restriction when one
    is set (incremental dirty sets, shard assignments).  Pruned waves
    keep their indices: an empty tuple in :attr:`waves` is a wave whose
    classes all run elsewhere, so wave numbering — and therefore every
    trace and timing — matches the unrestricted run.

    The plan is plain data (:meth:`to_dict` / :meth:`from_dict`), which
    is what lets a coordinator compute it once and ship shard-sized
    slices to worker processes (:mod:`repro.engine.shard`).
    """

    waves: tuple[tuple[str, ...], ...]
    only: frozenset[str] | None = None

    @property
    def scheduled(self) -> int:
        """How many classes this plan will execute."""
        return sum(len(wave) for wave in self.waves)

    @property
    def wave_count(self) -> int:
        """Non-empty waves (what the metrics report as ``waves``)."""
        return sum(1 for wave in self.waves if wave)

    def classes(self) -> frozenset[str]:
        return frozenset(name for wave in self.waves for name in wave)

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan_version": PLAN_VERSION,
            "waves": [list(wave) for wave in self.waves],
            "only": None if self.only is None else sorted(self.only),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "VerificationPlan":
        if not isinstance(payload, Mapping):
            raise EngineError("malformed plan: not a mapping")
        if payload.get("plan_version") != PLAN_VERSION:
            raise EngineError(
                f"plan version skew: got {payload.get('plan_version')!r}, "
                f"want {PLAN_VERSION}"
            )
        raw_waves = payload.get("waves")
        if not isinstance(raw_waves, list) or not all(
            isinstance(wave, list) and all(isinstance(n, str) for n in wave)
            for wave in raw_waves
        ):
            raise EngineError("malformed plan: waves must be lists of names")
        only = payload.get("only")
        if only is not None and not (
            isinstance(only, list) and all(isinstance(n, str) for n in only)
        ):
            raise EngineError("malformed plan: only must be null or a name list")
        return VerificationPlan(
            waves=tuple(tuple(wave) for wave in raw_waves),
            only=None if only is None else frozenset(only),
        )


# ----------------------------------------------------------------------
# Batch results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BatchResult:
    """Everything one engine run produced."""

    module: ParsedModule
    module_result: CheckResult
    class_results: tuple[tuple[str, CheckResult], ...]
    metrics: EngineMetrics

    def merged(self) -> CheckResult:
        """One report, ordered exactly like ``Checker.check()``:
        module-level diagnostics first, then classes in source order."""
        result = CheckResult(diagnostics=list(self.module_result.diagnostics))
        for _name, class_result in self.class_results:
            result.extend(class_result)
        return result

    @property
    def ok(self) -> bool:
        return self.merged().ok

    def result_for(self, class_name: str) -> CheckResult | None:
        for name, class_result in self.class_results:
            if name == class_name:
                return class_result
        return None

    def quarantined(self) -> tuple[str, ...]:
        """Names of classes the supervisor gave up on, source order."""
        return tuple(
            name
            for name, class_result in self.class_results
            if any(
                diagnostic.code.startswith("engine-")
                for diagnostic in class_result.diagnostics
            )
        )


# ----------------------------------------------------------------------
# Supervisor bookkeeping
# ----------------------------------------------------------------------

@dataclass
class _Attempt:
    """One class working its way through the supervisor."""

    name: str
    key: str | None
    attempt: int = 0  # attempts already spent
    dispatched: float = 0.0


@dataclass
class _WaveCounters:
    """Mutable supervisor counters, accumulated across waves."""

    retries: int = 0
    quarantines: int = 0
    budget_trips: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    quarantined_names: list[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class BatchVerifier:
    """Verify a parsed project: DAG-scheduled, pooled, cached, supervised."""

    def __init__(
        self,
        module: ParsedModule,
        violations: list[SubsetViolation] | None = None,
        *,
        jobs: int = 1,
        executor: str = "thread",
        cache: InferenceCache | None = None,
        timeout: float | None = None,
        max_states: int | None = None,
        retries: int = 2,
        backoff: float = 0.05,
        fail_fast: bool = False,
        retry_seed: int = 0,
        tracer: Tracer | None = None,
        only: frozenset[str] | None = None,
    ):
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        if executor not in EXECUTORS:
            raise EngineError(
                f"executor must be one of {', '.join(EXECUTORS)}; got {executor!r}"
            )
        if timeout is not None and timeout <= 0:
            raise EngineError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise EngineError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise EngineError(f"backoff must be >= 0, got {backoff}")
        self.module = module
        self.violations = list(violations or [])
        self.jobs = jobs
        self.executor = executor
        self.cache = cache
        self.timeout = timeout
        self.max_states = max_states
        self.retries = retries
        self.backoff = backoff
        self.fail_fast = fail_fast
        self.retry_seed = retry_seed
        #: Restrict the run to these classes (incremental re-verification,
        #: docs/incremental.md): waves are pruned but keep their indices,
        #: and classes outside the set are absent from the result —
        #: the caller splices their verdicts from the project state.
        if only is not None:
            known = set(module.class_names())
            unknown = sorted(set(only) - known)
            if unknown:
                raise EngineError(
                    f"only= names classes not in the module: {', '.join(unknown)}"
                )
            only = frozenset(only)
        self.only = only
        #: The run's tracer (docs/observability.md); the no-op singleton
        #: by default, so untraced runs stay on the fast path.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.cache is not None and self.tracer.enabled:
            self.cache.tracer = self.tracer

    # ------------------------------------------------------------------

    def _make_pool(self, width: int) -> Executor:
        workers = min(self.jobs, width)
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def _scope_for(self, parsed: ParsedClass) -> dict[str, ParsedClass]:
        """The class itself plus its direct subsystem dependencies —
        the only specs :func:`check_parsed_class` can consult."""
        scope = {parsed.name: parsed}
        for declaration in parsed.subsystems:
            dependency = self.module.get_class(declaration.class_name)
            if dependency is not None:
                scope[dependency.name] = dependency
        return scope

    def _method_payloads(self, parsed: ParsedClass) -> dict[str, dict[str, Any]]:
        if self.cache is None:
            return {}
        payloads: dict[str, dict[str, Any]] = {}
        for operation in parsed.operations:
            payload = self.cache.get("method", method_key(operation))
            if payload is not None:
                payloads[operation.name] = payload
        return payloads

    def _limits(self) -> Limits:
        return Limits(max_states=self.max_states, timeout=self.timeout)

    def _backoff_delay(self, name: str, attempt: int) -> float:
        """Exponential backoff with deterministic per-(class, attempt)
        jitter, so reruns of one schedule sleep identically."""
        if self.backoff == 0:
            return 0.0
        jitter = random.Random(
            f"{self.retry_seed}:{name}:{attempt}"
        ).uniform(0.0, self.backoff)
        return self.backoff * (2 ** (attempt - 1)) + jitter

    # -- failure plumbing ----------------------------------------------

    @staticmethod
    def _failure_outcome(
        attempt: _Attempt, kind: str, message: str, seconds: float
    ) -> dict[str, Any]:
        return {
            "class": attempt.name,
            "failure": {
                "kind": kind,
                "message": message,
                "attempts": attempt.attempt,
            },
            "seconds": seconds,
        }

    # -- inline execution (no pool): jobs/wave width of one, no timeout

    def _execute_inline(
        self,
        pending: list[_Attempt],
        tasks: Mapping[str, tuple],
        counters: _WaveCounters,
    ) -> dict[str, dict[str, Any]]:
        limits = self._limits()
        trace = self.tracer.enabled
        raw: dict[str, dict[str, Any]] = {}
        for attempt in pending:
            while True:
                attempt.attempt += 1
                started = time.perf_counter()
                try:
                    outcome = _check_class_task(
                        *tasks[attempt.name], limits, trace
                    )
                except Exception as error:  # noqa: BLE001 - quarantine path
                    if attempt.attempt > self.retries:
                        raw[attempt.name] = self._failure_outcome(
                            attempt,
                            ENGINE_CRASH,
                            f"{type(error).__name__}: {error}",
                            time.perf_counter() - started,
                        )
                        break
                    counters.retries += 1
                    self.tracer.event(
                        "retry", cls=attempt.name, attempt=attempt.attempt
                    )
                    time.sleep(self._backoff_delay(attempt.name, attempt.attempt))
                    continue
                if "failure" in outcome:
                    outcome["failure"]["attempts"] = attempt.attempt
                    if outcome["failure"]["kind"] == ENGINE_TIMEOUT:
                        counters.timeouts += 1
                raw[attempt.name] = outcome
                break
        return raw

    # -- pooled execution with the full supervisor ---------------------

    def _execute_pooled(
        self,
        pending: list[_Attempt],
        tasks: Mapping[str, tuple],
        counters: _WaveCounters,
    ) -> dict[str, dict[str, Any]]:
        limits = self._limits()
        trace = self.tracer.enabled
        workers = min(self.jobs, len(pending))
        pool = self._make_pool(len(pending))
        raw: dict[str, dict[str, Any]] = {}
        ready: deque[_Attempt] = deque(pending)
        waiting: list[tuple[float, _Attempt]] = []
        inflight: dict[Future, tuple[_Attempt, float | None]] = {}
        # After a pool break, drain one class at a time so the next
        # break is attributable to exactly one class.
        serial_mode = False

        def requeue(attempt: _Attempt, kind: str, message: str) -> None:
            """Charge one attempt; retry with backoff or quarantine."""
            if attempt.attempt > self.retries:
                raw[attempt.name] = self._failure_outcome(
                    attempt, kind, message,
                    time.monotonic() - attempt.dispatched,
                )
                return
            counters.retries += 1
            self.tracer.event("retry", cls=attempt.name, attempt=attempt.attempt)
            waiting.append(
                (
                    time.monotonic()
                    + self._backoff_delay(attempt.name, attempt.attempt),
                    attempt,
                )
            )

        try:
            while ready or waiting or inflight:
                now = time.monotonic()
                if waiting:
                    still_waiting = []
                    for eligible, attempt in waiting:
                        if eligible <= now:
                            ready.append(attempt)
                        else:
                            still_waiting.append((eligible, attempt))
                    waiting[:] = still_waiting
                capacity = 1 if serial_mode else workers
                while ready and len(inflight) < capacity:
                    attempt = ready.popleft()
                    attempt.attempt += 1
                    attempt.dispatched = time.monotonic()
                    try:
                        future = pool.submit(
                            _check_class_task, *tasks[attempt.name], limits, trace
                        )
                    except (BrokenExecutor, RuntimeError) as error:
                        # The pool died between waves of submissions.
                        pool.shutdown(wait=False)
                        pool = self._make_pool(len(pending))
                        counters.pool_restarts += 1
                        self.tracer.event("pool-restart", at="submit")
                        serial_mode = True
                        requeue(
                            attempt,
                            ENGINE_CRASH,
                            f"worker pool broken at submit: {error}",
                        )
                        continue
                    deadline = (
                        None
                        if self.timeout is None
                        else attempt.dispatched + self.timeout
                    )
                    inflight[future] = (attempt, deadline)

                if not inflight:
                    if waiting:
                        pause = min(e for e, _ in waiting) - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                    continue

                bounds = [d for _, d in inflight.values() if d is not None]
                bounds.extend(e for e, _ in waiting)
                wait_timeout = None
                if bounds:
                    wait_timeout = max(0.0, min(bounds) - time.monotonic())
                done, _ = wait(
                    set(inflight), timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )

                broken: list[_Attempt] = []
                for future in done:
                    attempt, _deadline = inflight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenExecutor:
                        broken.append(attempt)
                    except Exception as error:  # noqa: BLE001 - quarantine path
                        requeue(
                            attempt,
                            ENGINE_CRASH,
                            f"{type(error).__name__}: {error}",
                        )
                    else:
                        if "failure" in outcome:
                            outcome["failure"]["attempts"] = attempt.attempt
                            if outcome["failure"]["kind"] == ENGINE_TIMEOUT:
                                counters.timeouts += 1
                        raw[attempt.name] = outcome

                if broken:
                    # Every other in-flight future died with the pool.
                    for future, (attempt, _deadline) in inflight.items():
                        future.cancel()
                        broken.append(attempt)
                    inflight.clear()
                    pool.shutdown(wait=False)
                    pool = self._make_pool(len(pending))
                    counters.pool_restarts += 1
                    self.tracer.event("pool-restart", at="result")
                    if len(broken) == 1:
                        # Sole suspect: the crash is attributable.
                        requeue(
                            broken[0],
                            ENGINE_CRASH,
                            "worker process died (BrokenProcessPool)",
                        )
                    else:
                        # Ambiguous: re-enqueue everyone uncharged and
                        # switch to serial draining for attribution.
                        for attempt in broken:
                            attempt.attempt -= 1
                            ready.append(attempt)
                    serial_mode = True
                    continue

                now = time.monotonic()
                for future in list(inflight):
                    attempt, deadline = inflight[future]
                    if deadline is not None and now >= deadline:
                        del inflight[future]
                        future.cancel()
                        counters.timeouts += 1
                        self.tracer.event("timeout", cls=attempt.name)
                        requeue(
                            attempt,
                            ENGINE_TIMEOUT,
                            f"exceeded the {self.timeout}s per-class "
                            "wall-clock deadline",
                        )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return raw

    # ------------------------------------------------------------------

    def plan(self) -> VerificationPlan:
        """The planner half: the wave schedule this verifier would run.

        Pure and cheap — no pools, no cache traffic — so coordinators
        can plan centrally and ship slices to workers
        (:mod:`repro.engine.shard`).
        """
        waves = schedule(self.module)
        if self.only is not None:
            waves = prune_waves(waves, self.only)
        return VerificationPlan(
            waves=tuple(tuple(wave) for wave in waves), only=self.only
        )

    def run(self) -> BatchResult:
        return self.execute(self.plan())

    def execute(self, plan: VerificationPlan) -> BatchResult:
        """The executor half: run a previously computed plan.

        The plan must name only classes this module has; normally it
        comes from :meth:`plan` (possibly round-tripped through
        serialization by a shard coordinator).
        """
        started = time.perf_counter()
        classes_by_name = {parsed.name: parsed for parsed in self.module.classes}
        unknown = sorted(plan.classes() - set(classes_by_name))
        if unknown:
            raise EngineError(
                f"plan names classes not in the module: {', '.join(unknown)}"
            )
        waves = plan.waves
        scheduled = plan.scheduled

        outcomes: dict[str, CheckResult] = {}
        timings: list[ClassTiming] = []
        counters = _WaveCounters()
        class_hits = class_misses = method_hits = method_misses = 0
        cache_writes = 0

        # The span deliberately omits jobs/executor: the exported trace
        # is byte-stable across job counts (modulo durations); the run
        # configuration lives in the metrics payload instead.
        with self.tracer.span(
            "run",
            "run",
            classes=scheduled,
            waves=sum(1 for wave in waves if wave),
        ):
            for wave_index, wave in enumerate(waves):
                if not wave:  # fully pruned by an incremental plan
                    continue
                with self.tracer.span(
                    "wave", f"wave-{wave_index}", index=wave_index,
                    classes=len(wave),
                ) as wave_span:
                    hits, misses, mh, mm, writes = self._run_wave(
                        wave, wave_index, classes_by_name,
                        outcomes, timings, counters, wave_span,
                    )
                    class_hits += hits
                    class_misses += misses
                    method_hits += mh
                    method_misses += mm
                    cache_writes += writes

        ordered = tuple(
            (parsed.name, outcomes[parsed.name])
            for parsed in self.module.classes
            if parsed.name in outcomes
        )
        metrics = EngineMetrics(
            classes=scheduled,
            waves=sum(1 for wave in waves if wave),
            jobs=self.jobs,
            executor=self.executor,
            wall_seconds=time.perf_counter() - started,
            class_hits=class_hits,
            class_misses=class_misses,
            method_hits=method_hits,
            method_misses=method_misses,
            cache_writes=cache_writes,
            timings=tuple(sorted(timings, key=lambda t: (t.wave, t.class_name))),
            corrupt_entries=(
                self.cache.stats.corrupt_entries if self.cache else 0
            ),
            checksum_failures=(
                self.cache.stats.checksum_failures if self.cache else 0
            ),
            write_failures=(
                self.cache.stats.write_failure_count if self.cache else 0
            ),
            lock_waits=self.cache.stats.lock_waits if self.cache else 0,
            lock_wait_seconds=(
                self.cache.stats.lock_wait_seconds if self.cache else 0.0
            ),
            lock_timeouts=self.cache.stats.lock_timeouts if self.cache else 0,
            orphans_removed=(
                self.cache.stats.orphans_removed if self.cache else 0
            ),
            remote_hits=self.cache.stats.remote_hits if self.cache else 0,
            remote_misses=self.cache.stats.remote_misses if self.cache else 0,
            remote_puts=self.cache.stats.remote_puts if self.cache else 0,
            remote_errors=self.cache.stats.remote_errors if self.cache else 0,
            remote_degraded=(
                self.cache.stats.remote_degraded if self.cache else 0
            ),
            retries=counters.retries,
            quarantines=counters.quarantines,
            budget_trips=counters.budget_trips,
            timeouts=counters.timeouts,
            pool_restarts=counters.pool_restarts,
        )
        return BatchResult(
            module=self.module,
            module_result=module_diagnostics(self.module, self.violations),
            class_results=ordered,
            metrics=metrics,
        )

    def _run_wave(
        self,
        wave: tuple[str, ...],
        wave_index: int,
        classes_by_name: dict[str, ParsedClass],
        outcomes: dict[str, CheckResult],
        timings: list[ClassTiming],
        counters: _WaveCounters,
        wave_span,
    ) -> tuple[int, int, int, int, int]:
        """Verify one wave; returns the cache-counter deltas.

        ``wave_span`` receives one recorded ``class`` span per class —
        in the schedule's (sorted) order, so the exported tree is
        deterministic regardless of completion order — each carrying
        exactly the :data:`~repro.obs.PHASES` children.  Phases a class
        did not execute are present with a non-``ok`` status, so cached
        and quarantined classes produce the same tree *structure* as
        checked ones.
        """
        class_hits = class_misses = method_hits = method_misses = 0
        cache_writes = 0
        #: class name -> (status, seconds, worker phase totals)
        trace_info: dict[str, tuple[str, float, dict[str, Any]]] = {}

        pending: list[_Attempt] = []
        for name in wave:
            parsed = classes_by_name[name]
            key: str | None = None
            if self.cache is not None:
                lookup_started = time.perf_counter()
                key = class_key(parsed, classes_by_name)
                payload = self.cache.get("class", key)
                if payload is not None:
                    try:
                        diagnostics = diagnostics_from_list(
                            payload["diagnostics"]
                        )
                    except (KeyError, TypeError, ValueError):
                        diagnostics = None
                    if diagnostics is not None:
                        lookup_seconds = time.perf_counter() - lookup_started
                        outcomes[name] = CheckResult(diagnostics=diagnostics)
                        class_hits += 1
                        trace_info[name] = ("cached", lookup_seconds, {})
                        timings.append(
                            ClassTiming(
                                class_name=name,
                                seconds=lookup_seconds,
                                from_cache=True,
                                wave=wave_index,
                            )
                        )
                        continue
            pending.append(_Attempt(name=name, key=key))

        raw: dict[str, dict[str, Any]] = {}
        if pending:
            class_misses += len(pending)

            tasks = {
                attempt.name: (
                    classes_by_name[attempt.name],
                    self._scope_for(classes_by_name[attempt.name]),
                    self._method_payloads(classes_by_name[attempt.name]),
                )
                for attempt in pending
            }
            if self.timeout is None and (self.jobs == 1 or len(pending) == 1):
                raw = self._execute_inline(pending, tasks, counters)
            else:
                raw = self._execute_pooled(pending, tasks, counters)

            for attempt in pending:
                name, key = attempt.name, attempt.key
                outcome = raw[name]
                failure = outcome.get("failure")
                if failure is not None:
                    counters.quarantines += 1
                    counters.quarantined_names.append(name)
                    if failure["kind"] == ENGINE_BUDGET:
                        counters.budget_trips += 1
                    self.tracer.event(
                        "quarantine", cls=name, kind=failure["kind"]
                    )
                    outcomes[name] = CheckResult(
                        diagnostics=[
                            engine_failure(
                                failure["kind"],
                                name,
                                failure["message"],
                                attempts=failure.get("attempts", 1),
                            )
                        ]
                    )
                    trace_info[name] = (
                        "quarantined",
                        outcome["seconds"],
                        outcome.get("phases", {}),
                    )
                    timings.append(
                        ClassTiming(
                            class_name=name,
                            seconds=outcome["seconds"],
                            from_cache=False,
                            wave=wave_index,
                            quarantined=True,
                        )
                    )
                    continue
                outcomes[name] = CheckResult(
                    diagnostics=diagnostics_from_list(outcome["diagnostics"])
                )
                method_hits += outcome["method_hits"]
                method_misses += outcome["method_misses"]
                trace_info[name] = (
                    "ok", outcome["seconds"], outcome.get("phases", {})
                )
                timings.append(
                    ClassTiming(
                        class_name=name,
                        seconds=outcome["seconds"],
                        from_cache=False,
                        wave=wave_index,
                    )
                )
                if self.cache is not None and key is not None:
                    for operation_name, payload in outcome["new_methods"].items():
                        operation = classes_by_name[name].operation(operation_name)
                        if operation is not None:
                            self.cache.put("method", method_key(operation), payload)
                            cache_writes += 1
                    self.cache.put(
                        "class",
                        key,
                        {
                            "class": name,
                            "diagnostics": outcome["diagnostics"],
                            "dfa": outcome["dfa"],
                            "dfa_flat": outcome.get("dfa_flat"),
                            "seconds": outcome["seconds"],
                        },
                    )
                    cache_writes += 1

        if self.tracer.enabled:
            self._graft_class_spans(wave, wave_index, wave_span, trace_info)

        if self.fail_fast and counters.quarantined_names:
            name = counters.quarantined_names[0]
            failure = raw[name]["failure"]
            raise EngineAborted(name, failure["kind"], failure["message"])

        return class_hits, class_misses, method_hits, method_misses, cache_writes

    @staticmethod
    def _graft_class_spans(
        wave: tuple[str, ...],
        wave_index: int,
        wave_span,
        trace_info: dict[str, tuple[str, float, dict[str, Any]]],
    ) -> None:
        """Record one ``class`` span per class, in schedule order.

        The schedule sorts each wave, so grafting in ``wave`` order makes
        the exported tree independent of completion order.  Worker-side
        phase timings arrive as the picklable ``phases`` dict; phases
        with no measurement are still emitted, carrying the class's
        default status (``cached`` / ``quarantined`` / ``skipped``), so
        every class produces the same tree shape.
        """
        for name in wave:
            status, seconds, phases = trace_info[name]
            class_span = wave_span.child(
                "class", name, seconds=seconds, status=status, wave=wave_index
            )
            default = status if status in ("cached", "quarantined") else "skipped"
            for phase in PHASES:
                measured = phases.get(phase)
                if measured is None:
                    class_span.child("phase", phase, status=default)
                else:
                    class_span.child(
                        "phase",
                        phase,
                        seconds=measured["seconds"],
                        status="ok",
                        **measured.get("attrs", {}),
                    )


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------

def verify_module(
    module: ParsedModule,
    violations: list[SubsetViolation] | None = None,
    *,
    jobs: int = 1,
    executor: str = "thread",
    cache: InferenceCache | None = None,
    timeout: float | None = None,
    max_states: int | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    fail_fast: bool = False,
    tracer: Tracer | None = None,
) -> BatchResult:
    """Run the batch engine on an already-parsed module/project."""
    return BatchVerifier(
        module,
        violations,
        jobs=jobs,
        executor=executor,
        cache=cache,
        timeout=timeout,
        max_states=max_states,
        retries=retries,
        backoff=backoff,
        fail_fast=fail_fast,
        tracer=tracer,
    ).run()


def cached_behavior_dfa(
    cache: InferenceCache,
    parsed: ParsedClass,
    classes_in_scope: Mapping[str, ParsedClass],
):
    """The behavior DFA stored with a cached verdict, if any.

    Only composite classes that passed the structural gate carry one
    (base-class checks never determinize).  Returns ``None`` on a cache
    miss or when no DFA was recorded.  Verdicts computed under either
    kernel decode — classic payloads via :mod:`repro.core.model_io`,
    bitset payloads via the flat-array codec — and both come back as a
    classic :class:`~repro.automata.dfa.DFA` for downstream consumers.
    """
    from repro.automata.kernel import bitdfa_to_dfa
    from repro.core.model_io import ModelFormatError, dfa_from_dict
    from repro.engine.serialize import FlatFormatError, bitdfa_from_flat

    payload = cache.get("class", class_key(parsed, classes_in_scope))
    if payload is None:
        return None
    if payload.get("dfa") is not None:
        try:
            return dfa_from_dict(payload["dfa"])
        except ModelFormatError:
            return None
    if payload.get("dfa_flat") is not None:
        try:
            return bitdfa_to_dfa(bitdfa_from_flat(payload["dfa_flat"]))
        except FlatFormatError:
            return None
    return None


def verify_path(
    path: str | Path,
    *,
    jobs: int = 1,
    executor: str = "thread",
    cache: InferenceCache | None = None,
    timeout: float | None = None,
    max_states: int | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    fail_fast: bool = False,
    tracer: Tracer | None = None,
) -> BatchResult:
    """Parse a file or project directory and run the batch engine."""
    from repro.frontend.parse import parse_file
    from repro.frontend.project import parse_project

    if Path(path).is_dir():
        module, violations = parse_project(path)
    else:
        module, violations = parse_file(path)
    return verify_module(
        module,
        violations,
        jobs=jobs,
        executor=executor,
        cache=cache,
        timeout=timeout,
        max_states=max_states,
        retries=retries,
        backoff=backoff,
        fail_fast=fail_fast,
        tracer=tracer,
    )
