"""Method dependency extraction (§3.1 of the paper).

The method-dependency graph is a directed graph where

* there is one **entry node** per method and one **exit node** per
  ``return`` statement of each method;
* each entry node links to each of its method's exit nodes;
* each exit node links to the entry node of every method named in its
  ``return`` list.

Figure 3 of the paper is exactly this graph for Listing 3.1's ``Sector``
class; ``benchmarks/bench_figure3_sector.py`` regenerates it and asserts
the node and arc counts spelled out in §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.model_ast import ParsedClass


@dataclass(frozen=True)
class EntryNode:
    """The single entry point of a method."""

    method: str

    def label(self) -> str:
        return self.method


@dataclass(frozen=True)
class ExitNode:
    """One exit point (one ``return``) of a method."""

    method: str
    exit_id: int
    next_methods: tuple[str, ...]

    def label(self) -> str:
        if not self.next_methods:
            return f"{self.method}/return []"
        listed = ", ".join(self.next_methods)
        return f"{self.method}/return [{listed}]"


Node = EntryNode | ExitNode


@dataclass(frozen=True)
class DependencyGraph:
    """The §3.1 graph: entry/exit nodes plus ordering arcs."""

    class_name: str
    entries: tuple[EntryNode, ...]
    exits: tuple[ExitNode, ...]
    arcs: tuple[tuple[Node, Node], ...]

    @property
    def node_count(self) -> int:
        return len(self.entries) + len(self.exits)

    @property
    def arc_count(self) -> int:
        return len(self.arcs)

    def entry(self, method: str) -> EntryNode | None:
        for node in self.entries:
            if node.method == method:
                return node
        return None

    def exits_of(self, method: str) -> tuple[ExitNode, ...]:
        return tuple(node for node in self.exits if node.method == method)

    def successors(self, node: Node) -> tuple[Node, ...]:
        return tuple(target for source, target in self.arcs if source == node)

    def dangling_references(self) -> tuple[tuple[ExitNode, str], ...]:
        """Return-list entries that name no declared method.

        These are the subject of the *method invocation analysis* (§3,
        step 3); the checker turns each into a diagnostic.
        """
        declared = {entry.method for entry in self.entries}
        dangling: list[tuple[ExitNode, str]] = []
        for node in self.exits:
            for name in node.next_methods:
                if name not in declared:
                    dangling.append((node, name))
        return tuple(dangling)


def extract_dependency_graph(parsed: ParsedClass) -> DependencyGraph:
    """Build the dependency graph of a parsed class (§3.1 verbatim)."""
    entries = tuple(EntryNode(op.name) for op in parsed.operations)
    entry_of = {node.method: node for node in entries}
    exits: list[ExitNode] = []
    arcs: list[tuple[Node, Node]] = []
    for operation in parsed.operations:
        for point in operation.returns:
            exit_node = ExitNode(
                method=operation.name,
                exit_id=point.exit_id,
                next_methods=point.next_methods,
            )
            exits.append(exit_node)
            # Entry of the method links to each of its exits.
            arcs.append((entry_of[operation.name], exit_node))
    for exit_node in exits:
        # Each exit links to the entry of every method it names.
        for name in exit_node.next_methods:
            target = entry_of.get(name)
            if target is not None:
                arcs.append((exit_node, target))
    return DependencyGraph(
        class_name=parsed.name,
        entries=entries,
        exits=tuple(exits),
        arcs=tuple(arcs),
    )
