"""The seeded differential mining farm."""

import pytest

from repro.mine.corpus import TraceCorpus
from repro.mine.farm import FarmConfig, run_farm


class TestFarm:
    def test_small_farm_is_clean(self):
        result = run_farm(FarmConfig(projects=6, seed=3, random_runs=8))
        assert result.ok, result.format()
        assert len(result.records) == 6
        assert result.min_coverage == 1.0
        # Soundness + exact recovery: every project mined the same
        # minimized machine the static extractor produced.
        for record in result.records:
            assert record.mined_states == record.static_states
            assert record.corpus_events > 0

    def test_farm_is_deterministic(self):
        config = FarmConfig(projects=4, seed=9, random_runs=8)

        def scrub(payload):
            # Wall times are the one legitimately non-deterministic field.
            for row in payload["projects"]:
                row.pop("seconds")
            return payload

        first = scrub(run_farm(config).to_payload())
        second = scrub(run_farm(config).to_payload())
        assert first == second

    def test_unreachable_coverage_floor_fails_with_repro_corpus(self):
        result = run_farm(
            FarmConfig(projects=2, seed=1, random_runs=4, coverage_floor=1.01)
        )
        assert not result.ok
        assert result.failures
        assert all(f.kind == "coverage" for f in result.failures)
        assert not result.unsound()
        # Every failure carries a replayable corpus.
        for failure in result.failures:
            corpus = TraceCorpus.from_payload(failure.corpus)
            assert len(corpus) > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FarmConfig(projects=0)

    def test_payload_shape(self):
        result = run_farm(FarmConfig(projects=2, seed=5, random_runs=4))
        payload = result.to_payload()
        assert payload["ok"] is True
        assert payload["config"]["projects"] == 2
        assert len(payload["projects"]) == 2
        for row in payload["projects"]:
            assert set(row) == {
                "project",
                "shape",
                "classes",
                "corpus_events",
                "mined_states",
                "static_states",
                "min_coverage",
                "seconds",
            }
