"""The ``repro cache serve`` daemon: sealed envelopes over HTTP.

A deliberately small stdlib server (:class:`ThreadingHTTPServer`) whose
storage is a server-side :class:`LocalDirBackend` — the daemon's disk
tree is byte-compatible with a worker's ``.repro-cache/``, so a cache
directory can be promoted to a shared remote by pointing the daemon at
it.

Routes:

* ``GET /healthz`` — liveness, ``{"ok": true}``;
* ``GET /stats`` — request counters and entry layout info;
* ``GET/PUT/DELETE /v1/cache/<namespace>/<key>`` — envelope transport.

Admission rules keep the store trustworthy and the tree traversal-proof:
namespaces and keys must match strict character classes (no dots, no
slashes beyond the route's own), bodies are size-capped, and a PUT body
must be a sealed envelope whose checksum verifies (``classify_entry``
says ``ok``) — the daemon never persists junk, version-skewed, or
tampered bytes, so every remote hit a client promotes is already
well-formed.

``repro cache serve --port 0`` binds an ephemeral port and prints the
resolved endpoint URL as its first stdout line (also written atomically
to ``<root>/cache-endpoint.json``) so scripts and CI can discover it.
"""

from __future__ import annotations

import json
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.engine import store
from repro.engine.backends.local import LocalDirBackend

#: Sealed envelopes are a few KiB of JSON; anything near this cap is
#: not a cache entry.
MAX_BODY_BYTES = 32 * 1024 * 1024

_ENTRY_ROUTE = re.compile(r"^/v1/cache/([a-z][a-z0-9_-]{0,31})/([0-9a-f]{8,128})$")


class CacheServer(ThreadingHTTPServer):
    """HTTP front end over a server-side :class:`LocalDirBackend`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], root: Path | str) -> None:
        super().__init__(address, _CacheRequestHandler)
        self.backend = LocalDirBackend(Path(root))
        self.counters = {"hits": 0, "misses": 0, "puts": 0, "deletes": 0, "rejected": 0}
        self.counter_guard = threading.Lock()

    @property
    def endpoint(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def count(self, name: str) -> None:
        with self.counter_guard:
            self.counters[name] += 1

    def stats_payload(self) -> dict:
        with self.counter_guard:
            counters = dict(self.counters)
        return {"ok": True, "root": str(self.backend.root), "counters": counters}


class _CacheRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-cache/1"
    server: CacheServer

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_bytes(code, body, "application/json")

    def _send_bytes(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _entry(self) -> tuple[str, str] | None:
        match = _ENTRY_ROUTE.match(self.path)
        if match is None:
            self._send_json(404, {"error": "unknown route"})
            return None
        return match.group(1), match.group(2)

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
            return
        if self.path == "/stats":
            self._send_json(200, self.server.stats_payload())
            return
        entry = self._entry()
        if entry is None:
            return
        namespace, key = entry
        try:
            text = self.server.backend.get_text(namespace, key)
        except OSError:
            text = None
        if text is None:
            self.server.count("misses")
            self._send_json(404, {"error": "miss"})
            return
        self.server.count("hits")
        self._send_bytes(200, text.encode("utf-8"), "application/json")

    def do_PUT(self) -> None:  # noqa: N802
        entry = self._entry()
        if entry is None:
            return
        namespace, key = entry
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self.server.count("rejected")
            self._send_json(413, {"error": "bad content length"})
            return
        body = self.rfile.read(length)
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            self.server.count("rejected")
            self._send_json(400, {"error": "body is not utf-8"})
            return
        from repro.engine.cache import classify_entry

        verdict, _ = classify_entry(text)
        if verdict != "ok":
            # The daemon is the shared tier; persisting an unverifiable
            # envelope would hand every client a guaranteed heal cycle.
            self.server.count("rejected")
            self._send_json(400, {"error": f"envelope rejected: {verdict}"})
            return
        try:
            self.server.backend.put_text(namespace, key, text)
        except OSError as err:
            self._send_json(507, {"error": f"store failed: {err}"})
            return
        self.server.count("puts")
        self._send_json(200, {"ok": True})

    def do_DELETE(self) -> None:  # noqa: N802
        entry = self._entry()
        if entry is None:
            return
        namespace, key = entry
        if self.server.backend.delete(namespace, key):
            self.server.count("deletes")
            self._send_json(200, {"ok": True})
        else:
            self._send_json(404, {"error": "miss"})


def run_cache_server(
    root: Path | str, *, host: str = "127.0.0.1", port: int = 0
) -> CacheServer:
    """Start a cache daemon on a background thread (tests, embedding).

    Returns the running server; ``server.endpoint`` is the base URL and
    ``server.shutdown()`` stops it.
    """
    server = CacheServer((host, port), root)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-cache-server", daemon=True
    )
    thread.start()
    return server


def serve_cache(root: Path | str, *, host: str = "127.0.0.1", port: int = 8123) -> int:
    """Run the daemon in the foreground (``repro cache serve``)."""
    server = CacheServer((host, port), root)
    # First stdout line is the machine-readable endpoint (scripts parse
    # it when --port 0 picked an ephemeral port).
    print(server.endpoint, flush=True)
    endpoint_file = Path(root) / "cache-endpoint.json"
    try:
        store.atomic_write_text(
            endpoint_file, json.dumps({"endpoint": server.endpoint}) + "\n"
        )
    except OSError:
        pass

    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.shutdown()
        server.server_close()
    return 0
