"""Bitset subset construction: BitNFA → BitDFA.

Semantically identical to :mod:`repro.automata.determinize` — same BFS
discovery order (sorted symbols, FIFO subsets), same partiality (the
empty subset is not a state), same resource budget — but a subset is a
single int, so the visited check is an int-keyed dict lookup instead of
hashing a frozenset of structured state names.
"""

from __future__ import annotations

from collections import deque

from repro.automata.kernel.bitset import BitDFA, BitNFA

#: Deadline-check stride, matching the classic implementation.
_DEADLINE_STRIDE = 256


def determinize_bitset(
    bitnfa: BitNFA,
    *,
    max_states: int | None = None,
    deadline: float | None = None,
    tracer=None,
) -> BitDFA:
    """Determinize ``bitnfa`` by the subset construction.

    Budget semantics mirror :func:`repro.automata.determinize.determinize`
    exactly: ``max_states=None`` applies the default cap, ``<= 0``
    disables it, and either trip raises
    :class:`repro.core.limits.BudgetExceeded`.  The produced DFA's state
    ids are BFS discovery order, which coincides with the classic
    DFA's :meth:`~repro.automata.dfa.DFA.renumbered` numbering.
    """
    # Lazy import: repro.core.limits sits above the automata layer in
    # the import graph, same pattern as the classic determinizer.
    from repro.core.limits import (
        DEFAULT_MAX_STATES,
        charge_states,
        check_deadline,
        effective_cap,
    )

    cap = effective_cap(max_states, DEFAULT_MAX_STATES)
    k = len(bitnfa.alphabet)
    closed_succ = bitnfa.closed_succ
    accepting_mask = bitnfa.accepting
    initial = bitnfa.initial

    ids: dict[int, int] = {initial: 0}
    delta: list[int] = []
    accepting = 0
    queue: deque[int] = deque([initial])
    expansions = 0
    count = 1
    while queue:
        subset = queue.popleft()
        expansions += 1
        if expansions % _DEADLINE_STRIDE == 0:
            check_deadline(deadline, "subset construction")
        if subset & accepting_mask:
            accepting |= 1 << ids[subset]
        # Fold the per-state successor rows once per subset (not once
        # per symbol): singleton subsets — the common case for spec
        # automata — read their row directly.
        low = subset & -subset
        if subset == low:
            successors = closed_succ[low.bit_length() - 1]
        else:
            successors = list(closed_succ[low.bit_length() - 1])
            mask = subset ^ low
            while mask:
                low = mask & -mask
                row = closed_succ[low.bit_length() - 1]
                for symbol_id in range(k):
                    successors[symbol_id] |= row[symbol_id]
                mask ^= low
        for symbol_id in range(k):
            successor = successors[symbol_id]
            if not successor:
                delta.append(-1)
                continue
            target = ids.get(successor)
            if target is None:
                target = count
                ids[successor] = target
                count += 1
                charge_states(count, cap, "subset construction")
                queue.append(successor)
            delta.append(target)
    if tracer is not None and tracer.enabled:
        tracer.annotate(dfa_states=count, expansions=expansions, kernel="bitset")
    return BitDFA(bitnfa.alphabet, count, delta, 0, accepting)
