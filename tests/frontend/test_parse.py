"""Module parsing: annotations, subsystems, operations (on the paper's
listings and on adversarial inputs)."""

import pytest

from repro.frontend.model_ast import FrontendError, OpKind
from repro.frontend.parse import parse_module
from repro.paper import SECTION_2_MODULE


class TestValve:
    def test_parsed_as_base_class(self, valve):
        assert not valve.is_composite
        assert valve.subsystem_fields == ()

    def test_operations_and_kinds(self, valve):
        kinds = {op.name: op.kind for op in valve.operations}
        assert kinds == {
            "test": OpKind.INITIAL,
            "open": OpKind.MIDDLE,
            "close": OpKind.FINAL,
            "clean": OpKind.FINAL,
        }

    def test_return_sets(self, valve):
        test_op = valve.operation("test")
        assert [p.next_methods for p in test_op.returns] == [("open",), ("clean",)]
        assert [p.next_methods for p in valve.operation("open").returns] == [("close",)]

    def test_non_op_methods_excluded(self, valve):
        assert valve.operation("__init__") is None


class TestBadSector:
    def test_parsed_as_composite(self, bad_sector):
        assert bad_sector.is_composite
        assert bad_sector.subsystem_fields == ("a", "b")

    def test_claims_extracted(self, bad_sector):
        assert bad_sector.claims == ("(!a.open) W b.open",)

    def test_subsystem_declarations(self, bad_sector):
        declared = {(d.field_name, d.class_name) for d in bad_sector.subsystems}
        assert declared == {("a", "Valve"), ("b", "Valve")}

    def test_operation_kinds(self, bad_sector):
        assert bad_sector.operation("open_a").kind == OpKind.INITIAL_FINAL
        assert bad_sector.operation("open_b").kind == OpKind.FINAL

    def test_calls_collected(self, bad_sector):
        assert bad_sector.operation("open_a").calls == {"a.test", "a.open", "a.clean"}
        assert bad_sector.operation("open_b").calls == {
            "b.test",
            "b.open",
            "b.clean",
            "b.close",
            "a.close",
        }

    def test_match_uses_extracted(self, bad_sector):
        uses = bad_sector.operation("open_a").match_uses
        assert len(uses) == 1
        assert uses[0].handled == (("open",), ("clean",))


class TestModuleLevel:
    def test_classes_in_source_order(self, section2_module):
        assert section2_module.class_names() == ("Valve", "BadSector")

    def test_unannotated_classes_ignored(self):
        module, violations = parse_module(
            "class Plain:\n"
            "    def method(self):\n"
            "        return 1\n"
        )
        assert module.classes == ()
        assert violations == []

    def test_syntax_error_raises_frontend_error(self):
        with pytest.raises(FrontendError):
            parse_module("class Broken(:\n    pass\n")

    def test_no_violations_on_paper_module(self):
        _module, violations = parse_module(SECTION_2_MODULE)
        assert violations == []


class TestAnnotationErrors:
    def test_sys_with_non_literal_list(self):
        _module, violations = parse_module(
            "@sys(fields)\n"
            "class C:\n"
            "    pass\n"
        )
        assert any(v.code == "bad-annotation" for v in violations)

    def test_sys_with_two_arguments(self):
        _module, violations = parse_module(
            "@sys(['a'], ['b'])\n"
            "class C:\n"
            "    pass\n"
        )
        assert any(v.code == "bad-annotation" for v in violations)

    def test_claim_with_non_literal(self):
        _module, violations = parse_module(
            "@claim(formula)\n"
            "@sys\n"
            "class C:\n"
            "    pass\n"
        )
        assert any(v.code == "bad-annotation" for v in violations)

    def test_op_on_class_rejected(self):
        _module, violations = parse_module(
            "@op_initial\n"
            "class C:\n"
            "    pass\n"
        )
        assert any("applies to methods" in v.message for v in violations)

    def test_two_op_decorators_on_one_method(self):
        _module, violations = parse_module(
            "@sys\n"
            "class C:\n"
            "    @op_initial\n"
            "    @op_final\n"
            "    def m(self):\n"
            "        return []\n"
        )
        assert any("more than one @op" in v.message for v in violations)

    def test_operation_without_return(self):
        module, violations = parse_module(
            "@sys\n"
            "class C:\n"
            "    @op_initial\n"
            "    def m(self):\n"
            "        pass\n"
        )
        assert any(v.code == "missing-return" for v in violations)
        assert module.get_class("C").operation("m") is not None

    def test_declared_subsystem_never_assigned(self):
        _module, violations = parse_module(
            "@sys(['a'])\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "    @op_initial_final\n"
            "    def m(self):\n"
            "        return []\n"
        )
        assert any(v.code == "unknown-subsystem" for v in violations)

    def test_dotted_decorator_names_recognised(self):
        module, violations = parse_module(
            "import shelley\n"
            "@shelley.sys\n"
            "class C:\n"
            "    @shelley.op_initial_final\n"
            "    def m(self):\n"
            "        return []\n"
        )
        assert violations == []
        assert module.get_class("C") is not None
        assert module.get_class("C").operation("m").kind == OpKind.INITIAL_FINAL
