"""Method invocation analysis and match exhaustiveness (§3, step 3)."""

from repro.core.exhaustiveness import check_invocations, check_match_exhaustiveness
from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.paper import VALVE


def build(user_body: str):
    source = VALVE + (
        "\n\n@sys(['v'])\n"
        "class User:\n"
        "    def __init__(self):\n"
        "        self.v = Valve()\n"
        f"{user_body}"
    )
    module, violations = parse_module(source)
    assert violations == []
    specs = {p.name: ClassSpec.of(p) for p in module.classes}
    return module.get_class("User"), specs


class TestInvocations:
    def test_paper_classes_clean(self, valve, bad_sector):
        specs = {"Valve": ClassSpec.of(valve), "BadSector": ClassSpec.of(bad_sector)}
        assert check_invocations(bad_sector, specs).ok

    def test_undeclared_method_reported(self):
        user, specs = build(
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        self.v.frobnicate()\n"
            "        return []\n"
        )
        result = check_invocations(user, specs)
        assert not result.ok
        errors = result.by_code("undeclared-method")
        assert len(errors) == 1
        assert "v.frobnicate" in errors[0].message

    def test_private_helper_methods_also_need_declaration(self):
        # Even Valve's real (unannotated) methods are not operations.
        user, specs = build(
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        self.v.__init__()\n"
            "        return []\n"
        )
        result = check_invocations(user, specs)
        assert result.by_code("undeclared-method")

    def test_unknown_subsystem_class_reported_once(self):
        source = (
            "@sys(['x', 'y'])\n"
            "class User:\n"
            "    def __init__(self):\n"
            "        self.x = Mystery()\n"
            "        self.y = Mystery()\n"
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        self.x.poke()\n"
            "        self.x.prod()\n"
            "        self.y.poke()\n"
            "        return []\n"
        )
        module, _ = parse_module(source)
        user = module.get_class("User")
        result = check_invocations(user, {"User": ClassSpec.of(user)})
        assert len(result.by_code("unknown-subsystem-class")) == 1


class TestMatchExhaustiveness:
    def test_paper_matches_are_exhaustive(self, valve, bad_sector):
        specs = {"Valve": ClassSpec.of(valve), "BadSector": ClassSpec.of(bad_sector)}
        assert check_match_exhaustiveness(bad_sector, specs).ok

    def test_missing_exit_point_reported(self):
        user, specs = build(
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        match self.v.test():\n"
            "            case ['open']:\n"
            "                self.v.open()\n"
            "                self.v.close()\n"
            "                return []\n"
        )
        result = check_match_exhaustiveness(user, specs)
        errors = result.by_code("non-exhaustive-match")
        assert len(errors) == 1
        assert "['clean']" in errors[0].message

    def test_wildcard_suppresses_missing_exits(self):
        user, specs = build(
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        match self.v.test():\n"
            "            case ['open']:\n"
            "                self.v.open()\n"
            "                self.v.close()\n"
            "                return []\n"
            "            case _:\n"
            "                self.v.clean()\n"
            "                return []\n"
        )
        result = check_match_exhaustiveness(user, specs)
        assert not result.by_code("non-exhaustive-match")

    def test_unreachable_case_warned(self):
        user, specs = build(
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        match self.v.test():\n"
            "            case ['open']:\n"
            "                self.v.open()\n"
            "                self.v.close()\n"
            "                return []\n"
            "            case ['clean']:\n"
            "                self.v.clean()\n"
            "                return []\n"
            "            case ['bogus']:\n"
            "                return []\n"
        )
        result = check_match_exhaustiveness(user, specs)
        warnings = result.by_code("unreachable-case")
        assert len(warnings) == 1
        assert "['bogus']" in warnings[0].message
        assert result.ok  # warning, not error

    def test_match_on_undeclared_method_skipped(self):
        # check_invocations owns that error; no duplicate here.
        user, specs = build(
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        match self.v.ghost():\n"
            "            case ['x']:\n"
            "                return []\n"
        )
        assert check_match_exhaustiveness(user, specs).ok
