"""JSON (de)serialization of diagnostics and kernel DFAs for the cache.

The cached value of a class check is its diagnostic list; round trips
must be *exact* (``from_dict(to_dict(d)) == d``) so a warm-cache run
renders byte-identical reports.  Diagnostics are flat frozen dataclasses,
so this is a field-by-field mapping with tuples flattened to lists;
classic DFA payloads reuse :mod:`repro.core.model_io`, and bitset-kernel
DFAs ship as *flat arrays* (``bitdfa_to_flat``) — a symbol list plus a
list of ints — which is what lets process-pool workers return automata
without pickling frozenset-of-tuples state graphs.
"""

from __future__ import annotations

from typing import Any

from repro.automata.kernel import Alphabet, BitDFA
from repro.core.diagnostics import Diagnostic, Severity, SubsystemError


class FlatFormatError(ValueError):
    """A flat DFA payload that does not decode."""


def bitdfa_to_flat(bitdfa: BitDFA) -> dict[str, Any]:
    """Serialize a :class:`~repro.automata.kernel.BitDFA` as flat arrays.

    The payload is pure JSON: the alphabet's symbols *in id order* (so
    the decoder rebuilds the exact interning), the state count, the flat
    ``delta`` row-major array (``-1`` = missing move), the initial state
    and the accepting ids.  No state names exist to preserve — kernel
    states are dense ints by construction.
    """
    return {
        "symbols": bitdfa.alphabet.to_payload(),
        "n": bitdfa.n,
        "delta": list(bitdfa.delta),
        "initial": bitdfa.initial,
        "accepting": list(bitdfa.accepting_states()),
    }


def bitdfa_from_flat(payload: dict[str, Any]) -> BitDFA:
    """Rebuild a :class:`~repro.automata.kernel.BitDFA` from flat arrays.

    Raises :class:`FlatFormatError` on malformed payloads — the cache
    treats that as a miss, never as a crash.
    """
    try:
        alphabet = Alphabet.from_payload(payload["symbols"])
        n = int(payload["n"])
        delta = [int(move) for move in payload["delta"]]
        initial = int(payload["initial"])
        accepting = 0
        for state in payload["accepting"]:
            state = int(state)
            if not 0 <= state < max(n, 1):
                raise ValueError(f"accepting state {state} out of range")
            accepting |= 1 << state
        for move in delta:
            if move >= n or move < -1:
                raise ValueError(f"transition target {move} out of range")
        return BitDFA(alphabet, n, delta, initial, accepting)
    except FlatFormatError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise FlatFormatError(f"bad flat DFA payload: {error}") from error


def diagnostic_to_dict(diagnostic: Diagnostic) -> dict[str, Any]:
    """Serialize one diagnostic (all fields, including defaults)."""
    return {
        "severity": diagnostic.severity.value,
        "code": diagnostic.code,
        "message": diagnostic.message,
        "class_name": diagnostic.class_name,
        "title": diagnostic.title,
        "formula": diagnostic.formula,
        "counterexample": (
            None
            if diagnostic.counterexample is None
            else list(diagnostic.counterexample)
        ),
        "subsystem_errors": [
            {
                "class_name": error.class_name,
                "field_name": error.field_name,
                "rendered": error.rendered,
            }
            for error in diagnostic.subsystem_errors
        ],
        "lineno": diagnostic.lineno,
    }


def diagnostic_from_dict(data: dict[str, Any]) -> Diagnostic:
    """Rebuild a diagnostic; raises ``KeyError``/``ValueError`` on junk."""
    counterexample = data["counterexample"]
    return Diagnostic(
        severity=Severity(data["severity"]),
        code=data["code"],
        message=data["message"],
        class_name=data["class_name"],
        title=data["title"],
        formula=data["formula"],
        counterexample=None if counterexample is None else tuple(counterexample),
        subsystem_errors=tuple(
            SubsystemError(
                class_name=error["class_name"],
                field_name=error["field_name"],
                rendered=error["rendered"],
            )
            for error in data["subsystem_errors"]
        ),
        lineno=data["lineno"],
    )


def diagnostics_to_list(diagnostics: list[Diagnostic]) -> list[dict[str, Any]]:
    return [diagnostic_to_dict(diagnostic) for diagnostic in diagnostics]


def diagnostics_from_list(payload: list[dict[str, Any]]) -> list[Diagnostic]:
    return [diagnostic_from_dict(data) for data in payload]
