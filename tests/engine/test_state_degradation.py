"""LockTimeout degradation of the project state (``repro.engine.state``).

A contended state lock must never change a verdict: the save degrades
to a structured :class:`SaveReport` failure, the run's metrics count it
(``store.state_save_failures``), and the CLI warns on stderr that the
next incremental run starts cold.  In-process first, then the same
story end-to-end through ``repro check --incremental``.
"""

import json
import subprocess
import sys
from pathlib import Path

import repro
from repro.engine import faults
from repro.engine.incremental import verify_incremental
from repro.engine.state import load_state
from repro.frontend.parse import parse_module
from repro.paper import GOOD_MODULE

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class TestInProcessDegradation:
    def test_lock_timeout_degrades_the_save_not_the_verdict(
        self, tmp_path, no_ambient_faults
    ):
        faults.install(faults.parse_faults("lock-acquire:lock-timeout:state"))
        module, violations = parse_module(GOOD_MODULE)
        state_file = tmp_path / "state.json"
        outcome = verify_incremental(
            module, violations, state_file=state_file
        )
        # The verdict is untouched by the persistence failure.
        assert outcome.batch.merged().ok
        # The failure is structured, not silent.
        assert outcome.save is not None
        assert outcome.save.ok is False
        assert outcome.save.lock_timeout is True
        assert outcome.batch.metrics.state_save_failures == 1
        # Nothing half-written: the state file simply does not exist.
        state, reason = load_state(state_file)
        assert state is None and reason is not None

    def test_next_healthy_run_saves_and_reuses(
        self, tmp_path, no_ambient_faults
    ):
        faults.install(faults.parse_faults("lock-acquire:lock-timeout:state"))
        module, violations = parse_module(GOOD_MODULE)
        state_file = tmp_path / "state.json"
        degraded = verify_incremental(
            module, violations, state_file=state_file
        )
        assert degraded.batch.metrics.reused_verdicts == 0  # cold

        faults.install(None)
        warm_up = verify_incremental(module, violations, state_file=state_file)
        assert warm_up.save is not None and warm_up.save.ok
        reused = verify_incremental(module, violations, state_file=state_file)
        assert reused.batch.metrics.reused_verdicts == len(module.classes)
        assert reused.batch.merged().format() == degraded.batch.merged().format()


class TestCliDegradation:
    def _check_incremental(self, target, cache_dir, metrics_out, *, fault=None):
        env = {"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR}
        if fault:
            env["REPRO_FAULTS"] = fault
        return subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "check", str(target),
                "--incremental", "--cache-dir", str(cache_dir),
                "--metrics-out", str(metrics_out),
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )

    def test_incremental_under_lock_timeout_warns_and_counts(self, tmp_path):
        target = tmp_path / "good.py"
        target.write_text(GOOD_MODULE, encoding="utf-8")
        metrics_out = tmp_path / "metrics.json"
        degraded = self._check_incremental(
            target, tmp_path / "cache", metrics_out,
            fault="lock-acquire:lock-timeout:state",
        )
        assert degraded.returncode == 0
        assert "project state not saved" in degraded.stderr
        assert "Traceback" not in degraded.stderr
        metrics = json.loads(metrics_out.read_text())
        assert metrics["store"]["state_save_failures"] == 1

        # The very next healthy run saves state and reports zero failures.
        healthy = self._check_incremental(
            target, tmp_path / "cache", metrics_out
        )
        assert healthy.returncode == 0
        assert healthy.stdout == degraded.stdout
        assert "project state not saved" not in healthy.stderr
        metrics = json.loads(metrics_out.read_text())
        assert metrics["store"]["state_save_failures"] == 0
