"""LTLf → regular expression (the regular-language circle of §5)."""

import itertools

import pytest

from repro.ltlf.parser import parse_claim
from repro.ltlf.semantics import evaluate
from repro.ltlf.to_regex import formula_to_regex, violation_regex
from repro.regex.ast import format_regex
from repro.regex.matching import matches

ALPHABET = ["a", "b"]


def all_traces(max_length: int):
    for length in range(max_length + 1):
        yield from itertools.product(ALPHABET, repeat=length)


class TestFormulaToRegex:
    @pytest.mark.parametrize(
        "claim",
        [
            "a",
            "!a",
            "F b",
            "G a",
            "X b",
            "a U b",
            "(!a) W b",
            "G (a -> X b)",
            "F a & F b",
        ],
    )
    def test_regex_matches_exactly_the_models(self, claim):
        formula = parse_claim(claim)
        regex = formula_to_regex(formula, ALPHABET)
        for trace in all_traces(4):
            assert matches(regex, trace) == evaluate(formula, trace), (claim, trace)

    def test_simple_formulas_give_readable_regexes(self):
        # G a over {a} is a*.
        regex = formula_to_regex(parse_claim("G a"), ["a"])
        assert format_regex(regex) == "a*"

    def test_eventually_shape(self):
        # F b over {b} is b . b* + ... -> language of traces containing b.
        regex = formula_to_regex(parse_claim("F b"), ["b"])
        assert matches(regex, ("b",))
        assert matches(regex, ("b", "b"))
        assert not matches(regex, ())

    def test_default_alphabet_is_atoms(self):
        regex = formula_to_regex(parse_claim("a U b"))
        assert matches(regex, ("a", "a", "b"))
        assert not matches(regex, ("a",))

    def test_unsimplified_variant_same_language(self):
        formula = parse_claim("(!a) W b")
        fast = formula_to_regex(formula, ALPHABET, simplified=False)
        small = formula_to_regex(formula, ALPHABET, simplified=True)
        from repro.regex.equivalence import equivalent

        assert equivalent(fast, small)


class TestViolationRegex:
    def test_complement_of_models(self):
        formula = parse_claim("(!a) W b")
        violating = violation_regex(formula, ALPHABET)
        for trace in all_traces(4):
            assert matches(violating, trace) == (not evaluate(formula, trace))

    def test_violation_of_globally(self):
        violating = violation_regex(parse_claim("G a"), ALPHABET)
        assert matches(violating, ("b",))
        assert matches(violating, ("a", "b", "a"))
        assert not matches(violating, ("a", "a"))


class TestClaimCheckingViaRegexes:
    def test_bad_sector_claim_as_pure_regex_inclusion(self, bad_sector):
        """The §5 programme end to end: program behavior and claim both
        as regexes; the claim fails iff behavior ∩ violations ≠ ∅."""
        from repro.automata.determinize import determinize
        from repro.automata.operations import project_nfa, with_alphabet
        from repro.automata.product import intersection
        from repro.automata.shortest import shortest_accepted_word
        from repro.automata.thompson import thompson
        from repro.core.behavior import behavior_nfa

        behavior = behavior_nfa(bad_sector)
        observed = sorted(l for l in behavior.alphabet if "." in l)
        projected = determinize(project_nfa(behavior, observed))

        formula = parse_claim("(!a.open) W b.open")
        violating = violation_regex(formula, observed)
        violating_dfa = determinize(thompson(violating, frozenset(observed)))

        joint = projected.alphabet | violating_dfa.alphabet
        bad = intersection(
            with_alphabet(projected, joint), with_alphabet(violating_dfa, joint)
        )
        witness = shortest_accepted_word(bad)
        assert witness == ("a.test", "a.open")
