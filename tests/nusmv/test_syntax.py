"""NuSMV syntax helpers."""

from repro.nusmv.syntax import (
    case_expression,
    conjunction,
    disjunction,
    enum_declaration,
    mangle,
    unique_names,
)


class TestMangle:
    def test_dotted_label(self):
        assert mangle("a.open") == "a_open"

    def test_already_clean(self):
        assert mangle("open_a") == "open_a"

    def test_special_characters(self):
        assert mangle("exit:open/1") == "exit_open_1"

    def test_leading_digit_prefixed(self):
        assert mangle("0state") == "s_0state"

    def test_empty_name(self):
        assert mangle("") == "s_"


class TestUniqueNames:
    def test_collision_resolved(self):
        mapping = unique_names(["a.open", "a_open"])
        assert mapping["a.open"] == "a_open"
        assert mapping["a_open"] == "a_open_2"
        assert len(set(mapping.values())) == 2

    def test_stable_order(self):
        mapping = unique_names(["x", "y", "x.z"])
        assert list(mapping) == ["x", "y", "x.z"]


class TestDeclarations:
    def test_var_declaration(self):
        text = enum_declaration("state", ["s0", "s1"])
        assert text == "VAR\n  state : {s0, s1};"

    def test_ivar_declaration(self):
        text = enum_declaration("event", ["e1"], input_var=True)
        assert text.startswith("IVAR")

    def test_case_expression(self):
        text = case_expression([("a = 1", "x"), ("TRUE", "y")])
        assert "case" in text and "esac" in text
        assert "a = 1 : x;" in text
        assert "TRUE : y;" in text


class TestBooleanBuilders:
    def test_conjunction(self):
        assert conjunction([]) == "TRUE"
        assert conjunction(["a"]) == "a"
        assert conjunction(["a", "b"]) == "(a) & (b)"

    def test_disjunction(self):
        assert disjunction([]) == "FALSE"
        assert disjunction(["a"]) == "a"
        assert disjunction(["a", "b"]) == "(a) | (b)"
