"""Parsing of operation ``return`` statements (Table 2).

Supported forms and their meanings::

    return ["close"]             next method must be "close"
    return ["open", "clean"]     next method is "open" or "clean"
    return []                    no method may follow
    return ["close"], 2          as the first form, user value 2
    return ["open", "clean"], X  choice plus an arbitrary user value

The next-method list must be a literal list of string constants — the
specification has to be readable statically.  Anything else is reported
as a subset violation by the caller.
"""

from __future__ import annotations

import ast

from repro.frontend.model_ast import ReturnPoint, SubsetViolation


class ReturnFormError(ValueError):
    """Raised when a ``return`` does not follow one of Table 2's forms."""

    def __init__(self, message: str, lineno: int = 0):
        super().__init__(message)
        self.lineno = lineno

    def as_violation(self, class_name: str = "") -> SubsetViolation:
        return SubsetViolation(
            code="bad-return-form",
            message=str(self),
            lineno=self.lineno,
            class_name=class_name,
        )


def _parse_method_list(node: ast.expr, lineno: int) -> tuple[str, ...]:
    """Extract the literal next-method list of a return expression."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        raise ReturnFormError(
            "operation returns must list the next methods, e.g. return ['open']",
            lineno,
        )
    methods: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            raise ReturnFormError(
                "next-method lists must contain string literals only", lineno
            )
        methods.append(element.value)
    if len(set(methods)) != len(methods):
        raise ReturnFormError("next-method lists must not repeat a method", lineno)
    return tuple(methods)


def parse_return(node: ast.Return, exit_id: int) -> ReturnPoint:
    """Parse one ``return`` statement of an operation into a
    :class:`ReturnPoint`.

    Raises :class:`ReturnFormError` for bare returns and non-literal
    forms — every exit point of an operation must declare its successors.
    """
    lineno = node.lineno
    value = node.value
    if value is None:
        raise ReturnFormError(
            "operations must not use a bare return; "
            "declare the next methods, e.g. return []",
            lineno,
        )
    if isinstance(value, ast.Tuple) and len(value.elts) >= 2:
        # Tuple form: the first position is the next-method list, the
        # remainder is an arbitrary user value (Table 2, rows 3-5).
        methods = _parse_method_list(value.elts[0], lineno)
        return ReturnPoint(
            exit_id=exit_id,
            next_methods=methods,
            has_user_value=True,
            lineno=lineno,
        )
    methods = _parse_method_list(value, lineno)
    return ReturnPoint(
        exit_id=exit_id,
        next_methods=methods,
        has_user_value=False,
        lineno=lineno,
    )


def describe_return(point: ReturnPoint) -> str:
    """Human-readable meaning of a return point (the prose of Table 2)."""
    if not point.next_methods:
        base = "no method may be invoked next"
    elif len(point.next_methods) == 1:
        base = f"expecting method {point.next_methods[0]!r} to be invoked next"
    else:
        quoted = " or ".join(repr(m) for m in point.next_methods)
        base = f"expecting methods {quoted} to be invoked next"
    if point.has_user_value:
        return base + " (and returns a user value)"
    return base
