"""Content-addressed inference cache.

Two namespaces, both keyed by SHA-256 fingerprints from
:mod:`repro.engine.fingerprint`:

* ``method`` — the inferred behavior of one body term: the ongoing regex
  and the per-exit regexes, stored in the paper's concrete syntax (the
  parser/printer pair round-trips canonical terms exactly);
* ``class`` — a class's check verdict: the diagnostic list, plus the
  determinized behavior DFA when the check computed one (composites).

Layout on disk (the directory is safe to delete at any time)::

    .repro-cache/
        CACHEDIR.TAG
        method/<k[:2]>/<k>.json
        class/<k[:2]>/<k>.json

Every payload is wrapped in an envelope carrying ``cache_version``;
entries written by an incompatible build, as well as unreadable or
truncated files, are treated as misses — the cache can only ever cost a
recomputation, never wrong output.  Writes go through a temp file +
``os.replace`` so concurrent runs see whole entries or nothing.

The in-memory layer makes repeated lookups within one process free and
is guarded by a lock, so a thread-pool engine can share one instance.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Bump together with payload shape changes.
CACHE_VERSION = 1

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_NAMESPACES = ("method", "class")

_CACHEDIR_TAG = (
    "Signature: 8a477f597d28d172789f06886806bc55\n"
    "# This directory holds the repro inference cache; safe to delete.\n"
)


@dataclass
class CacheStats:
    """Hit/miss/write counters, per namespace."""

    hits: dict[str, int] = field(default_factory=lambda: {n: 0 for n in _NAMESPACES})
    misses: dict[str, int] = field(default_factory=lambda: {n: 0 for n in _NAMESPACES})
    writes: dict[str, int] = field(default_factory=lambda: {n: 0 for n in _NAMESPACES})

    def hit_rate(self, namespace: str) -> float:
        total = self.hits[namespace] + self.misses[namespace]
        return self.hits[namespace] / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "writes": dict(self.writes),
        }


class InferenceCache:
    """Content-addressed store for inference and verdict payloads.

    ``root=None`` keeps the cache purely in memory (one process, no
    persistence) — useful for tests and for the engine's default when
    the user did not opt into ``--cache``.
    """

    def __init__(self, root: str | Path | None = DEFAULT_CACHE_DIR):
        self.root = None if root is None else Path(root)
        self.stats = CacheStats()
        self._memory: dict[tuple[str, str], dict[str, Any]] = {}
        self._lock = threading.Lock()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            tag = self.root / "CACHEDIR.TAG"
            if not tag.exists():
                tag.write_text(_CACHEDIR_TAG, encoding="utf-8")

    # ------------------------------------------------------------------

    def _path(self, namespace: str, key: str) -> Path:
        assert self.root is not None
        return self.root / namespace / key[:2] / f"{key}.json"

    def get(self, namespace: str, key: str) -> dict[str, Any] | None:
        """The stored payload, or ``None`` on any kind of miss."""
        if namespace not in _NAMESPACES:
            raise ValueError(f"unknown cache namespace: {namespace!r}")
        with self._lock:
            payload = self._memory.get((namespace, key))
        if payload is None and self.root is not None:
            payload = self._read_file(namespace, key)
            if payload is not None:
                with self._lock:
                    self._memory[(namespace, key)] = payload
        if payload is None:
            self.stats.misses[namespace] += 1
            return None
        self.stats.hits[namespace] += 1
        return payload

    def _read_file(self, namespace: str, key: str) -> dict[str, Any] | None:
        path = self._path(namespace, key)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("cache_version") != CACHE_VERSION
            or not isinstance(envelope.get("payload"), dict)
        ):
            return None
        return envelope["payload"]

    def put(self, namespace: str, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload``; persists when the cache has a root."""
        if namespace not in _NAMESPACES:
            raise ValueError(f"unknown cache namespace: {namespace!r}")
        with self._lock:
            self._memory[(namespace, key)] = payload
        self.stats.writes[namespace] += 1
        if self.root is None:
            return
        path = self._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {"cache_version": CACHE_VERSION, "payload": payload}
        text = json.dumps(envelope, sort_keys=True)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(temp_name, path)
        except OSError:
            try:  # best effort: a failed write must not kill the check
                os.unlink(temp_name)
            except OSError:
                pass

    # ------------------------------------------------------------------

    def entry_count(self) -> int:
        """Number of entries on disk (0 for memory-only caches)."""
        if self.root is None:
            return len(self._memory)
        count = 0
        for namespace in _NAMESPACES:
            directory = self.root / namespace
            if directory.is_dir():
                count += sum(1 for _ in directory.rglob("*.json"))
        return count
