"""Artifacts of the paper itself: listings, worked examples, expected output.

Shared by the test suite, the benchmark harness and the documentation so
every reproduction target refers to a single copy of each listing.
"""

from repro.paper.listings import (
    BAD_SECTOR,
    GOOD_MODULE,
    GOOD_SECTOR,
    SECTION_2_MODULE,
    SECTOR,
    SECTOR_MODULE,
    VALVE,
)

__all__ = [
    "BAD_SECTOR",
    "GOOD_MODULE",
    "GOOD_SECTOR",
    "SECTION_2_MODULE",
    "SECTOR",
    "SECTOR_MODULE",
    "VALVE",
]
