"""Product constructions on DFAs (intersection and difference).

The usage check of §2.2 reduces to *difference*: a violation exists iff
``L(behavior) \\ L(lifted spec)`` is non-empty, and the shortest word of
the difference automaton is exactly the counterexample Shelley prints.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA


def _product(left: DFA, right: DFA, accept_left: bool, accept_right: bool) -> DFA:
    """Reachable product of two *total* DFAs over the same alphabet.

    ``accept_left``/``accept_right`` pick the acceptance condition:
    both ``True`` gives intersection, ``True``/``False`` gives difference
    (left minus right).
    """
    if left.alphabet != right.alphabet:
        raise ValueError(
            "product requires equal alphabets; "
            f"got {sorted(left.alphabet)} vs {sorted(right.alphabet)}"
        )
    left_total = left.completed()
    right_total = right.completed()
    initial = (left_total.initial_state, right_total.initial_state)
    states = {initial}
    transitions: dict[tuple[tuple, str], tuple] = {}
    accepting: set[tuple] = set()
    queue = deque([initial])
    ordered_alphabet = sorted(left.alphabet)
    while queue:
        pair = queue.popleft()
        left_state, right_state = pair
        left_ok = left_state in left_total.accepting_states
        right_ok = right_state in right_total.accepting_states
        if (left_ok == accept_left) and (right_ok == accept_right):
            accepting.add(pair)
        for symbol in ordered_alphabet:
            successor = (
                left_total.successor(left_state, symbol),
                right_total.successor(right_state, symbol),
            )
            transitions[(pair, symbol)] = successor
            if successor not in states:
                states.add(successor)
                queue.append(successor)
    return DFA(
        states=frozenset(states),
        alphabet=left.alphabet,
        transitions=transitions,
        initial_state=initial,
        accepting_states=frozenset(accepting),
    )


def intersection(left: DFA, right: DFA) -> DFA:
    """A DFA for ``L(left) ∩ L(right)``."""
    return _product(left, right, accept_left=True, accept_right=True)


def difference(left: DFA, right: DFA) -> DFA:
    """A DFA for ``L(left) \\ L(right)``."""
    return _product(left, right, accept_left=True, accept_right=False)


def symmetric_difference(left: DFA, right: DFA) -> DFA:
    """A DFA accepting when exactly one operand accepts (for equivalence)."""
    if left.alphabet != right.alphabet:
        raise ValueError("symmetric difference requires equal alphabets")
    left_total = left.completed()
    right_total = right.completed()
    initial = (left_total.initial_state, right_total.initial_state)
    states = {initial}
    transitions: dict[tuple[tuple, str], tuple] = {}
    accepting: set[tuple] = set()
    queue = deque([initial])
    while queue:
        pair = queue.popleft()
        left_state, right_state = pair
        if (left_state in left_total.accepting_states) != (
            right_state in right_total.accepting_states
        ):
            accepting.add(pair)
        for symbol in sorted(left.alphabet):
            successor = (
                left_total.successor(left_state, symbol),
                right_total.successor(right_state, symbol),
            )
            transitions[(pair, symbol)] = successor
            if successor not in states:
                states.add(successor)
                queue.append(successor)
    return DFA(
        states=frozenset(states),
        alphabet=left.alphabet,
        transitions=transitions,
        initial_state=initial,
        accepting_states=frozenset(accepting),
    )
