"""CI smoke gate for distributed sharded verification.

Boots a real ``repro cache serve`` daemon, then drives the PR's
distribution story end to end, under the clock:

* **serial baseline** — one plain ``repro check`` run; its report is
  the byte-identity oracle for everything after;
* **cold coordinated run** — ``repro coordinate --shards 2`` with one
  fresh local cache tree per worker, sharing the remote endpoint; the
  merged report must equal the serial one byte for byte, and the
  workers must have uploaded their verdicts;
* **warm coordinated run** — a second 2-shard fleet with *new, empty*
  local trees; every class verdict must now arrive over the wire
  (``remote_hits > 0``, zero class misses), and the report must still
  be byte-identical.

Measurements land in ``--out`` (``BENCH_shard.json``).  Exits non-zero
on any violated invariant.

Usage::

    python benchmarks/shard_smoke.py --out BENCH_shard.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any(Path(p).resolve() == REPO_ROOT / "src" for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

SRC_DIR = str(REPO_ROOT / "src")

from repro.workloads.hierarchy import HierarchyShape, project_source  # noqa: E402

SHAPE = HierarchyShape(base_operations=5, subsystems=3, seed=41)
SHARDS = 2


class CacheDaemon:
    """One ``repro cache serve`` subprocess on an OS-assigned port."""

    def __init__(self, root: Path):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "cache", "serve",
                "--port", "0", "--cache-dir", str(root),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR},
        )
        line = self.proc.stdout.readline().strip()
        if not line.startswith("http://"):
            self.proc.kill()
            raise AssertionError(
                f"cache daemon did not come up: {line!r}\n"
                f"{self.proc.stderr.read()}"
            )
        self.endpoint = line

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


def check(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env={"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR},
        timeout=300,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_shard.json")
    args = parser.parse_args()

    failures: list[str] = []
    numbers: dict[str, object] = {"shards": SHARDS}

    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as scratch_dir:
        scratch = Path(scratch_dir)
        target = scratch / "project.py"
        target.write_text(
            project_source(SHAPE, pairs=3, correct=False), encoding="utf-8"
        )

        started = time.perf_counter()
        serial = check("check", str(target))
        numbers["serial_seconds"] = round(time.perf_counter() - started, 3)
        if serial.returncode not in (0, 1):
            print(serial.stderr, file=sys.stderr)
            raise SystemExit("serial baseline check failed outright")
        baseline = serial.stdout

        daemon = CacheDaemon(scratch / "served")
        try:
            from repro.engine import coordinate

            started = time.perf_counter()
            cold = coordinate(
                target,
                shards=SHARDS,
                worker_cache_root=scratch / "cold-workers",
                remote_cache=daemon.endpoint,
            )
            numbers["cold_seconds"] = round(time.perf_counter() - started, 3)
            cold_report = cold.batch.merged().format() + "\n"
            numbers["cold_remote_puts"] = cold.batch.metrics.remote_puts
            if cold_report != baseline:
                failures.append("cold coordinated report diverged from serial")
            if cold.batch.metrics.remote_puts <= 0:
                failures.append("cold run uploaded nothing to the remote tier")

            started = time.perf_counter()
            warm = coordinate(
                target,
                shards=SHARDS,
                worker_cache_root=scratch / "warm-workers",
                remote_cache=daemon.endpoint,
            )
            numbers["warm_seconds"] = round(time.perf_counter() - started, 3)
            warm_report = warm.batch.merged().format() + "\n"
            numbers["warm_remote_hits"] = warm.batch.metrics.remote_hits
            numbers["warm_class_misses"] = warm.batch.metrics.class_misses
            if warm_report != baseline:
                failures.append("warm coordinated report diverged from serial")
            if warm.batch.metrics.remote_hits <= 0:
                failures.append(
                    "warm fleet saw no remote hits — cross-worker cache "
                    "warming is broken"
                )
            if warm.batch.metrics.class_misses != 0:
                failures.append(
                    f"warm fleet recomputed {warm.batch.metrics.class_misses} "
                    "class verdict(s) despite a fully seeded remote"
                )
        finally:
            daemon.stop()

    numbers["ok"] = not failures
    numbers["failures"] = failures
    Path(args.out).write_text(
        json.dumps(numbers, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(json.dumps(numbers, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("shard smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
