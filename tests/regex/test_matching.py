"""Membership testing and structural emptiness."""

from repro.regex.ast import EMPTY, EPSILON, concat, star, symbol, union
from repro.regex.matching import is_empty_language, matches

A = symbol("a")
B = symbol("b")
C = symbol("c")


class TestMatches:
    def test_epsilon_matches_only_empty(self):
        assert matches(EPSILON, [])
        assert not matches(EPSILON, ["a"])

    def test_empty_matches_nothing(self):
        assert not matches(EMPTY, [])
        assert not matches(EMPTY, ["a"])

    def test_symbol(self):
        assert matches(A, ["a"])
        assert not matches(A, [])
        assert not matches(A, ["a", "a"])

    def test_concat(self):
        regex = concat(A, B)
        assert matches(regex, ["a", "b"])
        assert not matches(regex, ["b", "a"])

    def test_union(self):
        regex = union(A, B)
        assert matches(regex, ["a"])
        assert matches(regex, ["b"])
        assert not matches(regex, ["c"])

    def test_star(self):
        regex = star(concat(A, B))
        assert matches(regex, [])
        assert matches(regex, ["a", "b"])
        assert matches(regex, ["a", "b", "a", "b"])
        assert not matches(regex, ["a", "b", "a"])

    def test_paper_example_language(self):
        # infer of Example 3: (a.c)* + (a.c)*.a.b
        body = concat(A, C)
        regex = union(star(body), concat(star(body), concat(A, B)))
        assert matches(regex, [])
        assert matches(regex, ["a", "c", "a", "c"])  # Example 1's trace
        assert matches(regex, ["a", "c", "a", "b"])  # Example 2's trace
        assert not matches(regex, ["a", "b", "a", "c"])  # nothing after b

    def test_dotted_event_labels(self):
        regex = concat(symbol("a.test"), symbol("a.open"))
        assert matches(regex, ["a.test", "a.open"])
        assert not matches(regex, ["a.open", "a.test"])


class TestEmptiness:
    def test_empty_constant(self):
        assert is_empty_language(EMPTY)

    def test_epsilon_not_empty(self):
        assert not is_empty_language(EPSILON)

    def test_concat_with_empty_part(self):
        assert is_empty_language(concat(A, EMPTY))

    def test_union_with_one_inhabited_arm(self):
        assert not is_empty_language(union(EMPTY, A))

    def test_star_never_empty(self):
        assert not is_empty_language(star(EMPTY))
