"""Backend conformance: every transport obeys the same cache contract.

One parametrized suite drives :class:`InferenceCache` over all three
backends — the local sealed-store directory, the HTTP remote (against
an in-process ``repro cache serve`` daemon), and the tiered
composition — plus targeted tests for the behaviors only one backend
can exhibit: write-behind replication, remote-down degradation, and
the server's envelope validation.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine import faults, store
from repro.engine.backends import (
    LocalDirBackend,
    RemoteHTTPBackend,
    RemoteUnavailable,
    TieredBackend,
)
from repro.engine.backends.server import run_cache_server
from repro.engine.cache import CACHE_VERSION, InferenceCache

PAYLOAD = {"verdict": "clean", "diagnostics": []}
KEY = "deadbeefcafef00d"


def sealed_text(payload=PAYLOAD) -> str:
    envelope = store.seal({"cache_version": CACHE_VERSION, "payload": payload})
    return json.dumps(envelope, sort_keys=True)


@pytest.fixture()
def cache_server(tmp_path):
    server = run_cache_server(tmp_path / "served")
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture(params=["local", "remote", "tiered"])
def backend(request, tmp_path, cache_server):
    if request.param == "local":
        yield LocalDirBackend(tmp_path / "local")
    elif request.param == "remote":
        yield RemoteHTTPBackend(cache_server.endpoint)
    else:
        tiered = TieredBackend(
            LocalDirBackend(tmp_path / "local"),
            RemoteHTTPBackend(cache_server.endpoint),
            write_behind=False,
        )
        yield tiered
        tiered.close()


def corrupt_stored_entry(backend, cache_server, namespace, key):
    """Flip bytes of the stored entry, wherever this backend keeps it."""
    roots = []
    if backend.local_root is not None:
        roots.append(backend.local_root)
    roots.append(cache_server.backend.local_root)
    found = False
    for root in roots:
        path = root / namespace / key[:2] / f"{key}.json"
        if path.exists():
            # Invalid JSON: unambiguously corrupt (an envelope with a
            # missing version field would read as version skew instead).
            path.write_text("} definitely not json", encoding="utf-8")
            found = True
    assert found, "no stored entry to corrupt"


class TestConformance:
    def test_round_trip(self, backend):
        cache = InferenceCache(backend=backend)
        assert cache.get("method", KEY) is None
        cache.put("method", KEY, PAYLOAD)
        cache.flush()
        # A fresh cache over the same transport must see the entry
        # (no in-memory short-circuit).
        fresh = InferenceCache(backend=backend)
        assert fresh.get("method", KEY) == PAYLOAD
        assert fresh.stats.hits["method"] == 1

    def test_seal_mismatch_heals(self, backend, cache_server):
        cache = InferenceCache(backend=backend)
        cache.put("method", KEY, PAYLOAD)
        cache.flush()
        corrupt_stored_entry(backend, cache_server, "method", KEY)
        fresh = InferenceCache(backend=backend)
        assert fresh.get("method", KEY) is None
        assert fresh.stats.corrupt["method"] == 1
        # The corrupt entry was deleted: the next fresh read is a plain
        # miss, not another heal.
        again = InferenceCache(backend=backend)
        assert again.get("method", KEY) is None
        assert again.stats.corrupt["method"] == 0

    def test_delete_then_miss(self, backend):
        cache = InferenceCache(backend=backend)
        cache.put("method", KEY, PAYLOAD)
        cache.flush()
        assert backend.delete("method", KEY) is True
        fresh = InferenceCache(backend=backend)
        if isinstance(backend, TieredBackend):
            # Tiered deletes drop the *local* copy only — by design, so
            # a healed entry re-promotes from the intact remote copy.
            assert fresh.get("method", KEY) == PAYLOAD
        else:
            assert backend.delete("method", KEY) is False
            assert fresh.get("method", KEY) is None

    def test_concurrent_writers_converge(self, backend):
        cache = InferenceCache(backend=backend)
        errors = []

        def writer(index):
            try:
                for step in range(5):
                    cache.put("method", f"{KEY}{index:02d}{step:02d}", PAYLOAD)
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        threads = [
            threading.Thread(target=writer, args=(index,)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cache.flush()
        assert errors == []
        fresh = InferenceCache(backend=backend)
        for index in range(4):
            for step in range(5):
                assert fresh.get("method", f"{KEY}{index:02d}{step:02d}") == PAYLOAD


class TestTiered:
    def test_write_behind_reaches_remote_after_flush(self, tmp_path, cache_server):
        tiered = TieredBackend(
            LocalDirBackend(tmp_path / "local"),
            RemoteHTTPBackend(cache_server.endpoint),
        )
        cache = InferenceCache(backend=tiered)
        cache.put("method", KEY, PAYLOAD)
        cache.flush()
        remote_only = InferenceCache(
            backend=RemoteHTTPBackend(cache_server.endpoint)
        )
        assert remote_only.get("method", KEY) == PAYLOAD
        cache.close()

    def test_remote_hit_promotes_to_local(self, tmp_path, cache_server):
        seeder = InferenceCache(
            backend=RemoteHTTPBackend(cache_server.endpoint)
        )
        seeder.put("method", KEY, PAYLOAD)
        tiered = TieredBackend(
            LocalDirBackend(tmp_path / "local"),
            RemoteHTTPBackend(cache_server.endpoint),
            write_behind=False,
        )
        cache = InferenceCache(backend=tiered)
        assert cache.get("method", KEY) == PAYLOAD
        assert cache.stats.remote_hits == 1
        # Promotion happened: the local tree alone now serves the key.
        local_only = InferenceCache(backend=LocalDirBackend(tmp_path / "local"))
        assert local_only.get("method", KEY) == PAYLOAD
        cache.close()

    def test_remote_down_degrades_to_local_only(self, tmp_path):
        tiered = TieredBackend(
            LocalDirBackend(tmp_path / "local"),
            # Nothing listens here: every request is connection-refused.
            RemoteHTTPBackend("http://127.0.0.1:9", timeout=0.2),
            write_behind=False,
            failure_threshold=2,
        )
        cache = InferenceCache(backend=tiered)
        for index in range(4):
            assert cache.get("method", f"{KEY}{index:02d}") is None
        assert tiered.degraded
        assert cache.stats.remote_errors >= 2
        assert cache.stats.remote_degraded == 1
        # Local service continues unharmed.
        cache.put("method", KEY, PAYLOAD)
        fresh = InferenceCache(backend=LocalDirBackend(tmp_path / "local"))
        assert fresh.get("method", KEY) == PAYLOAD
        cache.close()

    def test_injected_remote_faults_degrade(self, tmp_path, cache_server):
        plan = faults.parse_faults("remote-get:raise:*;remote-put:raise:*")
        faults.install(plan)
        try:
            tiered = TieredBackend(
                LocalDirBackend(tmp_path / "local"),
                RemoteHTTPBackend(cache_server.endpoint),
                write_behind=False,
                failure_threshold=3,
            )
            cache = InferenceCache(backend=tiered)
            cache.put("method", KEY, PAYLOAD)
            assert cache.get("method", KEY) == PAYLOAD  # local tier serves
            for index in range(4):
                cache.get("method", f"{KEY}{index:02d}")
            assert tiered.degraded
            assert cache.stats.remote_errors >= 3
            cache.close()
        finally:
            faults.install(None)
        # Nothing ever reached the remote.
        assert cache_server.counters["puts"] == 0


class TestRemoteBackendErrors:
    def test_connection_refused_is_remote_unavailable(self):
        backend = RemoteHTTPBackend("http://127.0.0.1:9", timeout=0.2)
        with pytest.raises(RemoteUnavailable):
            backend.get_text("method", KEY)
        with pytest.raises(RemoteUnavailable):
            backend.put_text("method", KEY, sealed_text())

    def test_remote_unavailable_is_plain_miss_for_cache(self):
        cache = InferenceCache(
            backend=RemoteHTTPBackend("http://127.0.0.1:9", timeout=0.2)
        )
        assert cache.get("method", KEY) is None
        assert cache.stats.misses["method"] == 1
        assert cache.stats.corrupt["method"] == 0
        assert cache.stats.remote_errors == 1


class TestCacheServer:
    def put(self, server, path, body):
        request = urllib.request.Request(
            f"{server.endpoint}{path}",
            data=body.encode("utf-8"),
            method="PUT",
            headers={"Content-Type": "application/json"},
        )
        return urllib.request.urlopen(request, timeout=5.0)

    def test_healthz(self, cache_server):
        with urllib.request.urlopen(
            f"{cache_server.endpoint}/healthz", timeout=5.0
        ) as response:
            assert json.loads(response.read()) == {"ok": True}

    def test_rejects_unsealed_bodies(self, cache_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.put(cache_server, f"/v1/cache/method/{KEY}", '{"raw": 1}')
        assert excinfo.value.code == 400
        excinfo.value.close()
        assert cache_server.counters["rejected"] == 1

    def test_rejects_traversal_routes(self, cache_server):
        for path in (
            "/v1/cache/method/../../../etc/passwd",
            "/v1/cache/UPPER/abc123",
            "/v1/cache/method/notahexkey!",
            "/v1/other/method/abc123",
        ):
            request = urllib.request.Request(
                f"{cache_server.endpoint}{path}", method="GET"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5.0)
            assert excinfo.value.code == 404
            excinfo.value.close()

    def test_get_put_round_trip_and_stats(self, cache_server):
        text = sealed_text()
        with self.put(cache_server, f"/v1/cache/method/{KEY}", text):
            pass
        with urllib.request.urlopen(
            f"{cache_server.endpoint}/v1/cache/method/{KEY}", timeout=5.0
        ) as response:
            assert response.read().decode("utf-8") == text
        with urllib.request.urlopen(
            f"{cache_server.endpoint}/stats", timeout=5.0
        ) as response:
            stats = json.loads(response.read())
        assert stats["counters"]["puts"] == 1
        assert stats["counters"]["hits"] == 1
