"""Passive automaton learning: evidence-gated RPNI over the PTA.

Classic RPNI folds prefix-tree states together in canonical order,
keeping a merge when it does not conflate an accepting sample with a
rejecting one.  Our samples carry much sharper labels than +/- words:
the monitor told the collector, at *every* visited prefix, exactly which
operations were allowed next and whether the lifecycle could finalize.
A merge is therefore gated on **evidence agreement**:

* two states merge only if their observed ``allowed`` sets are equal
  (both known) and their ``final`` labels agree (both known);
* the gate applies recursively down the folded subtrees (the standard
  RPNI cascade), so a merge that would conflate two prefixes with
  *different observed futures* is rejected wholesale.

Soundness does not depend on the gates: specification automata are
local (the state after any word is determined by its last event — every
event moves to the full exit set of its operation), every PTA edge is a
monitored, spec-allowed step, and every accepting PTA node was verified
finalizable.  Any path through any quotient of the PTA is therefore a
concatenation of spec-allowed steps ending in a spec-accepting state —
``L(mined) ⊆ L(spec)`` holds for *every* merge sequence (docs/mining.md
gives the argument in full).  The gates buy precision: with them, a
transition-covering, evidence-carrying corpus makes the learner recover
the specification automaton exactly.

The merge order (blue states in BFS-lexicographic order, red candidates
in promotion order) is fixed, so mining is deterministic: same corpus,
same automaton.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.dfa import DFA
from repro.mine.corpus import TraceCorpus
from repro.mine.pta import PrefixTreeAcceptor
from repro.obs.tracer import NULL_TRACER


@dataclass
class MineStats:
    """How much work the learner did, and how much it compressed."""

    pta_states: int = 0
    mined_states: int = 0
    merges_tested: int = 0
    merges_accepted: int = 0
    promotions: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "pta_states": self.pta_states,
            "mined_states": self.mined_states,
            "merges_tested": self.merges_tested,
            "merges_accepted": self.merges_accepted,
            "promotions": self.promotions,
        }


@dataclass
class MinedModel:
    """The learner's output: a DFA shaped like a class specification.

    ``dfa`` is partial (missing moves reject), states are dense ints in
    BFS discovery order, and the alphabet is the full operation
    vocabulary of the mined class — aligned with ``spec.dfa()`` so the
    differential engine can run kernel inclusion directly.
    """

    class_name: str
    dfa: DFA
    stats: MineStats

    def accepts(self, word) -> bool:
        return self.dfa.accepts(word)


class _Quotient:
    """Mutable merged view of the PTA during learning."""

    __slots__ = ("children", "allowed", "final")

    def __init__(self, pta: PrefixTreeAcceptor):
        self.children = [dict(node.children) for node in pta.nodes]
        self.allowed = [node.allowed for node in pta.nodes]
        self.final = [node.final for node in pta.nodes]

    def compatible(self, left: int, right: int) -> bool:
        la, ra = self.allowed[left], self.allowed[right]
        if la is not None and ra is not None and la != ra:
            return False
        lf, rf = self.final[left], self.final[right]
        if lf is not None and rf is not None and lf != rf:
            return False
        return True

    def absorb(self, target: int, source: int) -> None:
        """Merge ``source``'s evidence into ``target``."""
        sa = self.allowed[source]
        if sa is not None:
            ta = self.allowed[target]
            self.allowed[target] = sa if ta is None else ta | sa
        sf = self.final[source]
        if sf is not None:
            tf = self.final[target]
            self.final[target] = sf if tf is None else tf or sf

    def fold(self, red: int, blue: int) -> bool:
        """Try merging ``blue`` into ``red``, cascading down shared symbols.

        On an evidence conflict anywhere in the cascade the whole merge
        is rolled back from an undo log and ``False`` is returned; the
        source (blue) side is a tree and only ever *read*, so the log
        covers exactly the target-side mutations.
        """
        log: list[tuple] = []
        stack = [(red, blue)]
        ok = True
        while stack:
            target, source = stack.pop()
            if not self.compatible(target, source):
                ok = False
                break
            log.append(("allowed", target, self.allowed[target]))
            log.append(("final", target, self.final[target]))
            self.absorb(target, source)
            for symbol in sorted(self.children[source]):
                source_child = self.children[source][symbol]
                target_child = self.children[target].get(symbol)
                if target_child is None:
                    log.append(("edge", target, symbol))
                    self.children[target][symbol] = source_child
                else:
                    stack.append((target_child, source_child))
        if ok:
            return True
        for entry in reversed(log):
            kind, state, payload = entry
            if kind == "allowed":
                self.allowed[state] = payload
            elif kind == "final":
                self.final[state] = payload
            else:
                del self.children[state][payload]
        return False


def learn(
    pta: PrefixTreeAcceptor,
    class_name: str = "",
    tracer=NULL_TRACER,
) -> MinedModel:
    """Run evidence-gated RPNI over ``pta`` and extract the mined DFA."""
    stats = MineStats(pta_states=len(pta))
    quotient = _Quotient(pta)
    redirect: dict[int, int] = {}

    def resolve(state: int) -> int:
        while state in redirect:
            state = redirect[state]
        return state

    red_order: list[int] = [0]
    red_set = {0}
    while True:
        # The first blue state: scan reds in promotion order, their
        # outgoing edges in symbol order — BFS-lexicographic, the RPNI
        # canonical order.
        blue = None
        for red in red_order:
            for symbol in sorted(quotient.children[red]):
                target = resolve(quotient.children[red][symbol])
                quotient.children[red][symbol] = target
                if target not in red_set:
                    blue = target
                    break
            if blue is not None:
                break
        if blue is None:
            break
        merged = False
        for red in red_order:
            stats.merges_tested += 1
            if not quotient.fold(red, blue):
                continue
            redirect[blue] = red
            stats.merges_accepted += 1
            merged = True
            break
        if not merged:
            red_order.append(blue)
            red_set.add(blue)
            stats.promotions += 1

    dfa = _extract(quotient, pta.alphabet, resolve)
    stats.mined_states = len(dfa.states)
    tracer.event(
        "mine-learned",
        class_name=class_name,
        pta_states=stats.pta_states,
        mined_states=stats.mined_states,
        merges=stats.merges_accepted,
    )
    return MinedModel(class_name=class_name, dfa=dfa, stats=stats)


def _extract(quotient: _Quotient, alphabet, resolve) -> DFA:
    """The quotient as a dense, BFS-renumbered classic DFA."""
    ids: dict[int, int] = {resolve(0): 0}
    order: list[int] = [resolve(0)]
    queue = deque(order)
    transitions: dict[tuple[int, str], int] = {}
    while queue:
        state = queue.popleft()
        for symbol in sorted(quotient.children[state]):
            target = resolve(quotient.children[state][symbol])
            if target not in ids:
                ids[target] = len(order)
                order.append(target)
                queue.append(target)
            transitions[(ids[state], symbol)] = ids[target]
    accepting = frozenset(
        ids[state] for state in order if quotient.final[state]
    )
    return DFA(
        states=frozenset(range(len(order))),
        alphabet=frozenset(alphabet),
        transitions=transitions,
        initial_state=0,
        accepting_states=accepting,
    )


def mine_corpus(
    corpus: TraceCorpus, tracer=NULL_TRACER
) -> MinedModel:
    """PTA construction + learning in one call."""
    pta = PrefixTreeAcceptor.from_corpus(corpus)
    return learn(pta, class_name=corpus.class_name, tracer=tracer)
