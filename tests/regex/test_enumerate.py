"""Bounded word enumeration (the engine behind the metatheory checks)."""

from repro.regex.ast import EMPTY, EPSILON, concat, star, symbol, union
from repro.regex.enumerate_words import (
    count_words,
    iter_words,
    shortest_word,
    words_up_to,
)

A = symbol("a")
B = symbol("b")


class TestWordsUpTo:
    def test_empty_language(self):
        assert words_up_to(EMPTY, 5) == frozenset()

    def test_epsilon(self):
        assert words_up_to(EPSILON, 5) == {()}

    def test_star_generates_all_lengths(self):
        assert words_up_to(star(A), 3) == {(), ("a",), ("a", "a"), ("a", "a", "a")}

    def test_union_merges(self):
        assert words_up_to(union(A, B), 1) == {("a",), ("b",)}

    def test_concat_products(self):
        regex = concat(union(A, B), union(A, B))
        assert words_up_to(regex, 2) == {
            ("a", "a"),
            ("a", "b"),
            ("b", "a"),
            ("b", "b"),
        }

    def test_bound_respected(self):
        words = words_up_to(star(A), 4)
        assert all(len(word) <= 4 for word in words)

    def test_negative_bound_empty(self):
        assert words_up_to(star(A), -1) == frozenset()


class TestIterOrder:
    def test_length_lex_order(self):
        regex = star(union(A, B))
        listed = list(iter_words(regex, 2))
        assert listed == [
            (),
            ("a",),
            ("b",),
            ("a", "a"),
            ("a", "b"),
            ("b", "a"),
            ("b", "b"),
        ]

    def test_count_words(self):
        assert count_words(star(union(A, B)), 2) == 7


class TestShortestWord:
    def test_none_for_empty(self):
        assert shortest_word(EMPTY) is None
        assert shortest_word(concat(A, EMPTY)) is None

    def test_epsilon_shortest(self):
        assert shortest_word(star(A)) == ()

    def test_prefers_shorter(self):
        regex = union(concat(A, B), A)
        assert shortest_word(regex) == ("a",)

    def test_alphabetical_tie_break(self):
        assert shortest_word(union(B, A)) == ("a",)
