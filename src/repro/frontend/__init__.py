"""MicroPython frontend: annotations, parsing, body abstraction, subset checks.

* :mod:`repro.frontend.decorators` — the runnable annotation API (Table 1),
* :mod:`repro.frontend.parse` — source → :class:`ParsedModule`,
* :mod:`repro.frontend.returns` — the return forms of Table 2,
* :mod:`repro.frontend.translate` — method bodies → the IR of Figure 4,
* :mod:`repro.frontend.subset` — supported-subset lints.
"""

from repro.frontend.decorators import (
    claim,
    declared_claims,
    declared_subsystems,
    is_system,
    op,
    op_final,
    op_initial,
    op_initial_final,
    operation_kind,
    sys,
)
from repro.frontend.model_ast import (
    FrontendError,
    MatchUse,
    OperationDef,
    OpKind,
    ParsedClass,
    ParsedModule,
    ReturnPoint,
    SubsetViolation,
    SubsystemDecl,
)
from repro.frontend.parse import parse_file, parse_module
from repro.frontend.project import check_project, parse_project, project_files
from repro.frontend.returns import ReturnFormError, describe_return, parse_return
from repro.frontend.subset import validate_class, validate_module
from repro.frontend.translate import BodyTranslator, TranslationResult, translate_body

__all__ = [
    "BodyTranslator",
    "FrontendError",
    "MatchUse",
    "OpKind",
    "OperationDef",
    "ParsedClass",
    "ParsedModule",
    "ReturnFormError",
    "ReturnPoint",
    "SubsetViolation",
    "SubsystemDecl",
    "TranslationResult",
    "check_project",
    "claim",
    "declared_claims",
    "declared_subsystems",
    "describe_return",
    "is_system",
    "op",
    "op_final",
    "op_initial",
    "op_initial_final",
    "operation_kind",
    "parse_file",
    "parse_module",
    "parse_project",
    "parse_return",
    "project_files",
    "sys",
    "translate_body",
    "validate_class",
    "validate_module",
]
