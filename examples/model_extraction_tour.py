"""A tour of the formal core (Section 3 / Figure 4 of the paper).

Walks through, printing each artifact:

1. the worked Examples 1–3 (trace semantics + behavior inference);
2. the bounded mechanization of Theorems 1–2 and Corollary 1;
3. method dependency extraction for Listing 3.1's ``Sector`` (Figure 3);
4. per-exit behavior extraction for ``BadSector``;
5. the NuSMV encoding Shelley would hand to the external model checker;
6. DOT diagrams for Figures 1 and 3, written next to this script.

Run with::

    python examples/model_extraction_tour.py
"""

from pathlib import Path


def part_1_worked_examples() -> None:
    from repro.lang import (
        ONGOING,
        RETURNED,
        behavior,
        derivable,
        format_program,
        infer,
        paper_example_program,
    )
    from repro.regex import format_regex

    program = paper_example_program()
    print(f"program p = {format_program(program)}")
    print()
    print("Example 1 (ongoing trace, two full iterations):")
    print(f"  0 |- [a, c, a, c] in p : {derivable(ONGOING, ('a', 'c', 'a', 'c'), program)}")
    print("Example 2 (returned trace, return in the second iteration):")
    print(f"  R |- [a, c, a, b] in p : {derivable(RETURNED, ('a', 'c', 'a', 'b'), program)}")
    print()
    inferred = behavior(program)
    print("Example 3 (behavior inference [[p]] = (r, s)):")
    print(f"  r = {format_regex(inferred.ongoing)}")
    for _exit, regex in inferred.returned:
        print(f"  s = {{ {format_regex(regex)} }}")
    print(f"  infer(p) = {format_regex(infer(program))}")


def part_2_metatheory() -> None:
    from repro.lang import check_all_theorems

    for report in check_all_theorems(max_program_size=4, max_trace_length=5):
        print(f"  {report.summary()}")


def part_3_dependency_graph() -> None:
    from repro.core import extract_dependency_graph
    from repro.frontend.parse import parse_module
    from repro.paper import SECTOR_MODULE
    from repro.viz import dependency_text

    module, _ = parse_module(SECTOR_MODULE)
    graph = extract_dependency_graph(module.get_class("Sector"))
    print(dependency_text(graph), end="")


def part_4_per_exit_behaviors() -> None:
    from repro.core import operation_exit_regexes
    from repro.frontend.parse import parse_module
    from repro.paper import SECTION_2_MODULE
    from repro.regex import format_regex

    module, _ = parse_module(SECTION_2_MODULE)
    bad_sector = module.get_class("BadSector")
    for operation in bad_sector.operations:
        print(f"  {operation.name}:")
        per_exit = operation_exit_regexes(operation)
        for point in operation.returns:
            print(
                f"    exit {point.exit_id} -> {list(point.next_methods)}: "
                f"{format_regex(per_exit[point.exit_id])}"
            )


def part_5_nusmv() -> None:
    from repro.automata import determinize
    from repro.core import behavior_nfa
    from repro.frontend.parse import parse_module
    from repro.ltlf import parse_claim
    from repro.nusmv import emit_model
    from repro.paper import SECTION_2_MODULE

    module, _ = parse_module(SECTION_2_MODULE)
    bad_sector = module.get_class("BadSector")
    dfa = determinize(behavior_nfa(bad_sector)).renumbered()
    claims = [parse_claim(text) for text in bad_sector.claims]
    text = emit_model(dfa, claims)
    head = "\n".join(text.splitlines()[:12])
    print(head)
    print(f"  ... ({len(text.splitlines())} lines total)")


def part_6_diagrams(output_dir: Path) -> list[Path]:
    from repro.core import ClassSpec, extract_dependency_graph
    from repro.frontend.parse import parse_module
    from repro.paper import SECTION_2_MODULE, SECTOR_MODULE
    from repro.viz import dependency_diagram, spec_diagram

    written = []
    module, _ = parse_module(SECTION_2_MODULE)
    valve_dot = output_dir / "figure1_valve.dot"
    valve_dot.write_text(spec_diagram(ClassSpec.of(module.get_class("Valve"))))
    written.append(valve_dot)

    sector_module, _ = parse_module(SECTOR_MODULE)
    sector_dot = output_dir / "figure3_sector_deps.dot"
    sector_dot.write_text(
        dependency_diagram(extract_dependency_graph(sector_module.get_class("Sector")))
    )
    written.append(sector_dot)
    return written


def main() -> int:
    sections = [
        ("1. Worked Examples 1-3 (Figure 4)", part_1_worked_examples),
        ("2. Bounded mechanization of the metatheory", part_2_metatheory),
        ("3. Method dependency extraction (Figure 3)", part_3_dependency_graph),
        ("4. Per-exit behavior extraction (BadSector)", part_4_per_exit_behaviors),
        ("5. NuSMV encoding (backend emission)", part_5_nusmv),
    ]
    for title, section in sections:
        print("=" * 72)
        print(title)
        print("=" * 72)
        section()
        print()

    print("=" * 72)
    print("6. DOT diagrams")
    print("=" * 72)
    for path in part_6_diagrams(Path(__file__).parent):
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
