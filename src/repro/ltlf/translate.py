"""LTLf → DFA translation by formula progression.

States are the (simplified) formulas reachable by :func:`progress`; a
state is accepting iff it satisfies the empty trace.  The construction
is exact for finite traces: the resulting DFA accepts a word iff the
word satisfies the formula under :mod:`repro.ltlf.semantics`.

The paper delegates its claims to NuSMV by re-encoding into ω-regular
form and names direct regular-language approaches as future work — this
module *is* that approach (substitution recorded in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.automata.dfa import DFA
from repro.ltlf.ast import Formula, atoms as formula_atoms, neg
from repro.ltlf.progression import accepts_empty, progress


class TranslationOverflowError(RuntimeError):
    """Raised when progression explores more states than allowed."""


def formula_to_dfa(
    formula: Formula,
    alphabet: Iterable[str] | None = None,
    max_states: int = 50_000,
) -> DFA:
    """A DFA over ``alphabet`` accepting exactly the models of ``formula``.

    ``alphabet`` must contain every atom of the formula; it defaults to
    exactly those atoms.  Events outside the atom set progress atoms to
    ``false`` like any other non-matching event, so enlarging the
    alphabet is how callers make the claim automaton observe the full
    event vocabulary of a class.
    """
    if alphabet is None:
        symbols = sorted(formula_atoms(formula))
    else:
        symbols = sorted(set(alphabet))
        missing = formula_atoms(formula) - set(symbols)
        if missing:
            raise ValueError(
                f"alphabet must contain the formula's atoms; missing {sorted(missing)}"
            )

    states: set[Formula] = {formula}
    transitions: dict[tuple[Formula, str], Formula] = {}
    accepting: set[Formula] = set()
    queue: deque[Formula] = deque([formula])
    while queue:
        state = queue.popleft()
        if accepts_empty(state):
            accepting.add(state)
        for symbol in symbols:
            successor = progress(state, symbol)
            transitions[(state, symbol)] = successor
            if successor not in states:
                states.add(successor)
                queue.append(successor)
                if len(states) > max_states:
                    raise TranslationOverflowError(
                        f"progression exceeded {max_states} states"
                    )
    return DFA(
        states=frozenset(states),
        alphabet=frozenset(symbols),
        transitions=transitions,
        initial_state=formula,
        accepting_states=frozenset(accepting),
    )


def negation_to_dfa(
    formula: Formula,
    alphabet: Iterable[str] | None = None,
    max_states: int = 50_000,
) -> DFA:
    """DFA of ``!formula`` — the violation language used by claim checking."""
    if alphabet is None:
        alphabet = sorted(formula_atoms(formula))
    return formula_to_dfa(neg(formula), alphabet, max_states)
