"""Hopcroft minimization: language preservation, minimality, canonicity."""

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.minimize import minimize
from repro.automata.thompson import thompson
from repro.regex.ast import concat, star, symbol, union
from repro.regex.parser import parse_regex

A = symbol("a")
B = symbol("b")


def redundant_dfa() -> DFA:
    """Two copies of the same accepting tail that must merge."""
    return DFA(
        states=frozenset({0, 1, 2, 3, 4}),
        alphabet=frozenset({"a", "b"}),
        transitions={
            (0, "a"): 1,
            (0, "b"): 2,
            (1, "a"): 3,
            (2, "a"): 4,
            (3, "a"): 3,
            (4, "a"): 4,
        },
        initial_state=0,
        accepting_states=frozenset({3, 4}),
    )


class TestMinimize:
    def test_language_preserved(self):
        dfa = redundant_dfa()
        small = minimize(dfa)
        for word in (
            [],
            ["a"],
            ["b"],
            ["a", "a"],
            ["b", "a"],
            ["a", "a", "a"],
            ["b", "a", "a"],
            ["a", "b"],
        ):
            assert dfa.accepts(word) == small.accepts(word)

    def test_merges_equivalent_states(self):
        # 1~2 and 3~4 merge; plus initial and dead state: 4 states total.
        small = minimize(redundant_dfa())
        assert len(small.states) == 4

    def test_canonical_across_equal_languages(self):
        # Two very different regexes for the same language minimize to
        # structurally identical DFAs.
        left = minimize(determinize(thompson(parse_regex("(a + b)*"))))
        right = minimize(
            determinize(thompson(parse_regex("(a* . b*)*")))
        )
        assert left.states == right.states
        assert left.transitions == right.transitions
        assert left.accepting_states == right.accepting_states

    def test_minimal_dfa_of_fixed_word(self):
        # "ab" needs exactly 4 total states (3 chain + dead).
        small = minimize(determinize(thompson(concat(A, B))))
        assert len(small.states) == 4

    def test_empty_language(self):
        small = minimize(determinize(thompson(concat(A, union(B, B) * A * A))))
        assert small.accepts(["a", "b", "a", "a"])

    def test_minimize_star(self):
        small = minimize(determinize(thompson(star(A))))
        assert small.accepts([])
        assert small.accepts(["a", "a", "a"])
        assert not small.accepts(["b"]) if "b" in small.alphabet else True

    def test_idempotent(self):
        once = minimize(redundant_dfa())
        twice = minimize(once)
        assert once.states == twice.states
        assert once.transitions == twice.transitions

    def test_all_accepting(self):
        dfa = DFA(
            states=frozenset({0}),
            alphabet=frozenset({"a"}),
            transitions={(0, "a"): 0},
            initial_state=0,
            accepting_states=frozenset({0}),
        )
        small = minimize(dfa)
        assert small.accepts([])
        assert small.accepts(["a", "a"])

    def test_nothing_accepting(self):
        dfa = DFA(
            states=frozenset({0}),
            alphabet=frozenset({"a"}),
            transitions={(0, "a"): 0},
            initial_state=0,
            accepting_states=frozenset(),
        )
        small = minimize(dfa)
        assert not small.accepts([])
        assert not small.accepts(["a"])
        assert len(small.states) == 1
