"""A simulated MicroPython ``machine`` module.

The paper's use case runs on a battery-operated valve controller; the
listings manipulate GPIO pins through MicroPython's ``machine.Pin`` API.
Real hardware is unavailable to this reproduction, so this module
provides a behavior-compatible simulation (substitution documented in
DESIGN.md): the same constructors and methods, backed by an in-memory
:class:`Board` that records every pin mutation in an inspectable event
log.  The examples run against it, and the tests assert on the log.

Only the slice of the API the listings and examples need is modelled:
``Pin`` (IN/OUT, value/on/off/toggle/irq), ``ADC`` (with a programmable
reading source), ``PWM``, and ``Signal`` (inverted pin).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Pin modes (MicroPython exposes these as ``Pin.IN``/``Pin.OUT``; the
#: paper's listings use bare ``IN``/``OUT`` names, so both are provided).
IN = 0
OUT = 1
OPEN_DRAIN = 2

#: IRQ trigger flags.
IRQ_RISING = 1
IRQ_FALLING = 2


@dataclass
class PinEvent:
    """One recorded pin mutation or read."""

    sequence: int
    pin: int
    action: str
    value: int

    def describe(self) -> str:
        return f"#{self.sequence} pin{self.pin} {self.action}={self.value}"


@dataclass
class Board:
    """The simulated board: pin levels plus a global event log."""

    levels: dict[int, int] = field(default_factory=dict)
    events: list[PinEvent] = field(default_factory=list)
    _sequence: "itertools.count[int]" = field(default_factory=itertools.count)
    #: External inputs: pin id -> callable producing the sampled level.
    input_sources: dict[int, Callable[[], int]] = field(default_factory=dict)

    def record(self, pin: int, action: str, value: int) -> None:
        self.events.append(
            PinEvent(
                sequence=next(self._sequence), pin=pin, action=action, value=value
            )
        )

    def set_level(self, pin: int, value: int, action: str = "write") -> None:
        self.levels[pin] = 1 if value else 0
        self.record(pin, action, self.levels[pin])

    def read_level(self, pin: int) -> int:
        source = self.input_sources.get(pin)
        if source is not None:
            self.levels[pin] = 1 if source() else 0
        return self.levels.get(pin, 0)

    def drive_input(self, pin: int, value: int) -> None:
        """Test/demo helper: force an input pin's level."""
        self.levels[pin] = 1 if value else 0
        self.record(pin, "drive", self.levels[pin])

    def reset(self) -> None:
        self.levels.clear()
        self.events.clear()
        self.input_sources.clear()
        self._sequence = itertools.count()

    def log(self) -> list[str]:
        return [event.describe() for event in self.events]


#: The default board every peripheral attaches to unless told otherwise.
_default_board = Board()


def default_board() -> Board:
    """The process-wide simulated board."""
    return _default_board


def reset_board() -> None:
    """Reset the default board (tests call this between cases)."""
    _default_board.reset()


class Pin:
    """Simulated ``machine.Pin``.

    >>> led = Pin(2, OUT)
    >>> led.on()
    >>> led.value()
    1
    """

    IN = IN
    OUT = OUT
    OPEN_DRAIN = OPEN_DRAIN
    IRQ_RISING = IRQ_RISING
    IRQ_FALLING = IRQ_FALLING

    def __init__(
        self,
        pin_id: int,
        mode: int = IN,
        *,
        value: int | None = None,
        board: Board | None = None,
    ):
        self.id = pin_id
        self.mode = mode
        self._board = board if board is not None else _default_board
        self._irq_handler: Callable[["Pin"], None] | None = None
        self._irq_trigger = 0
        if value is not None:
            self._board.set_level(pin_id, value, action="init")

    def value(self, new_value: int | None = None) -> int | None:
        """Read the pin level, or set it when an argument is given."""
        if new_value is None:
            level = self._board.read_level(self.id)
            self._board.record(self.id, "read", level)
            return level
        previous = self._board.levels.get(self.id, 0)
        self._board.set_level(self.id, new_value)
        self._fire_irq(previous, 1 if new_value else 0)
        return None

    def on(self) -> None:
        """Drive the pin high."""
        previous = self._board.levels.get(self.id, 0)
        self._board.set_level(self.id, 1, action="on")
        self._fire_irq(previous, 1)

    def off(self) -> None:
        """Drive the pin low."""
        previous = self._board.levels.get(self.id, 0)
        self._board.set_level(self.id, 0, action="off")
        self._fire_irq(previous, 0)

    def toggle(self) -> None:
        """Invert the pin level."""
        current = self._board.levels.get(self.id, 0)
        previous = current
        self._board.set_level(self.id, 1 - current, action="toggle")
        self._fire_irq(previous, 1 - current)

    def irq(
        self,
        handler: Callable[["Pin"], None],
        trigger: int = IRQ_RISING | IRQ_FALLING,
    ) -> None:
        """Install an edge-triggered interrupt handler (fired synchronously
        by the simulation on level changes)."""
        self._irq_handler = handler
        self._irq_trigger = trigger

    def _fire_irq(self, previous: int, current: int) -> None:
        if self._irq_handler is None or previous == current:
            return
        rising = current > previous
        if rising and self._irq_trigger & IRQ_RISING:
            self._irq_handler(self)
        elif not rising and self._irq_trigger & IRQ_FALLING:
            self._irq_handler(self)

    def __repr__(self) -> str:
        mode = {IN: "IN", OUT: "OUT", OPEN_DRAIN: "OPEN_DRAIN"}.get(self.mode, "?")
        return f"Pin({self.id}, {mode})"


class ADC:
    """Simulated ``machine.ADC``: 16-bit reads from a programmable source."""

    def __init__(self, pin: Pin | int, *, board: Board | None = None):
        self.id = pin.id if isinstance(pin, Pin) else pin
        self._board = board if board is not None else _default_board
        self._source: Callable[[], int] = lambda: 0

    def set_source(self, source: Callable[[], int]) -> None:
        """Install the synthetic signal the ADC samples (simulation hook)."""
        self._source = source

    def read_u16(self) -> int:
        """Sample the source, clamped to the 16-bit range."""
        raw = int(self._source())
        value = max(0, min(0xFFFF, raw))
        self._board.record(self.id, "adc", value)
        return value


class PWM:
    """Simulated ``machine.PWM``: stores frequency and duty, logs changes."""

    def __init__(self, pin: Pin, *, board: Board | None = None):
        self.pin = pin
        self._board = board if board is not None else _default_board
        self._freq = 0
        self._duty = 0

    def freq(self, value: int | None = None) -> int | None:
        if value is None:
            return self._freq
        self._freq = int(value)
        self._board.record(self.pin.id, "pwm_freq", self._freq)
        return None

    def duty_u16(self, value: int | None = None) -> int | None:
        if value is None:
            return self._duty
        self._duty = max(0, min(0xFFFF, int(value)))
        self._board.record(self.pin.id, "pwm_duty", self._duty)
        return None

    def deinit(self) -> None:
        self._duty = 0
        self._board.record(self.pin.id, "pwm_deinit", 0)


class Signal:
    """Simulated ``machine.Signal``: a pin with optional inversion."""

    def __init__(self, pin: Pin, *, invert: bool = False):
        self._pin = pin
        self._invert = invert

    def value(self, new_value: int | None = None) -> int | None:
        if new_value is None:
            raw = self._pin.value()
            assert raw is not None
            return 1 - raw if self._invert else raw
        level = (1 if new_value else 0) ^ (1 if self._invert else 0)
        self._pin.value(level)
        return None

    def on(self) -> None:
        if self._invert:
            self._pin.off()
        else:
            self._pin.on()

    def off(self) -> None:
        if self._invert:
            self._pin.on()
        else:
            self._pin.off()
