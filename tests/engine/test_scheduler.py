"""Wave scheduling over the subsystem dependency DAG."""

from repro.engine.scheduler import (
    prune_waves,
    schedule,
    subsystem_dependencies,
    topological_waves,
)
from repro.frontend.parse import parse_module
from repro.workloads.hierarchy import (
    HierarchyShape,
    layered_project_source,
    project_source,
)


class TestTopologicalWaves:
    def test_independent_classes_form_one_wave(self):
        waves = topological_waves(
            {"A": frozenset(), "B": frozenset(), "C": frozenset()}
        )
        assert waves == [("A", "B", "C")]

    def test_chain_forms_singleton_waves(self):
        waves = topological_waves(
            {"A": frozenset(), "B": frozenset("A"), "C": frozenset("B")}
        )
        assert waves == [("A",), ("B",), ("C",)]

    def test_diamond(self):
        waves = topological_waves(
            {
                "Base": frozenset(),
                "Left": frozenset({"Base"}),
                "Right": frozenset({"Base"}),
                "Top": frozenset({"Left", "Right"}),
            }
        )
        assert waves == [("Base",), ("Left", "Right"), ("Top",)]

    def test_cycle_becomes_trailing_wave(self):
        waves = topological_waves(
            {
                "Free": frozenset(),
                "A": frozenset({"B"}),
                "B": frozenset({"A"}),
            }
        )
        assert waves == [("Free",), ("A", "B")]

    def test_empty(self):
        assert topological_waves({}) == []


class TestPruneWaves:
    def test_preserves_wave_indices(self):
        waves = [("A", "B"), ("C",), ("D", "E")]
        assert prune_waves(waves, {"C", "E"}) == [(), ("C",), ("E",)]

    def test_empty_keep_empties_every_wave(self):
        assert prune_waves([("A",), ("B",)], set()) == [(), ()]

    def test_full_keep_is_identity(self):
        waves = [("A", "B"), ("C",)]
        assert prune_waves(waves, {"A", "B", "C"}) == waves


class TestCyclicModules:
    def test_mutually_dependent_classes_land_in_final_wave(self):
        # Two classes naming each other as subsystems: no topological
        # order exists, so both land together in the trailing wave —
        # the schedule stays total and the engine still checks them.
        source = (
            "@sys(['peer'])\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self.peer = B()\n"
            "    @op_initial_final\n"
            "    def run(self):\n"
            "        return []\n"
            "\n"
            "@sys(['peer'])\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self.peer = A()\n"
            "    @op_initial_final\n"
            "    def run(self):\n"
            "        return []\n"
        )
        module, _violations = parse_module(source)
        waves = schedule(module)
        assert waves[-1] == ("A", "B")

    def test_cycle_plus_free_class_keeps_free_class_first(self):
        source = (
            "@sys\n"
            "class Free:\n"
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        return []\n"
            "\n"
            "@sys(['peer'])\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self.peer = B()\n"
            "    @op_initial_final\n"
            "    def run(self):\n"
            "        return []\n"
            "\n"
            "@sys(['peer'])\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self.peer = A()\n"
            "    @op_initial_final\n"
            "    def run(self):\n"
            "        return []\n"
        )
        module, _violations = parse_module(source)
        assert schedule(module) == [("Free",), ("A", "B")]


class TestModuleScheduling:
    def test_wide_project_is_two_waves(self):
        shape = HierarchyShape(base_operations=3, subsystems=2)
        module, _violations = parse_module(project_source(shape, pairs=3))
        waves = schedule(module)
        assert waves == [
            ("Device0", "Device1", "Device2"),
            ("Controller0", "Controller1", "Controller2"),
        ]

    def test_layered_project_is_a_path(self):
        shape = HierarchyShape(base_operations=3)
        module, _violations = parse_module(layered_project_source(shape, depth=3))
        assert schedule(module) == [
            ("Layer0",),
            ("Layer1",),
            ("Layer2",),
            ("Layer3",),
        ]

    def test_external_dependencies_ignored(self):
        module, _violations = parse_module(
            "@sys(['a'])\n"
            "class Lonely:\n"
            "    def __init__(self):\n"
            "        self.a = NotInThisModule()\n"
            "    @op_initial_final\n"
            "    def run(self):\n"
            "        return []\n"
        )
        assert subsystem_dependencies(module) == {"Lonely": frozenset()}
        assert schedule(module) == [("Lonely",)]
