"""The trace-corpus collector."""

import pytest

from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.mine.api import load_implementations
from repro.mine.collect import (
    CollectConfig,
    collect_corpus,
    random_lifecycles,
    transition_coverage,
)
from repro.mine.corpus import KIND_COVER, KIND_RANDOM
from repro.workloads.hierarchy import HierarchyShape, module_source

SHAPE = HierarchyShape(
    base_operations=3, subsystems=2, composite_operations=2, seed=21
)


@pytest.fixture()
def device():
    source = module_source(SHAPE, correct=True)
    module, _violations = parse_module(source)
    implementations = load_implementations(source)
    spec = ClassSpec.of(module.get_class("Device"))
    return implementations["Device"], spec


class TestCollect:
    def test_same_seed_same_corpus(self, device):
        implementation, spec = device
        config = CollectConfig(seed=77, random_runs=12)
        first = collect_corpus(implementation, spec, config=config)
        second = collect_corpus(implementation, spec, config=config)
        assert first.to_payload() == second.to_payload()

    def test_different_seeds_differ(self, device):
        implementation, spec = device
        first = collect_corpus(
            implementation, spec, config=CollectConfig(seed=1, random_runs=16)
        )
        second = collect_corpus(
            implementation, spec, config=CollectConfig(seed=2, random_runs=16)
        )
        assert first.to_payload() != second.to_payload()

    def test_covering_suite_gives_full_coverage(self, device):
        implementation, spec = device
        corpus = collect_corpus(
            implementation, spec, config=CollectConfig(random_runs=0)
        )
        assert transition_coverage(spec, corpus) == 1.0
        assert all(sample.kind == KIND_COVER for sample in corpus)
        assert not corpus.notes

    def test_evidence_probes_every_prefix(self, device):
        implementation, spec = device
        corpus = collect_corpus(
            implementation, spec, config=CollectConfig(random_runs=4)
        )
        for sample in corpus:
            assert len(sample.evidence) == len(sample.word) + 1
            if sample.completed:
                assert sample.evidence[-1].final is True
        kinds = {sample.kind for sample in corpus}
        assert kinds == {KIND_COVER, KIND_RANDOM}

    def test_recorder_detached_after_collection(self, device):
        from repro.runtime.monitor import _RECORDER_ATTR, monitored

        implementation, spec = device
        wrapped = monitored(implementation, spec=spec)
        collect_corpus(implementation, spec, config=CollectConfig(random_runs=2))
        assert getattr(wrapped, _RECORDER_ATTR) is None

    def test_spec_mismatch_recorded_as_note(self):
        """A conformance fault mid-collection becomes a corpus note, not
        a crash — the run is truncated and mining continues."""
        declared = '''
from repro.frontend.decorators import sys, op_initial_final

@sys
class Liar:
    @op_initial_final
    def go(self):
        return []
'''
        module, _violations = parse_module(declared)
        spec = ClassSpec.of(module.get_class("Liar"))

        class LiarImpl:
            def go(self):
                return ["undeclared"]

        corpus = collect_corpus(
            LiarImpl, spec, config=CollectConfig(random_runs=2)
        )
        assert corpus.notes
        assert "spec mismatch" in corpus.notes[0]

    def test_crashing_operation_recorded_as_note(self):
        declared = '''
from repro.frontend.decorators import sys, op_initial_final

@sys
class Boom:
    @op_initial_final
    def go(self):
        return []
'''
        module, _violations = parse_module(declared)
        spec = ClassSpec.of(module.get_class("Boom"))

        class BoomImpl:
            def go(self):
                raise RuntimeError("hardware gone")

        corpus = collect_corpus(
            BoomImpl, spec, config=CollectConfig(random_runs=1)
        )
        assert any("crash in go" in note for note in corpus.notes)
        # The crashed call never reached the recorder: no word contains it.
        assert all(sample.word == () for sample in corpus)


class TestRandomLifecycles:
    def test_seeded_walks_deterministic(self, device):
        import random

        _implementation, spec = device
        first = random_lifecycles(spec, random.Random(5), runs=20, max_len=8)
        second = random_lifecycles(spec, random.Random(5), runs=20, max_len=8)
        assert first == second

    def test_walks_stay_in_spec_language(self, device):
        import random

        _implementation, spec = device
        dfa = spec.dfa()
        for word in random_lifecycles(spec, random.Random(3), runs=30, max_len=10):
            state = dfa.initial_state
            for symbol in word:
                state = dfa.successor(state, symbol)
                assert state is not None, word
