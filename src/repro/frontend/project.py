"""Multi-file projects: parse and merge every module of a directory.

Real controllers split their classes across files (drivers in one,
controllers in another); cross-file composition must still resolve —
``Sector`` in ``controller.py`` may use ``Valve`` from ``drivers.py``.
This module walks a directory, parses every ``*.py`` file, and merges
the results into one :class:`ParsedModule` whose class namespace spans
the project (duplicate class names across files are reported).
"""

from __future__ import annotations

from pathlib import Path

from repro.frontend.model_ast import (
    FrontendError,
    ParsedClass,
    ParsedModule,
    SubsetViolation,
)
from repro.frontend.parse import parse_file


def project_files(root: str | Path) -> list[Path]:
    """The Python files of a project directory, deterministically ordered.

    Hidden directories and common non-source trees (``__pycache__``,
    ``.git``, ``venv``-likes) are skipped.
    """
    root = Path(root)
    skipped_directories = {"__pycache__", ".git", ".hg", "venv", ".venv", "node_modules"}
    files = [
        path
        for path in sorted(root.rglob("*.py"))
        if not any(
            part.startswith(".") or part in skipped_directories
            for part in path.relative_to(root).parts[:-1]
        )
        and not path.name.startswith(".")
    ]
    return files


def parse_project(root: str | Path) -> tuple[ParsedModule, list[SubsetViolation]]:
    """Parse every module under ``root`` and merge the ``@sys`` classes.

    Syntax errors in individual files become ``syntax-error`` violations
    rather than aborting the whole project; duplicate class names
    produce a ``duplicate-class`` violation and the *first* definition
    (in path order) wins.
    """
    root = Path(root)
    if not root.is_dir():
        raise NotADirectoryError(f"not a directory: {root}")
    merged_classes: list[ParsedClass] = []
    seen: dict[str, str] = {}
    violations: list[SubsetViolation] = []
    for path in project_files(root):
        try:
            module, file_violations = parse_file(path)
        except FrontendError as error:
            violations.extend(error.violations)
            continue
        violations.extend(file_violations)
        for parsed in module.classes:
            if parsed.name in seen:
                violations.append(
                    SubsetViolation(
                        code="duplicate-class",
                        message=(
                            f"@sys class {parsed.name} defined in both "
                            f"{seen[parsed.name]} and {path}"
                        ),
                        lineno=parsed.lineno,
                        class_name=parsed.name,
                    )
                )
                continue
            seen[parsed.name] = str(path)
            merged_classes.append(parsed)
    return (
        ParsedModule(classes=tuple(merged_classes), source_name=str(root)),
        violations,
    )


def check_project(root: str | Path):
    """Parse and verify a whole project directory."""
    from repro.core.checker import Checker

    module, violations = parse_project(root)
    return Checker(module, violations).check()
