"""LTLf formula constructors and their simplification laws."""

import pytest

from repro.ltlf.ast import (
    FALSE,
    TRUE,
    Globally,
    Next,
    Not,
    Until,
    WeakUntil,
    atom,
    atoms,
    conj,
    disj,
    format_formula,
    implies,
    neg,
)

A = atom("a.open")
B = atom("b.open")
C = atom("c")


class TestNeg:
    def test_double_negation(self):
        assert neg(neg(A)) == A

    def test_constants(self):
        assert neg(TRUE) is FALSE
        assert neg(FALSE) is TRUE

    def test_builds_not(self):
        assert neg(A) == Not(A)


class TestConj:
    def test_empty_is_true(self):
        assert conj([]) is TRUE

    def test_true_dropped(self):
        assert conj([TRUE, A]) == A

    def test_false_absorbs(self):
        assert conj([A, FALSE, B]) is FALSE

    def test_flattening(self):
        assert conj([A, conj([B, C])]) == conj([A, B, C])

    def test_dedupe(self):
        assert conj([A, A]) == A

    def test_contradiction_collapses(self):
        assert conj([A, neg(A)]) is FALSE

    def test_order_canonical(self):
        assert conj([A, B]) == conj([B, A])


class TestDisj:
    def test_empty_is_false(self):
        assert disj([]) is FALSE

    def test_false_dropped(self):
        assert disj([FALSE, A]) == A

    def test_true_absorbs(self):
        assert disj([A, TRUE]) is TRUE

    def test_tautology_collapses(self):
        assert disj([A, neg(A)]) is TRUE

    def test_flatten_and_sort(self):
        assert disj([disj([B, A]), C]) == disj([C, B, A])


class TestHelpers:
    def test_implies_encoding(self):
        assert implies(A, B) == disj([neg(A), B])

    def test_atoms_collects_all(self):
        formula = WeakUntil(neg(A), Until(B, Globally(C)))
        assert atoms(formula) == {"a.open", "b.open", "c"}

    def test_atom_requires_name(self):
        with pytest.raises(ValueError):
            atom("")


class TestFormat:
    def test_paper_claim(self):
        formula = WeakUntil(neg(A), B)
        assert format_formula(formula) == "!a.open W b.open"

    def test_nested_temporal_parenthesised(self):
        formula = Until(Until(A, B), C)
        assert format_formula(formula) == "(a.open U b.open) U c"

    def test_and_or_precedence(self):
        formula = disj([conj([A, B]), C])
        text = format_formula(formula)
        # Any reconstruction must keep & tighter than |.
        assert "&" in text and "|" in text

    def test_next_variants(self):
        assert format_formula(Next(A)) == "X a.open"
        from repro.ltlf.ast import WeakNext

        assert format_formula(WeakNext(A)) == "X[w] a.open"
