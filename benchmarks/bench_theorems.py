"""Theorems 1–2 and Corollary 1 — the executable metatheory.

The paper proves these in Coq; this harness bounded-model-checks the
same statements over the exhaustive program space (every program of the
bare calculus up to a size bound) and times each check.  A larger space
than the unit tests use (size 5, 852 programs) is exercised here.
"""

import pytest

from repro.lang.generator import all_programs, count_programs
from repro.lang.metatheory import check_theorem, theorem_names

SIZE = 5
TRACE_LENGTH = 5


@pytest.fixture(scope="module")
def program_space():
    return list(all_programs(SIZE, ("a", "b")))


@pytest.mark.parametrize("name", theorem_names())
def test_theorem_holds_on_exhaustive_space(benchmark, name, program_space):
    def run():
        return check_theorem(
            name,
            max_program_size=SIZE,
            max_trace_length=TRACE_LENGTH,
            programs=program_space,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.holds, report.summary()
    assert report.programs_checked == len(program_space)
    print(f"\n{report.summary()}")


def test_program_space_size():
    """Document the size of the space the theorems were checked on."""
    assert count_programs(SIZE, ("a", "b")) == 852
