"""Shortest-word extraction (counterexample machinery)."""

from repro.automata.determinize import determinize
from repro.automata.shortest import (
    iter_accepted_words,
    shortest_accepted_word,
    shortest_accepted_word_nfa,
)
from repro.automata.thompson import thompson
from repro.regex.parser import parse_regex

ALPHABET = frozenset({"a", "b"})


def dfa_of(text: str):
    return determinize(thompson(parse_regex(text), ALPHABET))


class TestShortestDfa:
    def test_empty_word_when_initial_accepting(self):
        assert shortest_accepted_word(dfa_of("a*")) == ()

    def test_none_for_empty_language(self):
        assert shortest_accepted_word(dfa_of("{}")) is None

    def test_shortest_length(self):
        assert shortest_accepted_word(dfa_of("a . a . a + b . b")) == ("b", "b")

    def test_alphabetical_tie_break(self):
        assert shortest_accepted_word(dfa_of("b + a")) == ("a",)

    def test_long_chain(self):
        assert shortest_accepted_word(dfa_of("a . b . a . b")) == ("a", "b", "a", "b")


class TestShortestNfa:
    def test_matches_dfa_result(self):
        nfa = thompson(parse_regex("a . a + b"), ALPHABET)
        assert shortest_accepted_word_nfa(nfa) == ("b",)

    def test_empty_language(self):
        nfa = thompson(parse_regex("{}"), ALPHABET)
        assert shortest_accepted_word_nfa(nfa) is None

    def test_epsilon(self):
        nfa = thompson(parse_regex("eps"), ALPHABET)
        assert shortest_accepted_word_nfa(nfa) == ()


class TestIterAcceptedWords:
    def test_enumerates_in_length_lex_order(self):
        words = list(iter_accepted_words(dfa_of("a* . b"), 3))
        assert words == [
            ("b",),
            ("a", "b"),
            ("a", "a", "b"),
        ]

    def test_respects_bound(self):
        words = list(iter_accepted_words(dfa_of("a*"), 2))
        assert words == [(), ("a",), ("a", "a")]
