"""Admission control and per-tenant fair scheduling.

The queue is the daemon's backpressure boundary: its depth is **bounded**
(``queue_depth``), and a submission past the bound — or past a tenant's
own queued-job cap — is rejected *explicitly* with a structured
:class:`AdmissionError` carrying a machine-readable reason and a
retry-after hint.  Nothing is ever silently dropped: every job the
queue accepts is eventually dispatched or checkpointed.

Scheduling is **round-robin across tenants** (not FIFO across jobs): the
dispatcher asks :meth:`AdmissionQueue.take` for the next job, and the
queue rotates through tenants in sorted cyclic order, skipping tenants
at their concurrency cap.  A tenant with a hundred queued jobs and a
tenant with one therefore alternate, and a tenant whose jobs are slow
(occupying its concurrency slots) cannot starve the rest.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

from repro.serve.jobs import Job

#: Machine-readable rejection reasons (HTTP layer maps them to status
#: codes; metrics count them per reason).
REASON_QUEUE_FULL = "queue-full"
REASON_TENANT_LIMIT = "tenant-limit"
REASON_DRAINING = "draining"
REASON_BREAKER_OPEN = "breaker-open"


class AdmissionError(Exception):
    """An explicit load-shedding rejection (never a silent drop)."""

    def __init__(self, reason: str, message: str, retry_after: float):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class AdmissionQueue:
    """Bounded multi-tenant job queue with round-robin fair draining."""

    def __init__(self, depth: int, tenant_cap: int):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if tenant_cap < 1:
            raise ValueError(f"tenant cap must be >= 1, got {tenant_cap}")
        self.depth = depth
        self.tenant_cap = tenant_cap
        self._pending: dict[str, deque[Job]] = {}
        self._size = 0
        #: Cyclic fairness pointer: the tenant served last.
        self._last_tenant: str | None = None

    def __len__(self) -> int:
        return self._size

    @property
    def saturated(self) -> bool:
        return self._size >= self.depth

    def tenant_depth(self, tenant: str) -> int:
        bucket = self._pending.get(tenant)
        return len(bucket) if bucket else 0

    def depths(self) -> dict[str, int]:
        return {
            tenant: len(bucket)
            for tenant, bucket in sorted(self._pending.items())
            if bucket
        }

    # -- admission -----------------------------------------------------

    def submit(self, job: Job, retry_after: float) -> None:
        """Admit ``job`` or raise a structured :class:`AdmissionError`."""
        if self._size >= self.depth:
            raise AdmissionError(
                REASON_QUEUE_FULL,
                f"queue full ({self._size}/{self.depth} jobs queued)",
                retry_after,
            )
        if self.tenant_depth(job.tenant) >= self.tenant_cap:
            raise AdmissionError(
                REASON_TENANT_LIMIT,
                f"tenant {job.tenant!r} already has "
                f"{self.tenant_depth(job.tenant)} queued job(s) "
                f"(cap {self.tenant_cap})",
                retry_after,
            )
        self._pending.setdefault(job.tenant, deque()).append(job)
        self._size += 1

    def restore(self, job: Job, *, front: bool = False) -> None:
        """Re-enqueue without admission checks (recovery and crash
        retries re-insert jobs that were already admitted once)."""
        bucket = self._pending.setdefault(job.tenant, deque())
        if front:
            bucket.appendleft(job)
        else:
            bucket.append(job)
        self._size += 1

    # -- fair draining -------------------------------------------------

    def take(
        self,
        active_per_tenant: Mapping[str, int] | None = None,
        tenant_concurrency: int | None = None,
    ) -> Job | None:
        """The next job, round-robin across tenants; ``None`` when every
        pending tenant is at its concurrency cap (or nothing pends)."""
        active = active_per_tenant or {}
        tenants = sorted(
            tenant for tenant, bucket in self._pending.items() if bucket
        )
        if not tenants:
            return None
        eligible = [
            tenant
            for tenant in tenants
            if tenant_concurrency is None
            or active.get(tenant, 0) < tenant_concurrency
        ]
        if not eligible:
            return None
        # Start strictly after the last-served tenant, cyclically.
        chosen = eligible[0]
        if self._last_tenant is not None:
            for tenant in eligible:
                if tenant > self._last_tenant:
                    chosen = tenant
                    break
        self._last_tenant = chosen
        bucket = self._pending[chosen]
        job = bucket.popleft()
        if not bucket:
            del self._pending[chosen]
        self._size -= 1
        return job

    def drain_all(self) -> list[Job]:
        """Remove and return every queued job (shutdown checkpointing)."""
        jobs: list[Job] = []
        for tenant in sorted(self._pending):
            jobs.extend(self._pending[tenant])
        self._pending.clear()
        self._size = 0
        return jobs
