"""A greenhouse climate controller: a three-level class hierarchy with
temporal claims, sensor-driven branching, and a deliberately buggy
variant that the checker rejects.

The hierarchy (each level is a constrained ``@sys`` class):

    Heater, Fan          base classes over simulated pins/PWM
    ClimateZone          composite: one heater + one fan per zone
    Greenhouse           composite of composites: two zones

Demonstrated features beyond the quickstart:

* hierarchical composition (a composite used as a subsystem);
* ``@claim`` with response (``G (x -> F y)``) and ordering (``W``) shapes;
* the ``match``-exhaustiveness analysis (ClimateZone handles every exit
  of ``Heater.check``);
* a buggy sibling (``LeakyZone``) whose verdict shows the counterexample.

Run with::

    python examples/greenhouse_monitor.py
"""

from repro.frontend.decorators import claim, op, op_final, op_initial, op_initial_final, sys
from repro.micropython.machine import ADC, OUT, PWM, Pin


@sys
class Heater:
    """A heating element: arm, then fire or stand down, then disarm."""

    def __init__(self, pin_id: int, sense_pin: int):
        self.element = Pin(pin_id, OUT)
        self.sensor = ADC(sense_pin)

    @op_initial
    def check(self):
        if self.sensor.read_u16() < 20_000:
            return ["heat"]
        else:
            return ["standby"]

    @op
    def heat(self):
        self.element.on()
        return ["stop"]

    @op_final
    def stop(self):
        self.element.off()
        return ["check"]

    @op_final
    def standby(self):
        return ["check"]


@sys
class Fan:
    """A PWM fan: spin up, run, spin down."""

    def __init__(self, pin_id: int):
        self.pwm = PWM(Pin(pin_id, OUT))

    @op_initial
    def spin_up(self):
        self.pwm.freq(25_000)
        self.pwm.duty_u16(40_000)
        return ["spin_down"]

    @op_final
    def spin_down(self):
        self.pwm.duty_u16(0)
        return ["spin_up"]


@claim("G (h.heat -> F h.stop)")
@claim("(!h.heat) W f.spin_up")
@sys(["h", "f"])
class ClimateZone:
    """One zone: the fan must run before and while the heater fires."""

    def __init__(self, heater_pin: int, sense_pin: int, fan_pin: int):
        self.h = Heater(heater_pin, sense_pin)
        self.f = Fan(fan_pin)

    @op_initial_final
    def regulate(self):
        self.f.spin_up()
        match self.h.check():
            case ["heat"]:
                self.h.heat()
                self.h.stop()
                self.f.spin_down()
                return ["regulate"], True
            case ["standby"]:
                self.h.standby()
                self.f.spin_down()
                return ["regulate"], False


@claim("G (north.regulate -> F south.regulate)")
@sys(["north", "south"])
class Greenhouse:
    """Two zones regulated in tandem; a composite of composites."""

    def __init__(self):
        self.north = ClimateZone(5, 26, 6)
        self.south = ClimateZone(7, 27, 8)

    @op_initial_final
    def cycle(self):
        self.north.regulate()
        self.south.regulate()
        return ["cycle"]


#: The buggy sibling, kept in a separate source string so the healthy
#: module above verifies clean.  The fan is never spun down on the
#: standby path — the checker pinpoints it.
LEAKY_ZONE = '''
@sys
class Heater:
    @op_initial
    def check(self):
        if low:
            return ["heat"]
        else:
            return ["standby"]
    @op
    def heat(self):
        return ["stop"]
    @op_final
    def stop(self):
        return ["check"]
    @op_final
    def standby(self):
        return ["check"]

@sys
class Fan:
    @op_initial
    def spin_up(self):
        return ["spin_down"]
    @op_final
    def spin_down(self):
        return ["spin_up"]

@sys(["h", "f"])
class LeakyZone:
    def __init__(self):
        self.h = Heater()
        self.f = Fan()

    @op_initial_final
    def regulate(self):
        self.f.spin_up()
        match self.h.check():
            case ["heat"]:
                self.h.heat()
                self.h.stop()
                self.f.spin_down()
                return []
            case ["standby"]:
                self.h.standby()
                return []
'''


def main() -> int:
    from repro.core.checker import check_path, check_source

    print("=" * 72)
    print("1. Verifying the greenhouse hierarchy (this file)")
    print("=" * 72)
    result = check_path(__file__)
    print(result.format())
    if not result.ok:
        return 1

    print()
    print("=" * 72)
    print("2. Verifying the buggy variant (fan left spinning)")
    print("=" * 72)
    leaky = check_source(LEAKY_ZONE)
    print(leaky.format())
    if leaky.ok:
        return 1

    print()
    print("=" * 72)
    print("3. One simulated regulation cycle")
    print("=" * 72)
    from repro.micropython.machine import default_board, reset_board

    reset_board()
    greenhouse = Greenhouse()
    # North is cold (needs heat), south is warm.
    greenhouse.north.h.sensor.set_source(lambda: 5_000)
    greenhouse.south.h.sensor.set_source(lambda: 30_000)
    greenhouse.cycle()
    print("pin event log:")
    for line in default_board().log():
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
