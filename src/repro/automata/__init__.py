"""Finite-automata library backing the checker.

Pipeline pieces:

* :class:`NFA` / :class:`NFABuilder` and :class:`DFA` — representations,
* :func:`determinize` — subset construction,
* :func:`minimize` — Hopcroft minimization (canonical DFAs),
* :func:`intersection` / :func:`difference` — products,
* :func:`included` / :func:`equivalent` / counterexample extraction,
* :func:`lift_alphabet` / :func:`project_nfa` — the projection pair used
  by the subsystem-usage check,
* :func:`thompson` / :func:`nfa_to_regex` — regex ↔ automaton round trip
  (Corollary 1),
* :mod:`repro.automata.kernel` — the integer-interned bitset kernel (the
  default engine behind the checker; this package stays the reference
  oracle, see docs/kernel.md).
"""

from repro.automata import kernel
from repro.automata.determinize import determinize
from repro.automata.dfa import DEAD_STATE, DFA
from repro.automata.minimize import minimize
from repro.automata.nfa import (
    NFA,
    NFABuilder,
    empty_language_nfa,
    epsilon_language_nfa,
)
from repro.automata.operations import (
    concat_nfa,
    equivalence_counterexample,
    equivalent,
    included,
    inclusion_counterexample,
    is_empty,
    lift_alphabet,
    nfa_included,
    project_nfa,
    union_nfa,
    with_alphabet,
)
from repro.automata.product import difference, intersection, symmetric_difference
from repro.automata.shortest import (
    iter_accepted_words,
    shortest_accepted_word,
    shortest_accepted_word_nfa,
)
from repro.automata.thompson import regex_to_dfa, thompson
from repro.automata.to_regex import nfa_to_regex

__all__ = [
    "DEAD_STATE",
    "DFA",
    "NFA",
    "NFABuilder",
    "concat_nfa",
    "determinize",
    "difference",
    "empty_language_nfa",
    "epsilon_language_nfa",
    "equivalence_counterexample",
    "equivalent",
    "included",
    "inclusion_counterexample",
    "intersection",
    "is_empty",
    "iter_accepted_words",
    "kernel",
    "lift_alphabet",
    "minimize",
    "nfa_included",
    "nfa_to_regex",
    "project_nfa",
    "regex_to_dfa",
    "shortest_accepted_word",
    "shortest_accepted_word_nfa",
    "symmetric_difference",
    "thompson",
    "union_nfa",
    "with_alphabet",
]
