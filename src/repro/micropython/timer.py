"""Simulated MicroPython time utilities with a virtual clock.

Real controllers sleep between irrigation slots; the simulation keeps a
monotonically advancing *virtual* clock so examples run instantly and
deterministically while still exercising time-dependent control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class VirtualClock:
    """A virtual millisecond clock that only moves when told to."""

    now_ms: int = 0
    _alarms: list[tuple[int, Callable[[], None]]] = field(default_factory=list)

    def sleep_ms(self, duration: int) -> None:
        """Advance the clock, firing any alarms that come due (in order)."""
        if duration < 0:
            raise ValueError("cannot sleep a negative duration")
        target = self.now_ms + duration
        while True:
            due = [alarm for alarm in self._alarms if alarm[0] <= target]
            if not due:
                break
            due.sort(key=lambda alarm: alarm[0])
            when, callback = due[0]
            self._alarms.remove((when, callback))
            self.now_ms = max(self.now_ms, when)
            callback()
        self.now_ms = target

    def sleep(self, seconds: float) -> None:
        self.sleep_ms(int(seconds * 1000))

    def ticks_ms(self) -> int:
        return self.now_ms

    def schedule(self, delay_ms: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the clock passes ``now + delay_ms``."""
        self._alarms.append((self.now_ms + delay_ms, callback))

    def reset(self) -> None:
        self.now_ms = 0
        self._alarms.clear()


#: Process-wide clock mirroring the process-wide board.
_default_clock = VirtualClock()


def default_clock() -> VirtualClock:
    return _default_clock


def reset_clock() -> None:
    _default_clock.reset()


def sleep_ms(duration: int) -> None:
    """Module-level ``time.sleep_ms`` equivalent on the default clock."""
    _default_clock.sleep_ms(duration)


def sleep(seconds: float) -> None:
    """Module-level ``time.sleep`` equivalent on the default clock."""
    _default_clock.sleep(seconds)


def ticks_ms() -> int:
    """Module-level ``time.ticks_ms`` equivalent on the default clock."""
    return _default_clock.ticks_ms()


def ticks_diff(end: int, start: int) -> int:
    """MicroPython's ``time.ticks_diff`` (no wraparound in simulation)."""
    return end - start


class Timer:
    """Simulated ``machine.Timer`` in one-shot or periodic mode.

    Periodic timers re-arm themselves each time they fire; they fire
    while the virtual clock advances through :func:`sleep_ms`.
    """

    ONE_SHOT = 0
    PERIODIC = 1

    def __init__(self, timer_id: int = -1, *, clock: VirtualClock | None = None):
        self.id = timer_id
        self._clock = clock if clock is not None else _default_clock
        self._active = False
        self._period = 0
        self._mode = Timer.ONE_SHOT
        self._callback: Callable[["Timer"], None] | None = None

    def init(
        self,
        *,
        period: int,
        mode: int = PERIODIC,
        callback: Callable[["Timer"], None],
    ) -> None:
        self._period = period
        self._mode = mode
        self._callback = callback
        self._active = True
        self._arm()

    def _arm(self) -> None:
        def fire() -> None:
            if not self._active or self._callback is None:
                return
            self._callback(self)
            if self._mode == Timer.PERIODIC and self._active:
                self._arm()

        self._clock.schedule(self._period, fire)

    def deinit(self) -> None:
        self._active = False
