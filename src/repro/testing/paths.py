"""Path generation over specification automata.

Model-based testing needs *words with shape*: for every transition of
the (determinized, trimmed) specification automaton, an accepted word
that exercises it.  This module computes

* :func:`shortest_prefixes` — a BFS tree of shortest words reaching each
  state,
* :func:`shortest_suffixes` — shortest words completing each state to
  acceptance (backward BFS),
* :func:`transition_cover` — one accepted word per transition
  (prefix · symbol · suffix), deduplicated and deterministic.

All words are *accepted* by the automaton, so for a class specification
they are complete, valid lifecycles.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA, State


def shortest_prefixes(dfa: DFA) -> dict[State, tuple[str, ...]]:
    """Shortest word from the initial state to each reachable state."""
    prefixes: dict[State, tuple[str, ...]] = {dfa.initial_state: ()}
    queue = deque([dfa.initial_state])
    while queue:
        state = queue.popleft()
        for symbol in sorted(dfa.alphabet):
            successor = dfa.successor(state, symbol)
            if successor is not None and successor not in prefixes:
                prefixes[successor] = prefixes[state] + (symbol,)
                queue.append(successor)
    return prefixes


def shortest_suffixes(dfa: DFA) -> dict[State, tuple[str, ...]]:
    """Shortest word from each state to *some* accepting state.

    States that cannot reach acceptance (dead states) are absent from
    the result.  Computed by backward BFS over the reversed automaton.
    """
    # Build the reverse adjacency once.
    reverse: dict[State, list[tuple[State, str]]] = {}
    for (source, symbol), target in dfa.transitions.items():
        reverse.setdefault(target, []).append((source, symbol))

    suffixes: dict[State, tuple[str, ...]] = {
        state: () for state in dfa.accepting_states
    }
    queue = deque(sorted(dfa.accepting_states, key=str))
    while queue:
        state = queue.popleft()
        for source, symbol in sorted(
            reverse.get(state, ()), key=lambda pair: (str(pair[0]), pair[1])
        ):
            if source not in suffixes:
                suffixes[source] = (symbol,) + suffixes[state]
                queue.append(source)
    return suffixes


def transition_cover(dfa: DFA) -> list[tuple[str, ...]]:
    """One accepted word per *live* transition.

    A transition ``(s, a) -> t`` is live when ``s`` is reachable and
    ``t`` co-reaches acceptance; the covering word is
    ``prefix(s) · a · suffix(t)``.  Duplicates (one word often covers
    several transitions) are removed; order is deterministic (sorted by
    word), so suites are stable across runs.
    """
    prefixes = shortest_prefixes(dfa)
    suffixes = shortest_suffixes(dfa)
    words: set[tuple[str, ...]] = set()
    for (source, symbol), target in dfa.transitions.items():
        if source not in prefixes or target not in suffixes:
            continue
        word = prefixes[source] + (symbol,) + suffixes[target]
        words.add(word)
    # The empty lifecycle is part of every spec language (never-used
    # instance); include it when accepted so suites exercise finalize-
    # without-calls too.
    if dfa.initial_state in dfa.accepting_states:
        words.add(())
    for word in words:
        assert dfa.accepts(word), word
    return sorted(words, key=lambda w: (len(w), w))


def state_cover(dfa: DFA) -> list[tuple[str, ...]]:
    """One accepted word visiting each live state (smaller than a
    transition cover; useful as a smoke suite)."""
    prefixes = shortest_prefixes(dfa)
    suffixes = shortest_suffixes(dfa)
    words = {
        prefixes[state] + suffixes[state]
        for state in prefixes
        if state in suffixes
    }
    return sorted(words, key=lambda w: (len(w), w))
