"""LTLf claims: syntax, finite-trace semantics, progression, DFA translation.

The ``@claim`` annotation of Table 1 carries a formula in this logic;
:mod:`repro.core.claims` checks it against every trace of the annotated
class by intersecting the class behavior with the DFA of the negated
formula.
"""

from repro.ltlf.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Eventually,
    Formula,
    Globally,
    Next,
    Not,
    Or,
    Release,
    Top,
    Until,
    WeakNext,
    WeakUntil,
    atom,
    atoms,
    conj,
    disj,
    format_formula,
    implies,
    neg,
)
from repro.ltlf.parser import ClaimSyntaxError, parse_claim
from repro.ltlf.progression import (
    accepts_empty,
    progress,
    progress_trace,
    satisfies_by_progression,
)
from repro.ltlf.semantics import evaluate
from repro.ltlf.patterns import (
    absence,
    alternation,
    bounded_existence,
    existence,
    never_adjacent,
    precedence,
    response,
    succession,
    universality,
)
from repro.ltlf.to_regex import formula_to_regex, violation_regex
from repro.ltlf.translate import (
    TranslationOverflowError,
    formula_to_dfa,
    negation_to_dfa,
)

__all__ = [
    "And",
    "Atom",
    "Bottom",
    "ClaimSyntaxError",
    "Eventually",
    "FALSE",
    "Formula",
    "Globally",
    "Next",
    "Not",
    "Or",
    "Release",
    "TRUE",
    "Top",
    "TranslationOverflowError",
    "Until",
    "WeakNext",
    "WeakUntil",
    "absence",
    "accepts_empty",
    "alternation",
    "atom",
    "bounded_existence",
    "atoms",
    "conj",
    "disj",
    "evaluate",
    "existence",
    "format_formula",
    "formula_to_dfa",
    "formula_to_regex",
    "implies",
    "neg",
    "never_adjacent",
    "negation_to_dfa",
    "parse_claim",
    "precedence",
    "progress",
    "progress_trace",
    "response",
    "satisfies_by_progression",
    "succession",
    "universality",
    "violation_regex",
]
