"""Text twins of the diagrams."""

from repro.core.dependency import extract_dependency_graph
from repro.core.spec import ClassSpec
from repro.viz.ascii_art import dependency_text, spec_text, summary_table


class TestSpecText:
    def test_valve_rendering(self, valve):
        text = spec_text(ClassSpec.of(valve))
        assert text.splitlines()[0] == "Valve"
        assert "-> test [initial]" in text
        assert "test [initial] -> open | clean" in text
        assert "close [final] -> test" in text

    def test_empty_exit_rendered_as_end(self, bad_sector):
        text = spec_text(ClassSpec.of(bad_sector))
        assert "(end)" in text

    def test_initial_final_markers_combined(self, bad_sector):
        text = spec_text(ClassSpec.of(bad_sector))
        assert "open_a [initial, final]" in text


class TestDependencyText:
    def test_counts_line(self, sector):
        text = dependency_text(extract_dependency_graph(sector))
        assert text.splitlines()[0] == (
            "Sector: 4 entry node(s), 6 exit node(s), 11 arc(s)"
        )

    def test_adjacency_lines(self, sector):
        text = dependency_text(extract_dependency_graph(sector))
        assert "entry open_a" in text
        assert "-> exit open_a/return [close_a, open_b]" in text
        assert "-> entry close_a" in text


class TestSummaryTable:
    def test_row_per_class(self, valve, bad_sector):
        table = summary_table([ClassSpec.of(valve), ClassSpec.of(bad_sector)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[2].startswith("Valve")
        assert lines[3].startswith("BadSector")

    def test_counts_in_row(self, valve):
        table = summary_table([ClassSpec.of(valve)])
        row = table.splitlines()[2].split()
        assert row == ["Valve", "4", "1", "2", "5"]
