"""Multi-file project parsing and checking."""

import pytest

from repro.frontend.project import check_project, parse_project, project_files
from repro.paper import BAD_SECTOR, GOOD_SECTOR, VALVE


@pytest.fixture
def project(tmp_path):
    """A two-file project: drivers (Valve) + controller (GoodSector)."""
    (tmp_path / "drivers.py").write_text(VALVE, encoding="utf-8")
    (tmp_path / "controller.py").write_text(GOOD_SECTOR, encoding="utf-8")
    return tmp_path


class TestParseProject:
    def test_merges_classes_across_files(self, project):
        module, violations = parse_project(project)
        assert violations == []
        assert set(module.class_names()) == {"Valve", "GoodSector"}

    def test_cross_file_composition_checks(self, project):
        result = check_project(project)
        assert result.ok, result.format()

    def test_cross_file_violation_found(self, tmp_path):
        (tmp_path / "drivers.py").write_text(VALVE, encoding="utf-8")
        (tmp_path / "controller.py").write_text(BAD_SECTOR, encoding="utf-8")
        result = check_project(tmp_path)
        assert not result.ok
        assert result.by_code("invalid-subsystem-usage")

    def test_subdirectories_included(self, tmp_path):
        (tmp_path / "lib").mkdir()
        (tmp_path / "lib" / "drivers.py").write_text(VALVE, encoding="utf-8")
        (tmp_path / "app.py").write_text(GOOD_SECTOR, encoding="utf-8")
        assert check_project(tmp_path).ok

    def test_duplicate_class_reported_first_wins(self, tmp_path):
        (tmp_path / "a_drivers.py").write_text(VALVE, encoding="utf-8")
        (tmp_path / "z_drivers.py").write_text(VALVE, encoding="utf-8")
        module, violations = parse_project(tmp_path)
        assert [v.code for v in violations] == ["duplicate-class"]
        assert module.class_names().count("Valve") == 1

    def test_syntax_error_in_one_file_does_not_abort(self, tmp_path):
        (tmp_path / "broken.py").write_text("class (:\n", encoding="utf-8")
        (tmp_path / "drivers.py").write_text(VALVE, encoding="utf-8")
        module, violations = parse_project(tmp_path)
        assert any(v.code == "syntax-error" for v in violations)
        assert module.get_class("Valve") is not None

    def test_not_a_directory(self, tmp_path):
        target = tmp_path / "file.py"
        target.write_text(VALVE, encoding="utf-8")
        with pytest.raises(NotADirectoryError):
            parse_project(target)


class TestProjectFiles:
    def test_pycache_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = project_files(tmp_path)
        assert [f.name for f in files] == ["real.py"]

    def test_hidden_directories_skipped(self, tmp_path):
        (tmp_path / ".tox").mkdir()
        (tmp_path / ".tox" / "inner.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        assert [f.name for f in project_files(tmp_path)] == ["real.py"]

    def test_deterministic_order(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("x = 1\n")
        assert [f.name for f in project_files(tmp_path)] == ["a.py", "b.py", "c.py"]


class TestCliDirectorySupport:
    def test_check_accepts_directory(self, project, capsys):
        from repro.cli import main

        assert main(["check", str(project)]) == 0
        assert "OK: specification verified" in capsys.readouterr().out

    def test_report_accepts_directory(self, project, capsys):
        from repro.cli import main

        assert main(["report", str(project)]) == 0
        out = capsys.readouterr().out
        assert "## class `Valve`" in out
        assert "## class `GoodSector`" in out
