"""The classic on-disk cache tree as a :class:`CacheBackend`.

This is the sealed-store behavior that used to live inline in
:class:`~repro.engine.cache.InferenceCache`, extracted verbatim so the
same directory layout, locking discipline, and fault sites now sit
behind the backend protocol:

* entries at ``<root>/<namespace>/<key[:2]>/<key>.json``;
* a ``CACHEDIR.TAG`` marker written atomically (a torn tag can never be
  published half-written);
* one advisory :class:`~repro.engine.locking.FileLock` per namespace
  under ``<root>/locks/``, created lazily so dynamically registered
  namespaces get locks too, with the documented proceed-on-timeout
  degradation (the write still happens, the timeout is counted);
* every entry write through :func:`repro.engine.store.atomic_write_text`
  with fault key ``<namespace>/<key>`` and the ``cache-put`` fault site
  fired after a successful persist.

The server side of ``repro cache serve`` reuses this class unbound
(no owning cache): counters and events are simply skipped.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.engine import faults, store
from repro.engine.backends.base import CacheBackend
from repro.engine.locking import FileLock, LockTimeout

#: Default seconds a writer waits for a namespace lock before giving up
#: and proceeding unlocked (the atomic rename keeps that safe).
DEFAULT_LOCK_TIMEOUT = 5.0

#: Waits shorter than this are indistinguishable from lock bookkeeping
#: noise and are not counted as contention.
_LOCK_WAIT_FLOOR = 0.001

_CACHEDIR_TAG = (
    "Signature: 8a477f597d28d172789f06886806bc55\n"
    "# This directory is a cache managed by repro; safe to delete.\n"
)


class LocalDirBackend(CacheBackend):
    """Sealed envelopes in a sharded local directory tree."""

    supports_scan = True

    def __init__(
        self,
        root: Path | str,
        *,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> None:
        super().__init__()
        self.root = Path(root)
        self.lock_timeout = lock_timeout
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_locks: dict[str, FileLock] = {}
        self._write_locks_guard = threading.Lock()
        tag = self.root / "CACHEDIR.TAG"
        if not tag.exists():
            try:
                store.atomic_write_text(tag, _CACHEDIR_TAG, fault_key="cachedir-tag")
            except OSError:
                # The tag is advisory (it tells backup tools to skip the
                # tree); a full disk must not take the cache down.
                pass

    @property
    def local_root(self) -> Path:
        return self.root

    def entry_path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / key[:2] / f"{key}.json"

    def _lock_for(self, namespace: str) -> FileLock:
        with self._write_locks_guard:
            lock = self._write_locks.get(namespace)
            if lock is None:
                lock_dir = self.root / "locks"
                lock_dir.mkdir(parents=True, exist_ok=True)
                lock = FileLock(
                    lock_dir / f"{namespace}.lock",
                    name=namespace,
                    timeout=self.lock_timeout,
                )
                self._write_locks[namespace] = lock
            return lock

    def get_text(self, namespace: str, key: str) -> str | None:
        try:
            return self.entry_path(namespace, key).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def put_text(self, namespace: str, key: str, text: str) -> None:
        path = self.entry_path(namespace, key)
        fault_key = f"{namespace}/{key}"
        write_lock = self._lock_for(namespace)
        locked = False
        try:
            write_lock.acquire()
            locked = True
            if write_lock.waited > _LOCK_WAIT_FLOOR:
                stats = self._stats()
                if stats is not None:
                    stats.lock_waits += 1
                    stats.lock_wait_seconds += write_lock.waited
                self._event(
                    "lock-wait", lock=namespace, seconds=round(write_lock.waited, 6)
                )
        except LockTimeout:
            # Degrade rather than fail: the atomic rename makes unlocked
            # writes safe, the lock only reduces rename races.
            stats = self._stats()
            if stats is not None:
                stats.lock_timeouts += 1
            self._event("lock-timeout", lock=namespace)
        try:
            store.atomic_write_text(path, text, fault_key=fault_key)
        finally:
            if locked:
                write_lock.release()
        faults.fire("cache-put", fault_key, path)

    def delete(self, namespace: str, key: str) -> bool:
        try:
            self.entry_path(namespace, key).unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:
            # Read-only media: leave the entry in place; callers already
            # treat healing as best-effort.
            return False
