"""The regex simplifier: targeted laws plus semantic preservation."""

import pytest

from repro.regex.ast import format_regex, size
from repro.regex.equivalence import equivalent
from repro.regex.parser import parse_regex
from repro.regex.simplify import simplify


def simplified(text: str) -> str:
    return format_regex(simplify(parse_regex(text)))


class TestLaws:
    def test_star_unrolling_collapses(self):
        assert simplified("eps + a . a*") == "a*"

    def test_star_unrolling_right_form(self):
        assert simplified("eps + a* . a") == "a*"

    def test_left_factoring(self):
        assert simplified("a . b + a . c") == "a . (b + c)"

    def test_right_factoring(self):
        assert simplified("a . c + b . c") == "(a + b) . c"

    def test_star_star_concat(self):
        assert simplified("a* . a*") == "a*"

    def test_star_absorbs_body(self):
        assert simplified("a + a*") == "a*"

    def test_star_absorbs_epsilon(self):
        assert simplified("eps + a*") == "a*"

    def test_epsilon_under_star_dropped(self):
        assert simplified("(eps + a)*") == "a*"

    def test_star_under_star_unwrapped(self):
        assert simplified("(a* + b)*") == "(a + b)*"

    def test_example_3_regex(self):
        assert simplified("(a . c)* + (a . c)* . a . b") == "(a . c)* . (eps + a . b)"

    def test_already_minimal_untouched(self):
        for text in ["a", "a . b", "a + b", "(a . b)*", "{}", "eps"]:
            regex = parse_regex(text)
            assert simplify(regex) == regex


class TestPreservation:
    @pytest.mark.parametrize(
        "text",
        [
            "eps + a . a* + b . b*",
            "a . b . c + a . b . d + a . e",
            "(a . a* + eps) . b",
            "((a + eps)* . b)* + eps",
            "a . (b + c) + a . (c + b)",
            "(a . c)* + (a . c)* . a . b",
        ],
    )
    def test_language_preserved(self, text):
        regex = parse_regex(text)
        reduced = simplify(regex)
        assert equivalent(regex, reduced), format_regex(reduced)

    @pytest.mark.parametrize(
        "text",
        [
            "eps + a . a*",
            "a . b + a . c",
            "a* . a*",
            "a + a* + eps",
        ],
    )
    def test_size_reduced(self, text):
        regex = parse_regex(text)
        assert size(simplify(regex)) < size(regex)

    def test_idempotent(self):
        regex = parse_regex("eps + a . a* + b . c + b . d")
        once = simplify(regex)
        assert simplify(once) == once


class TestWithHypothesis:
    def test_random_regexes_preserved(self):
        from hypothesis import given, settings, strategies as st

        from repro.regex.ast import EMPTY, EPSILON, concat, star, symbol, union

        atoms = st.sampled_from([EMPTY, EPSILON, symbol("a"), symbol("b")])
        regexes = st.recursive(
            atoms,
            lambda children: st.one_of(
                st.tuples(children, children).map(lambda p: concat(*p)),
                st.tuples(children, children).map(lambda p: union(*p)),
                children.map(star),
            ),
            max_leaves=10,
        )

        @given(regexes)
        @settings(max_examples=200, deadline=None)
        def check(regex):
            reduced = simplify(regex)
            assert equivalent(regex, reduced)
            assert size(reduced) <= size(regex)

        check()
