"""Temporal-claim verification (the ``FAIL TO MEET REQUIREMENT`` check).

Each ``@claim`` formula must hold on *every* trace of the class.  The
check intersects the class's trace language with the DFA of the negated
formula; a non-empty intersection is a violation and its shortest word
is the counterexample the report prints.

Claim traces are presented the way the paper presents them: over the
events the formula can observe — subsystem-call events for composite
classes (``a.test, a.open, ...``), plus any own-operation names the
formula mentions (which is also how claims on *base* classes work, e.g.
``@claim("G (open -> F close)")`` on ``Valve``).
"""

from __future__ import annotations

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.kernel import KernelCheck
from repro.automata.nfa import NFA
from repro.automata.operations import project_nfa, with_alphabet
from repro.automata.product import intersection
from repro.automata.shortest import shortest_accepted_word
from repro.core.behavior import behavior_nfa
from repro.core.spec import ClassSpec
from repro.core.diagnostics import (
    FAIL_TO_MEET_REQUIREMENT,
    CheckResult,
    Diagnostic,
    Severity,
)
from repro.frontend.model_ast import ParsedClass
from repro.ltlf.ast import atoms as formula_atoms
from repro.ltlf.parser import ClaimSyntaxError, parse_claim
from repro.ltlf.translate import negation_to_dfa


def claim_alphabet(
    parsed: ParsedClass,
    behavior: NFA,
    formula_atom_names: frozenset[str],
    specs: dict[str, "ClassSpec"] | None = None,
) -> frozenset[str]:
    """The events a claim observes: dotted subsystem events plus any
    own-operation names the formula explicitly mentions.

    With ``specs`` available, the dotted vocabulary covers *every*
    operation each subsystem class declares — a claim may meaningfully
    mention an event the bodies never produce (that is exactly what a
    violated absence or a vacuous response looks like).
    """
    dotted = set(label for label in behavior.alphabet if "." in label)
    if specs is not None:
        for declaration in parsed.subsystems:
            if declaration.field_name not in parsed.subsystem_fields:
                continue
            spec = specs.get(declaration.class_name)
            if spec is not None:
                dotted.update(
                    f"{declaration.field_name}.{name}"
                    for name in spec.operation_names()
                )
    # A formula may mention an event of a declared field that the bodies
    # never produce (that is what a violated absence looks like); such
    # atoms are observable even when no spec table is supplied.
    dotted.update(
        name
        for name in formula_atom_names
        if name.partition(".")[0] in parsed.subsystem_fields
    )
    own = frozenset(parsed.operation_names())
    if not dotted:
        # Base class: claims range over the full operation vocabulary
        # (projecting unmentioned operations away would distort X/G).
        return own
    return frozenset(dotted) | (formula_atom_names & own)


def check_claims(
    parsed: ParsedClass,
    behavior: NFA | None = None,
    specs: dict[str, "ClassSpec"] | None = None,
    kernel: KernelCheck | None = None,
) -> CheckResult:
    """Verify every ``@claim`` of ``parsed``.

    With a :class:`~repro.automata.kernel.KernelCheck` the projection,
    its determinization and the emptiness search run on the bitset
    kernel (and are shared with the vacuity screen); the verdicts and
    counterexample words are identical to the classic path.
    """
    result = CheckResult()
    if not parsed.claims:
        return result
    if behavior is None:
        behavior = behavior_nfa(parsed)
    for formula_text in parsed.claims:
        try:
            formula = parse_claim(formula_text)
        except ClaimSyntaxError as error:
            result.diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="bad-claim",
                    message=f"cannot parse claim {formula_text!r}: {error}",
                    class_name=parsed.name,
                    lineno=parsed.lineno,
                )
            )
            continue
        atom_names = formula_atoms(formula)
        observed = claim_alphabet(parsed, behavior, atom_names, specs)
        unknown_atoms = atom_names - observed - behavior.alphabet
        if unknown_atoms:
            result.diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="bad-claim",
                    message=(
                        f"claim {formula_text!r} mentions events that the "
                        f"class never produces: {sorted(unknown_atoms)}"
                    ),
                    class_name=parsed.name,
                    lineno=parsed.lineno,
                )
            )
            continue
        if kernel is not None:
            counterexample = kernel.claim_counterexample(formula, observed)
        else:
            projected: DFA = determinize(project_nfa(behavior, observed))
            violation_dfa = negation_to_dfa(formula, alphabet=observed)
            joint = projected.alphabet | violation_dfa.alphabet
            bad = intersection(
                with_alphabet(projected, joint),
                with_alphabet(violation_dfa, joint),
            )
            counterexample = shortest_accepted_word(bad)
        if counterexample is not None:
            result.diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="unmet-requirement",
                    title=FAIL_TO_MEET_REQUIREMENT,
                    message=(
                        f"class {parsed.name} violates the temporal claim "
                        f"{formula_text!r}"
                    ),
                    class_name=parsed.name,
                    formula=formula_text,
                    counterexample=counterexample,
                    lineno=parsed.lineno,
                )
            )
    return result
