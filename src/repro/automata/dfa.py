"""Deterministic finite automata.

DFAs are the workhorse of the verdict computations: inclusion checks,
complements and counterexample extraction all happen on DFAs produced by
:mod:`repro.automata.determinize`.  A DFA here may be *partial* (missing
transitions mean the word is rejected); :meth:`DFA.completed` adds an
explicit dead state when a total transition function is needed (for
complementation and for NuSMV emission).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

State = Hashable

#: Name of the sink state introduced by :meth:`DFA.completed`.
DEAD_STATE = "__dead__"


@dataclass(frozen=True)
class DFA:
    """A (possibly partial) DFA ``(Q, Σ, δ, q0, F)``."""

    states: frozenset[State]
    alphabet: frozenset[str]
    transitions: Mapping[tuple[State, str], State]
    initial_state: State
    accepting_states: frozenset[State]

    def __post_init__(self) -> None:
        if self.initial_state not in self.states:
            raise ValueError("initial state not in state set")
        unknown_accepting = self.accepting_states - self.states
        if unknown_accepting:
            raise ValueError(f"accepting states not in state set: {unknown_accepting}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successor(self, state: State, symbol: str) -> State | None:
        """The unique successor, or ``None`` when the move is undefined."""
        return self.transitions.get((state, symbol))

    def accepts(self, word: Iterable[str]) -> bool:
        """Does the automaton accept ``word``?"""
        state = self.initial_state
        for symbol in word:
            state = self.successor(state, symbol)
            if state is None:
                return False
        return state in self.accepting_states

    def run(self, word: Iterable[str]) -> list[State | None]:
        """The state sequence visited on ``word`` (``None`` once stuck).

        The returned list has one entry per prefix of ``word`` including
        the empty prefix, so ``run(w)[0]`` is the initial state and
        ``run(w)[-1]`` the state after the full word.
        """
        trace: list[State | None] = [self.initial_state]
        state: State | None = self.initial_state
        for symbol in word:
            state = None if state is None else self.successor(state, symbol)
            trace.append(state)
        return trace

    def is_total(self) -> bool:
        """Is the transition function defined for every (state, symbol)?"""
        return all(
            (state, symbol) in self.transitions
            for state in self.states
            for symbol in self.alphabet
        )

    def iter_transitions(self) -> Iterator[tuple[State, str, State]]:
        """Yield transitions in a deterministic order."""
        for (source, symbol), target in sorted(
            self.transitions.items(), key=lambda item: (str(item[0][0]), item[0][1])
        ):
            yield source, symbol, target

    # ------------------------------------------------------------------
    # Simple transformations
    # ------------------------------------------------------------------

    def completed(self, dead_state: State = DEAD_STATE) -> "DFA":
        """A total DFA accepting the same language.

        Missing moves are routed to a fresh non-accepting sink; if the
        DFA is already total it is returned unchanged.
        """
        if self.is_total():
            return self
        if dead_state in self.states:
            raise ValueError(f"dead state name {dead_state!r} already in use")
        transitions = dict(self.transitions)
        for state in list(self.states) + [dead_state]:
            for symbol in self.alphabet:
                transitions.setdefault((state, symbol), dead_state)
        return DFA(
            states=self.states | {dead_state},
            alphabet=self.alphabet,
            transitions=transitions,
            initial_state=self.initial_state,
            accepting_states=self.accepting_states,
        )

    def complemented(self) -> "DFA":
        """A DFA for the complement language (over the same alphabet)."""
        total = self.completed()
        return DFA(
            states=total.states,
            alphabet=total.alphabet,
            transitions=total.transitions,
            initial_state=total.initial_state,
            accepting_states=total.states - total.accepting_states,
        )

    def reachable_states(self) -> frozenset[State]:
        """States reachable from the initial state."""
        reached = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            state = frontier.pop()
            for symbol in self.alphabet:
                successor = self.successor(state, symbol)
                if successor is not None and successor not in reached:
                    reached.add(successor)
                    frontier.append(successor)
        return frozenset(reached)

    def trim(self) -> "DFA":
        """Drop unreachable states."""
        reachable = self.reachable_states()
        return DFA(
            states=reachable,
            alphabet=self.alphabet,
            transitions={
                key: target
                for key, target in self.transitions.items()
                if key[0] in reachable and target in reachable
            },
            initial_state=self.initial_state,
            accepting_states=self.accepting_states & reachable,
        )

    def renumbered(self) -> "DFA":
        """Deterministically rename states to ``0..n-1`` (BFS order)."""
        order: dict[State, int] = {self.initial_state: 0}
        queue = [self.initial_state]
        while queue:
            state = queue.pop(0)
            for symbol in sorted(self.alphabet):
                successor = self.successor(state, symbol)
                if successor is not None and successor not in order:
                    order[successor] = len(order)
                    queue.append(successor)
        for state in sorted(self.states - order.keys(), key=str):
            order[state] = len(order)
        return DFA(
            states=frozenset(order.values()),
            alphabet=self.alphabet,
            transitions={
                (order[source], symbol): order[target]
                for (source, symbol), target in self.transitions.items()
            },
            initial_state=0,
            accepting_states=frozenset(order[s] for s in self.accepting_states),
        )

    def to_nfa(self) -> "NFA":
        """View this DFA as an NFA (for constructions that expect NFAs)."""
        from repro.automata.nfa import NFA

        return NFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions={
                key: frozenset({target}) for key, target in self.transitions.items()
            },
            epsilon_moves={},
            initial_states=frozenset({self.initial_state}),
            accepting_states=self.accepting_states,
        )
