"""Program-space generators."""

import random

from repro.lang.ast import Call, If, Loop, Program, Return, Seq, Skip, size
from repro.lang.generator import (
    all_programs,
    count_programs,
    random_program,
    random_program_of_size,
)


class TestExhaustiveSpace:
    def test_size_one_atoms(self):
        programs = list(all_programs(1, ("a",)))
        kinds = {type(p) for p in programs}
        assert kinds == {Skip, Return, Call}
        assert len(programs) == 3

    def test_counts_grow(self):
        one = count_programs(1)
        two = count_programs(2)
        three = count_programs(3)
        assert one < two < three

    def test_size_respected(self):
        for program in all_programs(3, ("a",)):
            assert size(program) <= 3

    def test_contains_every_shape_at_size_three(self):
        programs = set(all_programs(3, ("a",)))
        assert Loop(Loop(Skip())) in programs
        assert Seq(Skip(), Return()) in programs
        assert If(Call("a"), Skip()) in programs

    def test_no_duplicates(self):
        programs = list(all_programs(4, ("a",)))
        assert len(programs) == len(set(programs))

    def test_two_letter_alphabet_count_at_size_one(self):
        assert count_programs(1, ("a", "b")) == 4  # skip, return, a(), b()


class TestRandomPrograms:
    def test_deterministic_under_seed(self):
        left = random_program(random.Random(42))
        right = random_program(random.Random(42))
        assert left == right

    def test_type_is_program(self):
        program = random_program(random.Random(7))
        assert isinstance(program, Program)

    def test_depth_zero_gives_atoms(self):
        for seed in range(20):
            program = random_program(random.Random(seed), max_depth=0)
            assert isinstance(program, (Skip, Return, Call))

    def test_alphabet_respected(self):
        rng = random.Random(3)
        for _ in range(20):
            program = random_program(rng, alphabet=("x",))
            from repro.lang.ast import calls

            assert calls(program) <= {"x"}

    def test_sized_generator_reaches_target(self):
        program = random_program_of_size(random.Random(11), 200)
        assert size(program) >= 200
