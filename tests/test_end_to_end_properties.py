"""End-to-end properties of the whole checker, over generated modules.

These tie everything together: for *arbitrary* (generator-shaped)
modules, clean modules verify, planted bugs are always found, and every
reported counterexample is a genuine, replayable violation.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.checker import Checker
from repro.core.spec import ClassSpec
from repro.core.usage import replay_against_spec
from repro.frontend.parse import parse_module
from repro.workloads.hierarchy import HierarchyShape, lifecycle_claim, module_source


def shapes() -> st.SearchStrategy[HierarchyShape]:
    return st.builds(
        HierarchyShape,
        base_operations=st.integers(min_value=2, max_value=6),
        subsystems=st.integers(min_value=1, max_value=4),
        composite_operations=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )


@given(shapes())
@settings(max_examples=40, deadline=None)
def test_correct_modules_always_verify(shape):
    source = module_source(shape, correct=True)
    module, violations = parse_module(source)
    assert not violations
    result = Checker(module, violations).check()
    assert result.ok, result.format()


@given(shapes())
@settings(max_examples=40, deadline=None)
def test_planted_bug_always_found(shape):
    source = module_source(shape, correct=False)
    module, violations = parse_module(source)
    result = Checker(module, violations).check()
    assert not result.ok
    assert result.by_code("invalid-subsystem-usage")


@given(shapes())
@settings(max_examples=25, deadline=None)
def test_counterexample_is_a_genuine_violation(shape):
    """Every reported counterexample (a) is a trace the behavior
    automaton accepts, and (b) fails the replay against the named
    subsystem's specification."""
    from repro.automata.determinize import determinize
    from repro.core.behavior import behavior_nfa

    source = module_source(shape, correct=False)
    module, violations = parse_module(source)
    checker = Checker(module, violations)
    result = checker.check()
    composite = module.get_class("Controller")
    behavior = determinize(behavior_nfa(composite))
    for diagnostic in result.by_code("invalid-subsystem-usage"):
        trace = diagnostic.counterexample
        assert trace is not None
        assert behavior.accepts(trace), trace
        for error in diagnostic.subsystem_errors:
            spec = checker.specs[error.class_name]
            rendered = replay_against_spec(spec, trace, error.field_name + ".")
            assert rendered is not None  # the replay really fails
            assert rendered == error.rendered


@given(shapes())
@settings(max_examples=20, deadline=None)
def test_lifecycle_claim_holds_on_correct_modules(shape):
    source = module_source(shape, correct=True, claim=lifecycle_claim(shape))
    module, violations = parse_module(source)
    result = Checker(module, violations).check()
    assert result.ok, result.format()


@given(shapes(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_runtime_monitor_agrees_with_static_spec(shape, walk_seed):
    """Random monitored walks on the generated base class produce only
    spec-accepted traces (the dynamic/static coherence property)."""
    from repro.runtime.monitor import (
        IncompleteLifecycleError,
        OrderViolationError,
        finalize,
        monitored,
    )

    source = module_source(shape, correct=True)
    module, _ = parse_module(source)
    base = module.get_class("Device")
    spec = ClassSpec.of(base)
    dfa = spec.dfa()

    # Build a runtime class whose methods return their declared sets
    # (first exit point of each operation).
    namespace: dict = {}
    methods = {}
    for operation in base.operations:
        first_exit = operation.returns[0]
        methods[operation.name] = (
            lambda self, _next=list(first_exit.next_methods): list(_next)
        )
    runtime_class = type("RuntimeDevice", (), methods)
    namespace["RuntimeDevice"] = runtime_class
    wrapped = monitored(runtime_class, spec=spec)

    rng = random.Random(walk_seed)
    instance = wrapped()
    performed = []
    for _ in range(rng.randrange(0, 10)):
        name = rng.choice(spec.operation_names())
        try:
            getattr(instance, name)()
            performed.append(name)
        except OrderViolationError:
            pass
    try:
        finalize(instance)
    except IncompleteLifecycleError:
        return  # incomplete walks carry no acceptance obligation
    assert dfa.accepts(performed), performed
