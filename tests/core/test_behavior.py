"""The behavior automaton: spec structure with inferred bodies spliced in."""

from repro.automata.determinize import determinize
from repro.core.behavior import behavior_nfa, operation_exit_regexes, subsystem_alphabet
from repro.regex.ast import format_regex


class TestExitRegexes:
    def test_bad_sector_open_a(self, bad_sector):
        operation = bad_sector.operation("open_a")
        per_exit = operation_exit_regexes(operation)
        assert format_regex(per_exit[0]) == "a.test . a.open"
        assert format_regex(per_exit[1]) == "a.test . a.clean"

    def test_bad_sector_open_b(self, bad_sector):
        operation = bad_sector.operation("open_b")
        per_exit = operation_exit_regexes(operation)
        assert format_regex(per_exit[0]) == "b.test . b.open . a.close . b.close"
        assert format_regex(per_exit[1]) == "b.test . b.clean . a.close"

    def test_base_class_bodies_are_epsilon(self, valve):
        for operation in valve.operations:
            for regex in operation_exit_regexes(operation).values():
                assert format_regex(regex) == "eps"


class TestBadSectorBehavior:
    def test_alphabet_joins_ops_and_calls(self, bad_sector):
        nfa = behavior_nfa(bad_sector)
        assert "open_a" in nfa.alphabet
        assert "a.test" in nfa.alphabet
        assert "b.close" in nfa.alphabet

    def test_paper_counterexample_is_a_behavior(self, bad_sector):
        # "open_a, a.test, a.open" — a complete lifecycle of BadSector.
        nfa = behavior_nfa(bad_sector)
        assert nfa.accepts(["open_a", "a.test", "a.open"])

    def test_clean_path_is_a_behavior(self, bad_sector):
        nfa = behavior_nfa(bad_sector)
        assert nfa.accepts(["open_a", "a.test", "a.clean"])

    def test_full_two_valve_run(self, bad_sector):
        nfa = behavior_nfa(bad_sector)
        assert nfa.accepts(
            [
                "open_a",
                "a.test",
                "a.open",
                "open_b",
                "b.test",
                "b.open",
                "a.close",
                "b.close",
            ]
        )

    def test_op_event_precedes_its_body(self, bad_sector):
        nfa = behavior_nfa(bad_sector)
        assert not nfa.accepts(["a.test", "open_a", "a.open"])

    def test_body_cannot_be_skipped(self, bad_sector):
        nfa = behavior_nfa(bad_sector)
        assert not nfa.accepts(["open_a"])  # body must run

    def test_exit_determines_continuation(self, bad_sector):
        nfa = behavior_nfa(bad_sector)
        # After the clean exit of open_a (returns []), open_b is illegal.
        assert not nfa.accepts(
            ["open_a", "a.test", "a.clean", "open_b", "b.test", "b.clean", "a.close"]
        )

    def test_empty_behavior_accepted(self, bad_sector):
        assert behavior_nfa(bad_sector).accepts([])


class TestBaseClassBehavior:
    def test_degenerates_to_spec(self, valve):
        from repro.core.spec import ClassSpec

        behavior = determinize(behavior_nfa(valve))
        spec = ClassSpec.of(valve).dfa()
        from repro.automata.operations import equivalent

        assert equivalent(behavior, spec)


class TestSubsystemAlphabet:
    def test_collects_called_labels(self, bad_sector):
        assert subsystem_alphabet(bad_sector, "a") == {"a.test", "a.open", "a.clean", "a.close"}
        assert subsystem_alphabet(bad_sector, "b") == {
            "b.test",
            "b.open",
            "b.clean",
            "b.close",
        }

    def test_unknown_field_is_empty(self, bad_sector):
        assert subsystem_alphabet(bad_sector, "z") == frozenset()
