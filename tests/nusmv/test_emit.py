"""NuSMV emission: structure, determinism, and the ω-lifting encoding."""

from repro.automata.determinize import determinize
from repro.automata.thompson import thompson
from repro.core.behavior import behavior_nfa
from repro.ltlf.parser import parse_claim
from repro.nusmv.emit import emit_dfa, emit_model, formula_to_nusmv
from repro.nusmv.syntax import unique_names
from repro.regex.parser import parse_regex


def simple_dfa():
    return determinize(thompson(parse_regex("a . b"), frozenset({"a", "b"}))).renumbered()


class TestEmitDfa:
    def test_module_header(self):
        text = emit_dfa(simple_dfa())
        assert text.startswith("MODULE main\n")

    def test_custom_module_name(self):
        assert emit_dfa(simple_dfa(), "valve").startswith("MODULE valve\n")

    def test_event_ivar_includes_end_marker(self):
        text = emit_dfa(simple_dfa())
        assert "IVAR" in text
        assert "_end" in text

    def test_state_var_includes_done_and_dead(self):
        text = emit_dfa(simple_dfa())
        assert "done" in text
        assert "dead" in text

    def test_accepting_states_reach_done_on_end(self):
        text = emit_dfa(simple_dfa())
        assert "event = _end : done;" in text

    def test_done_self_loop(self):
        text = emit_dfa(simple_dfa())
        assert "state = done & event = _end : done;" in text

    def test_default_branch_to_dead(self):
        text = emit_dfa(simple_dfa())
        assert "TRUE : dead;" in text

    def test_defines_accepting_and_finished(self):
        text = emit_dfa(simple_dfa())
        assert "accepting :=" in text
        assert "finished := state = done;" in text

    def test_justice_constraint(self):
        text = emit_dfa(simple_dfa())
        assert "JUSTICE\n  finished;" in text

    def test_deterministic_output(self):
        assert emit_dfa(simple_dfa()) == emit_dfa(simple_dfa())

    def test_golden_structure_for_bad_sector(self, bad_sector):
        dfa = determinize(behavior_nfa(bad_sector)).renumbered()
        text = emit_dfa(dfa)
        # Every event of the behavior automaton appears, mangled.
        for event in ("open_a", "open_b", "a_test", "b_close"):
            assert event in text
        # One init, one next assignment.
        assert text.count("init(state)") == 1
        assert text.count("next(state)") == 1


class TestFormulaRendering:
    EVENTS = unique_names(["a.open", "b.open", "_end"])

    def test_atom(self):
        text = formula_to_nusmv(parse_claim("a.open"), self.EVENTS)
        assert text == "event = a_open"

    def test_weak_until_expansion(self):
        text = formula_to_nusmv(parse_claim("(!a.open) W b.open"), self.EVENTS)
        assert " U " in text
        assert "G " in text  # the | G φ arm

    def test_globally_guarded_by_end(self):
        text = formula_to_nusmv(parse_claim("G a.open"), self.EVENTS)
        assert "event != _end" in text

    def test_next_requires_real_event(self):
        text = formula_to_nusmv(parse_claim("X a.open"), self.EVENTS)
        assert text.startswith("X ((")

    def test_release_uses_v_operator(self):
        text = formula_to_nusmv(parse_claim("a.open R b.open"), self.EVENTS)
        assert " V " in text


class TestEmitModel:
    def test_ltlspec_appended_per_claim(self):
        dfa = simple_dfa()
        claims = [parse_claim("G a"), parse_claim("F b")]
        text = emit_model(dfa, claims)
        assert text.count("LTLSPEC") == 2

    def test_no_claims_no_ltlspec(self):
        assert "LTLSPEC" not in emit_model(simple_dfa(), [])

    def test_model_still_contains_automaton(self):
        text = emit_model(simple_dfa(), [parse_claim("G a")])
        assert "MODULE main" in text
        assert "JUSTICE" in text
