"""Sharded verification: split one project across worker processes.

The other half of the planner/executor split (docs/distributed.md).
A :class:`~repro.engine.engine.VerificationPlan` is computed once, its
waves are dealt round-robin into :class:`ShardPlan` slices, each slice
runs on an independent worker (``repro check --shards N
--shard-index i``, usually with a shared remote cache), and
:func:`merge_shard_results` reassembles the per-shard outputs into a
:class:`~repro.engine.engine.BatchResult` whose merged report is
**byte-identical** to the serial run — diagnostics are pure functions
of each class, so only coverage and ordering need proving, and both are
checked at merge time.

Why round-robin *within each wave*: waves are the schedule's sorted
dependency layers, so dealing positions ``0, 1, 2, ...`` of every wave
across shards balances each layer's width instead of handing one shard
a whole layer.  The assignment depends only on the schedule (itself a
pure function of the parsed module), never on timing or host — every
coordinator computes the same slices.

:func:`coordinate` is the in-process driver used by ``repro
coordinate``: it fans worker subprocesses out, one per shard, and
merges their ``--shard-out`` files.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.checker import module_diagnostics
from repro.core.diagnostics import CheckResult
from repro.engine.engine import (
    BatchResult,
    BatchVerifier,
    EngineError,
    VerificationPlan,
)
from repro.engine.metrics import ClassTiming, EngineMetrics
from repro.engine.serialize import diagnostics_from_list, diagnostics_to_list
from repro.frontend.model_ast import ParsedModule, SubsetViolation

#: Bumped when the serialized shard-result shape changes.
SHARD_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of a :class:`VerificationPlan`.

    Carries the *full* wave schedule plus this shard's class set; the
    worker prunes the waves to its classes (indices preserved), so wave
    numbers in timings and traces agree across every shard and with the
    serial run.
    """

    shards: int
    index: int
    waves: tuple[tuple[str, ...], ...]
    classes: frozenset[str]

    @property
    def scheduled(self) -> int:
        return len(self.classes)

    def shard_waves(self) -> tuple[tuple[str, ...], ...]:
        """The full schedule pruned to this shard, indices preserved."""
        return tuple(
            tuple(name for name in wave if name in self.classes)
            for wave in self.waves
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_format": SHARD_FORMAT_VERSION,
            "shards": self.shards,
            "index": self.index,
            "waves": [list(wave) for wave in self.waves],
            "classes": sorted(self.classes),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ShardPlan":
        if not isinstance(payload, Mapping):
            raise EngineError("malformed shard plan: not a mapping")
        if payload.get("shard_format") != SHARD_FORMAT_VERSION:
            raise EngineError(
                f"shard plan version skew: got {payload.get('shard_format')!r}"
            )
        return ShardPlan(
            shards=int(payload["shards"]),
            index=int(payload["index"]),
            waves=tuple(tuple(wave) for wave in payload["waves"]),
            classes=frozenset(payload["classes"]),
        )


def plan_shards(
    module: ParsedModule,
    shards: int,
    *,
    only: frozenset[str] | None = None,
) -> tuple[ShardPlan, ...]:
    """Deal the module's wave schedule into ``shards`` deterministic slices."""
    if shards < 1:
        raise EngineError(f"shards must be >= 1, got {shards}")
    plan = BatchVerifier(module, only=only).plan()
    assigned: list[set[str]] = [set() for _ in range(shards)]
    for wave in plan.waves:
        for position, name in enumerate(wave):
            assigned[position % shards].add(name)
    return tuple(
        ShardPlan(
            shards=shards,
            index=index,
            waves=plan.waves,
            classes=frozenset(classes),
        )
        for index, classes in enumerate(assigned)
    )


def run_shard(
    module: ParsedModule,
    violations: list[SubsetViolation] | None,
    plan: ShardPlan,
    **engine_kwargs: Any,
) -> BatchResult:
    """Execute one shard's slice locally; accepts every
    :class:`BatchVerifier` keyword (``jobs``, ``cache``, ...)."""
    verifier = BatchVerifier(
        module, violations, only=plan.classes, **engine_kwargs
    )
    return verifier.execute(
        VerificationPlan(waves=plan.shard_waves(), only=plan.classes)
    )


# ----------------------------------------------------------------------
# Shard-result serialization (what --shard-out writes)
# ----------------------------------------------------------------------

_METRIC_SUMS = (
    "class_hits", "class_misses", "method_hits", "method_misses",
    "cache_writes", "corrupt_entries", "retries", "quarantines",
    "budget_trips", "timeouts", "pool_restarts", "checksum_failures",
    "write_failures", "lock_waits", "lock_timeouts", "orphans_removed",
    "remote_hits", "remote_misses", "remote_puts", "remote_errors",
    "remote_degraded",
)


def shard_result_to_dict(plan: ShardPlan, batch: BatchResult) -> dict[str, Any]:
    """Serialize one shard's output for the coordinator."""
    metrics = batch.metrics
    return {
        "shard_format": SHARD_FORMAT_VERSION,
        "shards": plan.shards,
        "index": plan.index,
        "classes": sorted(plan.classes),
        "results": [
            {"class": name, "diagnostics": diagnostics_to_list(result.diagnostics)}
            for name, result in batch.class_results
        ],
        "timings": [
            {
                "class": timing.class_name,
                "seconds": timing.seconds,
                "from_cache": timing.from_cache,
                "wave": timing.wave,
                "quarantined": timing.quarantined,
            }
            for timing in metrics.timings
        ],
        "metrics": {
            "jobs": metrics.jobs,
            "executor": metrics.executor,
            "wall_seconds": metrics.wall_seconds,
            "lock_wait_seconds": metrics.lock_wait_seconds,
            **{name: getattr(metrics, name) for name in _METRIC_SUMS},
        },
    }


@dataclass(frozen=True)
class ShardResult:
    """One shard's deserialized output."""

    shards: int
    index: int
    classes: frozenset[str]
    results: tuple[tuple[str, CheckResult], ...]
    timings: tuple[ClassTiming, ...]
    metrics: dict[str, Any]


def shard_result_from_dict(payload: Mapping[str, Any]) -> ShardResult:
    if not isinstance(payload, Mapping):
        raise EngineError("malformed shard result: not a mapping")
    if payload.get("shard_format") != SHARD_FORMAT_VERSION:
        raise EngineError(
            f"shard result version skew: got {payload.get('shard_format')!r}, "
            f"want {SHARD_FORMAT_VERSION}"
        )
    try:
        results = tuple(
            (
                entry["class"],
                CheckResult(diagnostics=diagnostics_from_list(entry["diagnostics"])),
            )
            for entry in payload["results"]
        )
        timings = tuple(
            ClassTiming(
                class_name=entry["class"],
                seconds=float(entry["seconds"]),
                from_cache=bool(entry["from_cache"]),
                wave=int(entry["wave"]),
                quarantined=bool(entry.get("quarantined", False)),
            )
            for entry in payload["timings"]
        )
        return ShardResult(
            shards=int(payload["shards"]),
            index=int(payload["index"]),
            classes=frozenset(payload["classes"]),
            results=results,
            timings=timings,
            metrics=dict(payload["metrics"]),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise EngineError(f"malformed shard result: {err}") from err


def merge_shard_results(
    module: ParsedModule,
    violations: list[SubsetViolation] | None,
    shard_results: Sequence[ShardResult],
) -> BatchResult:
    """Reassemble per-shard outputs into one :class:`BatchResult`.

    Validates that the shards form a complete, disjoint partition of
    the schedule before trusting them; the merged report then only
    depends on class order in the module source, exactly like
    :meth:`BatchVerifier.run`.
    """
    if not shard_results:
        raise EngineError("no shard results to merge")
    shards = shard_results[0].shards
    if any(result.shards != shards for result in shard_results):
        raise EngineError("shard results disagree on the shard count")
    indices = sorted(result.index for result in shard_results)
    if indices != list(range(shards)):
        raise EngineError(
            f"incomplete shard set: have indices {indices}, want 0..{shards - 1}"
        )
    covered: set[str] = set()
    for result in shard_results:
        overlap = covered & result.classes
        if overlap:
            raise EngineError(
                f"shards overlap on classes: {', '.join(sorted(overlap))}"
            )
        covered |= result.classes
    plan = BatchVerifier(module).plan()
    expected = plan.classes()
    if covered != expected:
        missing = sorted(expected - covered)
        extra = sorted(covered - expected)
        raise EngineError(
            "shard results do not cover the schedule"
            + (f"; missing: {', '.join(missing)}" if missing else "")
            + (f"; unexpected: {', '.join(extra)}" if extra else "")
        )

    outcomes: dict[str, CheckResult] = {}
    timings: list[ClassTiming] = []
    for result in shard_results:
        outcomes.update(dict(result.results))
        timings.extend(result.timings)
    ordered = tuple(
        (parsed.name, outcomes[parsed.name])
        for parsed in module.classes
        if parsed.name in outcomes
    )

    summed = {
        name: sum(int(result.metrics.get(name, 0)) for result in shard_results)
        for name in _METRIC_SUMS
    }
    metrics = EngineMetrics(
        classes=plan.scheduled,
        waves=plan.wave_count,
        jobs=max(int(result.metrics.get("jobs", 1)) for result in shard_results),
        executor=str(shard_results[0].metrics.get("executor", "thread")),
        # Shards run concurrently: the fleet's wall clock is the slowest
        # shard, not the sum.
        wall_seconds=max(
            float(result.metrics.get("wall_seconds", 0.0))
            for result in shard_results
        ),
        timings=tuple(sorted(timings, key=lambda t: (t.wave, t.class_name))),
        lock_wait_seconds=sum(
            float(result.metrics.get("lock_wait_seconds", 0.0))
            for result in shard_results
        ),
        **summed,
    )
    return BatchResult(
        module=module,
        module_result=module_diagnostics(module, list(violations or [])),
        class_results=ordered,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# The coordinator (repro coordinate)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CoordinatedRun:
    """What :func:`coordinate` hands back."""

    batch: BatchResult
    shard_metrics: tuple[dict[str, Any], ...]


def coordinate(
    target: str | Path,
    *,
    shards: int,
    jobs: int = 1,
    executor: str = "thread",
    cache_dir: str | Path | None = None,
    worker_cache_root: str | Path | None = None,
    remote_cache: str | None = None,
    kernel: str | None = None,
    timeout_seconds: float = 600.0,
) -> CoordinatedRun:
    """Fan one check out to ``shards`` worker subprocesses and merge.

    Each worker is a full ``repro check --shards N --shard-index i``
    invocation writing its slice to a ``--shard-out`` file.  With
    ``worker_cache_root`` every worker gets its own local cache tree
    (``<root>/worker-<i>``) — the configuration that makes a shared
    ``remote_cache`` observable: worker-local trees start empty, so any
    hit must have crossed the wire.
    """
    if shards < 1:
        raise EngineError(f"shards must be >= 1, got {shards}")
    module, violations = _load_target(target)
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as scratch:
        processes: list[tuple[int, subprocess.Popen, Path]] = []
        for index in range(shards):
            out_path = Path(scratch) / f"shard-{index}.json"
            command = [
                sys.executable, "-m", "repro.cli", "check", str(target),
                "--shards", str(shards), "--shard-index", str(index),
                "--shard-out", str(out_path),
                "--jobs", str(jobs), "--executor", executor,
            ]
            if kernel is not None:
                command += ["--kernel", kernel]
            worker_cache: Path | None = None
            if worker_cache_root is not None:
                worker_cache = Path(worker_cache_root) / f"worker-{index}"
            elif cache_dir is not None:
                worker_cache = Path(cache_dir)
            if worker_cache is not None or remote_cache is not None:
                command += ["--cache"]
                if worker_cache is not None:
                    command += ["--cache-dir", str(worker_cache)]
            if remote_cache is not None:
                command += ["--remote-cache", remote_cache]
            process = subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            processes.append((index, process, out_path))

        payloads: list[dict[str, Any]] = []
        failures: list[str] = []
        for index, process, out_path in processes:
            try:
                _stdout, stderr = process.communicate(timeout=timeout_seconds)
            except subprocess.TimeoutExpired:
                process.kill()
                process.communicate()
                failures.append(f"shard {index}: timed out")
                continue
            # Exit 1 is "check found violations", still a valid shard.
            if process.returncode not in (0, 1):
                failures.append(
                    f"shard {index}: exit {process.returncode}: "
                    f"{stderr.strip().splitlines()[-1] if stderr.strip() else ''}"
                )
                continue
            try:
                payloads.append(
                    json.loads(out_path.read_text(encoding="utf-8"))
                )
            except (OSError, ValueError) as err:
                failures.append(f"shard {index}: unreadable result: {err}")
        if failures:
            raise EngineError(
                "coordinated run failed: " + "; ".join(failures)
            )
        results = [shard_result_from_dict(payload) for payload in payloads]
    batch = merge_shard_results(module, violations, results)
    return CoordinatedRun(
        batch=batch,
        shard_metrics=tuple(dict(result.metrics) for result in results),
    )


def _load_target(target: str | Path) -> tuple[ParsedModule, list[SubsetViolation]]:
    from repro.frontend.parse import parse_file
    from repro.frontend.project import parse_project

    if Path(target).is_dir():
        return parse_project(target)
    return parse_file(target)
