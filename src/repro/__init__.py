"""Reproduction of *Formalizing Model Inference of MicroPython* (DSN-W 2023).

A Shelley-style model-extraction and call-ordering model-checking
framework for an annotated MicroPython subset, with the paper's
formal core (Figure 4's calculus, trace semantics and behavior
inference) implemented verbatim and its metatheory checked executably.

Quickstart::

    from repro import check_source
    result = check_source(source_code)
    if not result.ok:
        print(result.format())

Package map (details in DESIGN.md):

* :mod:`repro.lang` -- the paper's imperative calculus (Figure 4),
* :mod:`repro.regex` / :mod:`repro.automata` -- regular-language engine,
* :mod:`repro.ltlf` -- temporal claims on finite traces,
* :mod:`repro.frontend` -- annotations and MicroPython parsing,
* :mod:`repro.core` -- extraction + verification pipeline,
* :mod:`repro.engine` -- parallel batch verification + inference cache,
* :mod:`repro.micropython` -- simulated ``machine`` substrate,
* :mod:`repro.runtime` -- dynamic monitoring of the same models,
* :mod:`repro.nusmv` -- NuSMV emission, :mod:`repro.viz` -- diagrams,
* :mod:`repro.paper` -- the paper's listings as reusable fixtures.
"""

from repro.core.checker import Checker, check_path, check_source
from repro.core.dependency import extract_dependency_graph
from repro.engine import BatchVerifier, InferenceCache, verify_path
from repro.core.diagnostics import CheckResult, Diagnostic, Severity
from repro.core.spec import ClassSpec
from repro.frontend.decorators import (
    claim,
    op,
    op_final,
    op_initial,
    op_initial_final,
    sys,
)
from repro.frontend.parse import parse_file, parse_module
from repro.lang.inference import behavior, infer
from repro.lang.metatheory import check_all_theorems
from repro.ltlf.parser import parse_claim
from repro.regex.ast import format_regex
from repro.runtime.monitor import finalize, lifecycle, monitored

__version__ = "1.0.0"

__all__ = [
    "BatchVerifier",
    "Checker",
    "CheckResult",
    "InferenceCache",
    "ClassSpec",
    "Diagnostic",
    "Severity",
    "__version__",
    "behavior",
    "check_all_theorems",
    "check_path",
    "check_source",
    "claim",
    "extract_dependency_graph",
    "finalize",
    "format_regex",
    "infer",
    "lifecycle",
    "monitored",
    "op",
    "op_final",
    "op_initial",
    "op_initial_final",
    "parse_claim",
    "parse_file",
    "parse_module",
    "sys",
    "verify_path",
]
