"""The incremental re-verification benchmark: one leaf edit on a big grid.

Builds a ``layers × width`` project (default 10 × 20 = 200 classes, one
file per class), runs ``verify_incremental`` cold to record the state,
then applies a *body-only edit* to one layer-0 leaf (blank-line padding:
line numbers shift, the spec structure does not) and re-runs warm.

The run FAILS — exit 1 — unless the acceptance bounds hold:

* the warm report is **byte-identical** to a fresh cold run of the
  edited sources;
* the re-checked set is at most ``--max-dirty-fraction`` of the project
  (default 5%; the edit above dirties exactly one class);
* the reuse ratio meets ``--reuse-floor`` (default 0.95).

Cold and warm wall clocks go to stdout and to ``--out`` as JSON — the
CI incremental job uploads that file as an artifact, so the warm/cold
ratio is trackable across runs (docs/incremental.md).

Usage::

    python benchmarks/bench_incremental_edit.py --out BENCH_incremental.json \
        [--layers 10] [--width 20] [--jobs 1]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any(Path(p).resolve() == REPO_ROOT / "src" for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import BatchVerifier, verify_incremental  # noqa: E402
from repro.frontend.project import parse_project  # noqa: E402
from repro.workloads.hierarchy import (  # noqa: E402
    HierarchyShape,
    grid_project_files,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--layers", type=int, default=10)
    parser.add_argument("--width", type=int, default=20)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default="BENCH_incremental.json")
    parser.add_argument("--max-dirty-fraction", type=float, default=0.05)
    parser.add_argument("--reuse-floor", type=float, default=0.95)
    args = parser.parse_args(argv)

    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-incremental-"))
    project_root = scratch / "project"
    state_file = scratch / "state.json"
    shape = HierarchyShape(base_operations=4)
    files = grid_project_files(shape, args.layers, args.width, project_root)
    classes = args.layers * args.width
    print(f"grid project: {classes} classes in {len(files)} files")

    module, violations = parse_project(project_root)
    assert len(module.classes) == classes

    started = time.perf_counter()
    cold = verify_incremental(
        module, violations, state_file=state_file, jobs=args.jobs
    )
    cold_seconds = time.perf_counter() - started
    assert cold.plan.cold and cold.batch.ok, "cold grid run must verify"
    print(f"cold run:  {cold_seconds * 1000:8.1f} ms  ({classes} checked)")

    # The leaf edit: pad one layer-0 class with blank lines.  Line
    # numbers shift (class fingerprint changes), the spec does not —
    # the dirty set must be exactly this one class.
    leaf = project_root / "G0_000.py"
    leaf.write_text("\n\n" + leaf.read_text(encoding="utf-8"), encoding="utf-8")

    module, violations = parse_project(project_root)
    started = time.perf_counter()
    warm = verify_incremental(
        module, violations, state_file=state_file, jobs=args.jobs
    )
    warm_seconds = time.perf_counter() - started
    dirty = len(warm.plan.dirty)
    ratio = warm.batch.metrics.reuse_ratio
    print(
        f"warm run:  {warm_seconds * 1000:8.1f} ms  "
        f"({dirty} re-checked, {len(warm.plan.reused)} spliced, "
        f"{ratio:.1%} reuse)"
    )

    reference = BatchVerifier(module, violations, jobs=args.jobs).run()
    failures: list[str] = []
    if warm.batch.merged().format() != reference.merged().format():
        failures.append("warm incremental report differs from a cold run")
    if warm.plan.dirty != ("G0_000",):
        failures.append(f"expected dirty == ('G0_000',), got {warm.plan.dirty}")
    if dirty > args.max_dirty_fraction * classes:
        failures.append(
            f"{dirty} re-checked classes exceed "
            f"{args.max_dirty_fraction:.0%} of {classes}"
        )
    if ratio < args.reuse_floor:
        failures.append(f"reuse ratio {ratio:.3f} below floor {args.reuse_floor}")

    payload = {
        "format": 1,
        "python": sys.version.split()[0],
        "classes": classes,
        "layers": args.layers,
        "width": args.width,
        "jobs": args.jobs,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "dirty": dirty,
        "reused": len(warm.plan.reused),
        "reuse_ratio": ratio,
        "ok": not failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {args.out} (speedup {payload['speedup']:.1f}x)")

    if failures:
        print("incremental benchmark gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("incremental benchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
