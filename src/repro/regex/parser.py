"""A parser for the paper's regular-expression notation.

Grammar (lowest to highest precedence)::

    union   ::= concat ('+' concat)*
    concat  ::= starred ('.' starred)*
    starred ::= atom '*'*
    atom    ::= 'eps' | '{}' | IDENT | '(' union ')'

``IDENT`` is a dotted event label such as ``a.open`` — note that the dot
inside a label binds tighter than the concatenation dot, which must be
surrounded by whitespace (``a.open . b.open`` concatenates two labels).
This mirrors how :func:`repro.regex.ast.format_regex` prints terms, so
``parse_regex(format_regex(r))`` is identity up to canonicalisation.
"""

from __future__ import annotations

import re

from repro.regex.ast import EMPTY, EPSILON, Regex, concat, star, symbol, union

_TOKEN_PATTERN = re.compile(
    r"\s*(?:"
    r"(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<star>\*)"
    r"|(?P<plus>\+)"
    r"|(?P<empty>\{\})"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*)"
    r"|(?P<dot>\.)"
    r")"
)


class RegexSyntaxError(ValueError):
    """Raised when the input is not a well-formed regex."""


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise RegexSyntaxError(f"unexpected input at: {remainder[:20]!r}")
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index][0]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def parse(self) -> Regex:
        result = self._union()
        if self._peek() is not None:
            raise RegexSyntaxError(
                f"trailing tokens starting at {self._tokens[self._index][1]!r}"
            )
        return result

    def _union(self) -> Regex:
        result = self._concat()
        while self._peek() == "plus":
            self._advance()
            result = union(result, self._concat())
        return result

    def _concat(self) -> Regex:
        result = self._starred()
        while self._peek() == "dot":
            self._advance()
            result = concat(result, self._starred())
        return result

    def _starred(self) -> Regex:
        result = self._atom()
        while self._peek() == "star":
            self._advance()
            result = star(result)
        return result

    def _atom(self) -> Regex:
        kind = self._peek()
        if kind is None:
            raise RegexSyntaxError("unexpected end of input")
        if kind == "lparen":
            self._advance()
            inner = self._union()
            if self._peek() != "rparen":
                raise RegexSyntaxError("missing closing parenthesis")
            self._advance()
            return inner
        if kind == "empty":
            self._advance()
            return EMPTY
        if kind == "ident":
            _, text = self._advance()
            if text == "eps":
                return EPSILON
            return symbol(text)
        raise RegexSyntaxError(f"unexpected token {self._tokens[self._index][1]!r}")


def parse_regex(text: str) -> Regex:
    """Parse ``text`` in the paper's notation into a canonical regex term."""
    tokens = _tokenize(text)
    if not tokens:
        raise RegexSyntaxError("empty regex")
    return _Parser(tokens).parse()
