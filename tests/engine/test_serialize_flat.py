"""Flat bitset-DFA payloads must round-trip exactly (cache correctness).

Under the bitset kernel, process-pool workers ship the behavior DFA back
as flat int arrays; the cache stores them under ``dfa_flat``.  The codec
must be exact (same language, same structure) and defensive (malformed
payloads decode to a cache miss, never a crash).
"""

import json

import pytest

from repro.automata.kernel import (
    bitdfa_to_dfa,
    bitset_equivalent,
    determinize_bitset,
    forced_kernel,
    nfa_to_bitnfa,
)
from repro.core.behavior import behavior_nfa
from repro.engine import BatchVerifier, InferenceCache, cached_behavior_dfa
from repro.engine.serialize import (
    FlatFormatError,
    bitdfa_from_flat,
    bitdfa_to_flat,
)
from repro.frontend.parse import parse_module
from repro.paper import SECTION_2_MODULE
from repro.workloads.hierarchy import HierarchyShape, project_source


def _behavior_bitdfas(source):
    module, _ = parse_module(source)
    for parsed in module.classes:
        yield determinize_bitset(nfa_to_bitnfa(behavior_nfa(parsed)))


class TestFlatRoundTrip:
    def test_exact_round_trip(self):
        for bitdfa in _behavior_bitdfas(SECTION_2_MODULE):
            rebuilt = bitdfa_from_flat(bitdfa_to_flat(bitdfa))
            assert rebuilt.n == bitdfa.n
            assert rebuilt.delta == bitdfa.delta
            assert rebuilt.initial == bitdfa.initial
            assert rebuilt.accepting == bitdfa.accepting
            assert rebuilt.alphabet == bitdfa.alphabet

    def test_payload_survives_json(self):
        for bitdfa in _behavior_bitdfas(SECTION_2_MODULE):
            payload = json.loads(json.dumps(bitdfa_to_flat(bitdfa)))
            assert bitset_equivalent(bitdfa_from_flat(payload), bitdfa)

    def test_rejects_missing_keys(self):
        with pytest.raises(FlatFormatError):
            bitdfa_from_flat({"symbols": ["a"]})

    def test_rejects_out_of_range_transition(self):
        payload = {
            "symbols": ["a"],
            "n": 1,
            "delta": [7],
            "initial": 0,
            "accepting": [],
        }
        with pytest.raises(FlatFormatError):
            bitdfa_from_flat(payload)

    def test_rejects_out_of_range_accepting(self):
        payload = {
            "symbols": ["a"],
            "n": 1,
            "delta": [0],
            "initial": 0,
            "accepting": [3],
        }
        with pytest.raises(FlatFormatError):
            bitdfa_from_flat(payload)

    def test_rejects_duplicate_symbols(self):
        payload = {
            "symbols": ["a", "a"],
            "n": 1,
            "delta": [0, 0],
            "initial": 0,
            "accepting": [],
        }
        with pytest.raises(FlatFormatError):
            bitdfa_from_flat(payload)


class TestCachePayloads:
    SHAPE = HierarchyShape(base_operations=3, subsystems=2, seed=2)

    def _run(self, tmp_path, kernel):
        module, violations = parse_module(project_source(self.SHAPE, pairs=1))
        cache = InferenceCache(tmp_path)
        with forced_kernel(kernel):
            batch = BatchVerifier(module, violations, cache=cache).run()
        classes = {parsed.name: parsed for parsed in module.classes}
        return batch, cache, classes

    def test_bitset_run_stores_flat_payloads(self, tmp_path):
        _, cache, classes = self._run(tmp_path, "bitset")
        composite = cached_behavior_dfa(cache, classes["Controller0"], classes)
        assert composite is not None
        assert composite.accepts(())
        assert cached_behavior_dfa(cache, classes["Device0"], classes) is None

    def test_classic_run_still_stores_structured_payloads(self, tmp_path):
        _, cache, classes = self._run(tmp_path, "classic")
        composite = cached_behavior_dfa(cache, classes["Controller0"], classes)
        assert composite is not None
        assert composite.accepts(())

    def test_kernels_cache_language_equal_dfas(self, tmp_path):
        _, bit_cache, classes = self._run(tmp_path / "bit", "bitset")
        _, classic_cache, _ = self._run(tmp_path / "classic", "classic")
        from repro.automata.kernel import dfa_to_bitdfa

        bit = cached_behavior_dfa(bit_cache, classes["Controller0"], classes)
        classic = cached_behavior_dfa(
            classic_cache, classes["Controller0"], classes
        )
        assert bit is not None and classic is not None
        assert bitset_equivalent(dfa_to_bitdfa(bit), dfa_to_bitdfa(classic))

    def test_verdicts_identical_across_kernels(self, tmp_path):
        bit_batch, _, _ = self._run(tmp_path / "bit", "bitset")
        classic_batch, _, _ = self._run(tmp_path / "classic", "classic")
        assert bit_batch.merged().format() == classic_batch.merged().format()


def test_worker_outcome_round_trips_through_processes():
    """A process-pool engine run under the bitset kernel: flat payloads
    must cross the pickle boundary and the run must stay green."""
    module, violations = parse_module(
        project_source(HierarchyShape(base_operations=3, subsystems=2, seed=4), pairs=1)
    )
    with forced_kernel("bitset"):
        batch = BatchVerifier(
            module, violations, jobs=2, executor="process"
        ).run()
    assert batch.ok


def test_bitdfa_to_dfa_view_matches_flat_round_trip():
    for bitdfa in _behavior_bitdfas(SECTION_2_MODULE):
        via_flat = bitdfa_from_flat(bitdfa_to_flat(bitdfa))
        classic_view = bitdfa_to_dfa(bitdfa)
        for word in [(), ("step",)]:
            assert classic_view.accepts(word) == via_flat.accepts(word)
