"""Data model of a parsed, annotated MicroPython module.

These are the frontend's output types: purely syntactic facts extracted
from the source, with method bodies already abstracted into the IR of
:mod:`repro.lang.ast`.  The checker consumes them; nothing here decides
verdicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.ast import Program


class OpKind(enum.Enum):
    """Which ``@op*`` decorator a method carries (Table 1)."""

    MIDDLE = "op"
    INITIAL = "op_initial"
    FINAL = "op_final"
    INITIAL_FINAL = "op_initial_final"

    @property
    def is_initial(self) -> bool:
        return self in (OpKind.INITIAL, OpKind.INITIAL_FINAL)

    @property
    def is_final(self) -> bool:
        return self in (OpKind.FINAL, OpKind.INITIAL_FINAL)


@dataclass(frozen=True)
class ReturnPoint:
    """One exit point of an operation (one ``return`` statement, Table 2).

    ``next_methods`` is the declared next-method set; ``has_user_value``
    records whether the tuple form ``return ["m"], value`` was used.
    """

    exit_id: int
    next_methods: tuple[str, ...]
    has_user_value: bool = False
    lineno: int = 0


@dataclass(frozen=True)
class MatchUse:
    """A ``match`` statement over the result of a constrained call.

    ``handled`` holds one tuple per ``case`` pattern (each pattern a list
    of method-name strings); a trailing ``case _`` wildcard is recorded in
    ``has_wildcard``.  The exhaustiveness analysis compares ``handled``
    with the callee's declared exit points.
    """

    subsystem: str
    method: str
    handled: tuple[tuple[str, ...], ...]
    has_wildcard: bool = False
    lineno: int = 0


@dataclass(frozen=True)
class OperationDef:
    """A parsed operation: decorator kind, exits, abstracted body."""

    name: str
    kind: OpKind
    returns: tuple[ReturnPoint, ...]
    body: Program
    match_uses: tuple[MatchUse, ...] = ()
    calls: frozenset[str] = frozenset()
    lineno: int = 0


@dataclass(frozen=True)
class SubsystemDecl:
    """A constrained field: ``self.<field> = <class_name>(...)`` in ``__init__``."""

    field_name: str
    class_name: str
    lineno: int = 0


@dataclass(frozen=True)
class ParsedClass:
    """An ``@sys`` class as extracted from source."""

    name: str
    subsystem_fields: tuple[str, ...]
    claims: tuple[str, ...]
    operations: tuple[OperationDef, ...]
    subsystems: tuple[SubsystemDecl, ...]
    lineno: int = 0

    @property
    def is_composite(self) -> bool:
        """Composite classes declare subsystem fields in ``@sys([...])``."""
        return bool(self.subsystem_fields)

    def operation(self, name: str) -> OperationDef | None:
        for operation in self.operations:
            if operation.name == name:
                return operation
        return None

    def operation_names(self) -> tuple[str, ...]:
        return tuple(operation.name for operation in self.operations)

    def subsystem(self, field_name: str) -> SubsystemDecl | None:
        for declaration in self.subsystems:
            if declaration.field_name == field_name:
                return declaration
        return None


@dataclass(frozen=True)
class ParsedModule:
    """All ``@sys`` classes of one source file, in source order."""

    classes: tuple[ParsedClass, ...]
    source_name: str = "<string>"

    def get_class(self, name: str) -> ParsedClass | None:
        for parsed in self.classes:
            if parsed.name == name:
                return parsed
        return None

    def class_names(self) -> tuple[str, ...]:
        return tuple(parsed.name for parsed in self.classes)


@dataclass(frozen=True)
class SubsetViolation:
    """A construct outside the supported MicroPython subset."""

    code: str
    message: str
    lineno: int = 0
    class_name: str = ""
    severity: str = "error"

    def format(self) -> str:
        location = f"line {self.lineno}" if self.lineno else "unknown location"
        scope = f" in class {self.class_name}" if self.class_name else ""
        return f"[{self.code}] {self.message} ({location}{scope})"


class FrontendError(ValueError):
    """Raised when a module cannot be parsed into the model at all."""

    def __init__(self, violations: list[SubsetViolation]):
        self.violations = violations
        super().__init__("; ".join(v.format() for v in violations))


#: Map decorator name → OpKind, shared by the parser.
OP_DECORATORS: dict[str, OpKind] = {
    "op": OpKind.MIDDLE,
    "op_initial": OpKind.INITIAL,
    "op_final": OpKind.FINAL,
    "op_initial_final": OpKind.INITIAL_FINAL,
}
