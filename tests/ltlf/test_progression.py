"""Formula progression: the defining law and empty-trace acceptance."""

from repro.ltlf.ast import (
    FALSE,
    TRUE,
    Eventually,
    Globally,
    Next,
    Release,
    Until,
    WeakNext,
    WeakUntil,
    atom,
    conj,
    disj,
    neg,
)
from repro.ltlf.progression import (
    accepts_empty,
    progress,
    progress_trace,
    satisfies_by_progression,
)
from repro.ltlf.semantics import evaluate

A = atom("a")
B = atom("b")


class TestProgressStep:
    def test_atom_hit_and_miss(self):
        assert progress(A, "a") is TRUE
        assert progress(A, "b") is FALSE

    def test_next_unwraps(self):
        assert progress(Next(A), "b") == A
        assert progress(WeakNext(A), "b") == A

    def test_globally_keeps_obligation(self):
        after = progress(Globally(A), "a")
        assert after == conj([TRUE, Globally(A)]) == Globally(A)

    def test_globally_fails_fast(self):
        assert progress(Globally(A), "b") is FALSE

    def test_eventually_satisfied(self):
        assert progress(Eventually(A), "a") is TRUE

    def test_eventually_keeps_waiting(self):
        assert progress(Eventually(A), "b") == Eventually(A)

    def test_until_expansion(self):
        after = progress(Until(A, B), "a")
        assert after == Until(A, B)
        assert progress(Until(A, B), "b") is TRUE

    def test_until_dies_without_either(self):
        assert progress(Until(A, B), "c") is FALSE

    def test_weak_until_same_step_as_until(self):
        assert progress(WeakUntil(A, B), "a") == WeakUntil(A, B)
        assert progress(WeakUntil(A, B), "b") is TRUE

    def test_release_expansion(self):
        after = progress(Release(A, B), "b")
        assert after == Release(A, B)
        assert progress(Release(A, B), "c") is FALSE


class TestAcceptsEmpty:
    def test_weak_operators_accept(self):
        assert accepts_empty(Globally(A))
        assert accepts_empty(WeakUntil(A, B))
        assert accepts_empty(Release(A, B))
        assert accepts_empty(WeakNext(A))

    def test_strong_operators_reject(self):
        assert not accepts_empty(Eventually(A))
        assert not accepts_empty(Until(A, B))
        assert not accepts_empty(Next(A))
        assert not accepts_empty(A)

    def test_boolean_structure(self):
        assert accepts_empty(disj([A, Globally(B)]))
        assert not accepts_empty(conj([A, Globally(B)]))
        assert accepts_empty(neg(A))


class TestAgainstReferenceSemantics:
    TRACES = [
        (),
        ("a",),
        ("b",),
        ("a", "b"),
        ("b", "a"),
        ("a", "a", "b"),
        ("b", "b", "b"),
        ("a", "b", "a", "b"),
    ]
    FORMULAS = [
        A,
        neg(A),
        Next(A),
        WeakNext(A),
        Eventually(B),
        Globally(A),
        Until(A, B),
        WeakUntil(neg(A), B),
        Release(A, B),
        conj([Eventually(A), Eventually(B)]),
        disj([Globally(A), Globally(B)]),
        Globally(disj([neg(A), Next(B)])),
    ]

    def test_progression_equals_direct_evaluation(self):
        for formula in self.FORMULAS:
            for trace in self.TRACES:
                assert satisfies_by_progression(formula, trace) == evaluate(
                    formula, trace
                ), (formula, trace)

    def test_progress_trace_short_circuits_on_constants(self):
        assert progress_trace(Globally(A), ("b", "a", "a")) is FALSE
        assert progress_trace(Eventually(A), ("a", "b", "b")) is TRUE
