"""The parallel batch-verification engine.

Takes a parsed project (one :class:`ParsedModule`, possibly merged from
a directory), schedules its classes into topological waves over the
``@sys`` subsystem DAG (:mod:`repro.engine.scheduler`), and checks the
classes of each wave concurrently on a ``concurrent.futures`` pool.
Verification of a class is the pure function
:func:`repro.core.checker.check_parsed_class`, so workers share nothing
and the merged report is byte-identical to the serial
:class:`repro.core.checker.Checker` regardless of ``jobs``.

With an :class:`~repro.engine.cache.InferenceCache` attached, two cache
layers short-circuit work (keys in :mod:`repro.engine.fingerprint`):

* the **verdict layer** returns a class's diagnostics (and behavior DFA,
  when one was computed) without re-running anything;
* the **inference layer** returns each unchanged method's inferred
  per-exit regexes, so editing one method of a class only re-infers that
  method before the automaton is rebuilt.

A warm re-run of an unchanged project therefore performs no inference,
determinization or minimization at all — it parses, hashes and prints.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.core.checker import check_parsed_class, module_diagnostics
from repro.core.diagnostics import CheckResult
from repro.core.model_io import dfa_to_dict
from repro.core.spec import ClassSpec
from repro.engine.cache import InferenceCache
from repro.engine.fingerprint import class_key, method_key
from repro.engine.metrics import ClassTiming, EngineMetrics
from repro.engine.scheduler import schedule
from repro.engine.serialize import diagnostics_from_list, diagnostics_to_list
from repro.frontend.model_ast import ParsedClass, ParsedModule, SubsetViolation
from repro.regex.ast import Regex, format_regex
from repro.regex.parser import RegexSyntaxError, parse_regex

EXECUTORS = ("thread", "process")


class EngineError(ValueError):
    """Raised on invalid engine configuration."""


# ----------------------------------------------------------------------
# The worker task (module-level so a process pool can pickle it)
# ----------------------------------------------------------------------

def _exit_regexes_from_payload(
    parsed: ParsedClass, payloads: dict[str, dict[str, Any]]
) -> tuple[dict[str, dict[int, Regex]], int, int, dict[str, dict[str, Any]]]:
    """Reconstruct cached inferred behaviors; compute the rest.

    Returns (exit regexes per operation, hits, misses, new payloads to
    persist).  A malformed payload counts as a miss — the worker then
    recomputes and re-emits it.
    """
    from repro.core.behavior import operation_exit_regexes
    from repro.lang.inference import behavior

    exit_regexes: dict[str, dict[int, Regex]] = {}
    fresh: dict[str, dict[str, Any]] = {}
    hits = misses = 0
    for operation in parsed.operations:
        payload = payloads.get(operation.name)
        if payload is not None:
            try:
                exit_regexes[operation.name] = {
                    int(exit_id): parse_regex(text)
                    for exit_id, text in payload["exits"].items()
                }
                hits += 1
                continue
            except (KeyError, TypeError, ValueError, RegexSyntaxError):
                pass  # corrupt entry: fall through to recomputation
        misses += 1
        per_exit = operation_exit_regexes(operation)
        exit_regexes[operation.name] = per_exit
        fresh[operation.name] = {
            "ongoing": format_regex(behavior(operation.body).ongoing),
            "exits": {
                str(exit_id): format_regex(regex)
                for exit_id, regex in per_exit.items()
            },
        }
    return exit_regexes, hits, misses, fresh


def _check_class_task(
    parsed: ParsedClass,
    scope: dict[str, ParsedClass],
    method_payloads: dict[str, dict[str, Any]],
) -> dict[str, Any]:
    """Check one class; everything in and out is picklable.

    ``scope`` carries the parsed classes whose specs the check may read
    (the class itself plus its direct subsystem dependencies).
    """
    started = time.perf_counter()
    exit_regexes, hits, misses, fresh = _exit_regexes_from_payload(
        parsed, method_payloads
    )
    specs: Mapping[str, ClassSpec] = {
        name: ClassSpec.of(cls) for name, cls in scope.items()
    }
    result, dfa = check_parsed_class(parsed, specs, exit_regexes=exit_regexes)
    return {
        "class": parsed.name,
        "diagnostics": diagnostics_to_list(result.diagnostics),
        "dfa": None if dfa is None else dfa_to_dict(dfa),
        "seconds": time.perf_counter() - started,
        "method_hits": hits,
        "method_misses": misses,
        "new_methods": fresh,
    }


# ----------------------------------------------------------------------
# Batch results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BatchResult:
    """Everything one engine run produced."""

    module: ParsedModule
    module_result: CheckResult
    class_results: tuple[tuple[str, CheckResult], ...]
    metrics: EngineMetrics

    def merged(self) -> CheckResult:
        """One report, ordered exactly like ``Checker.check()``:
        module-level diagnostics first, then classes in source order."""
        result = CheckResult(diagnostics=list(self.module_result.diagnostics))
        for _name, class_result in self.class_results:
            result.extend(class_result)
        return result

    @property
    def ok(self) -> bool:
        return self.merged().ok

    def result_for(self, class_name: str) -> CheckResult | None:
        for name, class_result in self.class_results:
            if name == class_name:
                return class_result
        return None


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class BatchVerifier:
    """Verify a parsed project: DAG-scheduled, pooled, cached."""

    def __init__(
        self,
        module: ParsedModule,
        violations: list[SubsetViolation] | None = None,
        *,
        jobs: int = 1,
        executor: str = "thread",
        cache: InferenceCache | None = None,
    ):
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        if executor not in EXECUTORS:
            raise EngineError(
                f"executor must be one of {', '.join(EXECUTORS)}; got {executor!r}"
            )
        self.module = module
        self.violations = list(violations or [])
        self.jobs = jobs
        self.executor = executor
        self.cache = cache

    # ------------------------------------------------------------------

    def _make_pool(self, width: int) -> Executor:
        workers = min(self.jobs, width)
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def _scope_for(self, parsed: ParsedClass) -> dict[str, ParsedClass]:
        """The class itself plus its direct subsystem dependencies —
        the only specs :func:`check_parsed_class` can consult."""
        scope = {parsed.name: parsed}
        for declaration in parsed.subsystems:
            dependency = self.module.get_class(declaration.class_name)
            if dependency is not None:
                scope[dependency.name] = dependency
        return scope

    def _method_payloads(self, parsed: ParsedClass) -> dict[str, dict[str, Any]]:
        if self.cache is None:
            return {}
        payloads: dict[str, dict[str, Any]] = {}
        for operation in parsed.operations:
            payload = self.cache.get("method", method_key(operation))
            if payload is not None:
                payloads[operation.name] = payload
        return payloads

    def run(self) -> BatchResult:
        started = time.perf_counter()
        classes_by_name = {parsed.name: parsed for parsed in self.module.classes}
        waves = schedule(self.module)

        outcomes: dict[str, CheckResult] = {}
        timings: list[ClassTiming] = []
        class_hits = class_misses = method_hits = method_misses = 0
        cache_writes = 0

        for wave_index, wave in enumerate(waves):
            pending: list[tuple[str, str | None]] = []
            for name in wave:
                parsed = classes_by_name[name]
                key: str | None = None
                if self.cache is not None:
                    lookup_started = time.perf_counter()
                    key = class_key(parsed, classes_by_name)
                    payload = self.cache.get("class", key)
                    if payload is not None:
                        try:
                            diagnostics = diagnostics_from_list(
                                payload["diagnostics"]
                            )
                        except (KeyError, TypeError, ValueError):
                            diagnostics = None
                        if diagnostics is not None:
                            outcomes[name] = CheckResult(diagnostics=diagnostics)
                            class_hits += 1
                            timings.append(
                                ClassTiming(
                                    class_name=name,
                                    seconds=time.perf_counter() - lookup_started,
                                    from_cache=True,
                                    wave=wave_index,
                                )
                            )
                            continue
                pending.append((name, key))

            if not pending:
                continue
            class_misses += len(pending)

            tasks = [
                (
                    classes_by_name[name],
                    self._scope_for(classes_by_name[name]),
                    self._method_payloads(classes_by_name[name]),
                )
                for name, _key in pending
            ]
            if self.jobs == 1 or len(pending) == 1:
                raw = [_check_class_task(*task) for task in tasks]
            else:
                with self._make_pool(len(pending)) as pool:
                    raw = list(
                        pool.map(
                            _check_class_task,
                            *zip(*tasks),
                        )
                    )

            for (name, key), outcome in zip(pending, raw):
                outcomes[name] = CheckResult(
                    diagnostics=diagnostics_from_list(outcome["diagnostics"])
                )
                method_hits += outcome["method_hits"]
                method_misses += outcome["method_misses"]
                timings.append(
                    ClassTiming(
                        class_name=name,
                        seconds=outcome["seconds"],
                        from_cache=False,
                        wave=wave_index,
                    )
                )
                if self.cache is not None and key is not None:
                    for operation_name, payload in outcome["new_methods"].items():
                        operation = classes_by_name[name].operation(operation_name)
                        if operation is not None:
                            self.cache.put("method", method_key(operation), payload)
                            cache_writes += 1
                    self.cache.put(
                        "class",
                        key,
                        {
                            "class": name,
                            "diagnostics": outcome["diagnostics"],
                            "dfa": outcome["dfa"],
                            "seconds": outcome["seconds"],
                        },
                    )
                    cache_writes += 1

        ordered = tuple(
            (parsed.name, outcomes[parsed.name]) for parsed in self.module.classes
        )
        metrics = EngineMetrics(
            classes=len(self.module.classes),
            waves=len(waves),
            jobs=self.jobs,
            executor=self.executor,
            wall_seconds=time.perf_counter() - started,
            class_hits=class_hits,
            class_misses=class_misses,
            method_hits=method_hits,
            method_misses=method_misses,
            cache_writes=cache_writes,
            timings=tuple(sorted(timings, key=lambda t: (t.wave, t.class_name))),
        )
        return BatchResult(
            module=self.module,
            module_result=module_diagnostics(self.module, self.violations),
            class_results=ordered,
            metrics=metrics,
        )


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------

def verify_module(
    module: ParsedModule,
    violations: list[SubsetViolation] | None = None,
    *,
    jobs: int = 1,
    executor: str = "thread",
    cache: InferenceCache | None = None,
) -> BatchResult:
    """Run the batch engine on an already-parsed module/project."""
    return BatchVerifier(
        module, violations, jobs=jobs, executor=executor, cache=cache
    ).run()


def cached_behavior_dfa(
    cache: InferenceCache,
    parsed: ParsedClass,
    classes_in_scope: Mapping[str, ParsedClass],
):
    """The behavior DFA stored with a cached verdict, if any.

    Only composite classes that passed the structural gate carry one
    (base-class checks never determinize).  Returns ``None`` on a cache
    miss or when no DFA was recorded.
    """
    from repro.core.model_io import ModelFormatError, dfa_from_dict

    payload = cache.get("class", class_key(parsed, classes_in_scope))
    if payload is None or payload.get("dfa") is None:
        return None
    try:
        return dfa_from_dict(payload["dfa"])
    except ModelFormatError:
        return None


def verify_path(
    path: str | Path,
    *,
    jobs: int = 1,
    executor: str = "thread",
    cache: InferenceCache | None = None,
) -> BatchResult:
    """Parse a file or project directory and run the batch engine."""
    from repro.frontend.parse import parse_file
    from repro.frontend.project import parse_project

    if Path(path).is_dir():
        module, violations = parse_project(path)
    else:
        module, violations = parse_file(path)
    return verify_module(
        module, violations, jobs=jobs, executor=executor, cache=cache
    )
