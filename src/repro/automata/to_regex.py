"""State elimination: NFA → regular expression (the GNFA algorithm).

The other direction of the regularity story: any extracted automaton can
be turned back into a regex, which closes the round trip
``regex → NFA → DFA → regex`` exercised by the Corollary 1 benchmarks.
"""

from __future__ import annotations

from repro.automata.nfa import NFA
from repro.regex.ast import EMPTY, EPSILON, Regex, concat, star, symbol, union


def nfa_to_regex(nfa: NFA) -> Regex:
    """A regular expression for the language of ``nfa``.

    Builds a generalized NFA with a single fresh start and accept state
    and eliminates original states one by one, rewriting the transition
    labels into regexes.  Elimination order is by state name, which keeps
    the output deterministic (though not minimal — regex minimality is
    not needed anywhere; language equality is what the tests check).
    """
    trimmed = nfa.trim()
    start = ("gnfa", "start")
    accept = ("gnfa", "accept")

    # edge[(p, q)] = regex labelling the edge p -> q.
    edges: dict[tuple, Regex] = {}

    def add_edge(source, target, label: Regex) -> None:
        key = (source, target)
        edges[key] = union(edges.get(key, EMPTY), label)

    for state in trimmed.initial_states:
        add_edge(start, state, EPSILON)
    for state in trimmed.accepting_states:
        add_edge(state, accept, EPSILON)
    for source, move_symbol, target in trimmed.iter_transitions():
        label = EPSILON if move_symbol is None else symbol(move_symbol)
        add_edge(source, target, label)

    if not trimmed.states or not trimmed.accepting_states:
        return EMPTY

    for state in sorted(trimmed.states, key=str):
        self_loop = edges.pop((state, state), EMPTY)
        loop_star = star(self_loop)
        incoming = [
            (source, label)
            for (source, target), label in edges.items()
            if target == state and source != state
        ]
        outgoing = [
            (target, label)
            for (source, target), label in edges.items()
            if source == state and target != state
        ]
        for source, _label in incoming:
            edges.pop((source, state), None)
        for target, _label in outgoing:
            edges.pop((state, target), None)
        for source, in_label in incoming:
            for target, out_label in outgoing:
                add_edge(source, target, concat(in_label, concat(loop_star, out_label)))

    return edges.get((start, accept), EMPTY)
