"""Configuration of the ``repro serve`` verification daemon.

One frozen dataclass holds every tuning knob (docs/serve.md has the
operator's guide to each).  The defaults are deliberately conservative:
a small bounded queue, a low per-tenant concurrency cap, and a breaker
that trips after a handful of worker-pool crashes — a daemon that sheds
load explicitly beats one that falls over silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


class ServeConfigError(ValueError):
    """Raised on an invalid daemon configuration."""


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of the verification daemon."""

    #: Listen address; port 0 asks the OS for a free port (the chosen
    #: one is printed, and recorded in ``<serve-root>/endpoint.json``).
    host: str = "127.0.0.1"
    port: int = 8765

    #: Cache directory shared with the batch CLI: the content-addressed
    #: inference cache, the incremental state, and the daemon's own
    #: ``serve/`` spool all live here.
    cache_dir: str = ".repro-cache"

    #: Endpoint of a shared ``repro cache serve`` daemon; when set, the
    #: inference cache layers a remote tier over the local directory
    #: (read-through, write-behind; docs/distributed.md).  ``None``
    #: keeps the daemon local-only.
    remote_cache: str | None = None

    # -- admission control ---------------------------------------------
    #: Bounded queue depth K: submissions past it are shed with an
    #: explicit 429 + Retry-After, never silently dropped.
    queue_depth: int = 16
    #: Max *queued* jobs per tenant (defaults to ``queue_depth``): one
    #: chatty tenant cannot fill the whole queue.
    tenant_queue_cap: int | None = None
    #: Max *executing* jobs per tenant: one slow tenant cannot occupy
    #: every worker slot.
    tenant_concurrency: int = 2

    # -- execution ------------------------------------------------------
    #: Concurrent job slots (each job runs on one executor thread).
    workers: int = 2
    #: ``BatchVerifier(jobs=...)`` within one job.
    engine_jobs: int = 1
    #: Worker pool backend inside a job ("thread" or "process").
    engine_executor: str = "thread"
    #: Per-job wall-clock deadline in seconds, measured from the start
    #: of execution.  Enforced twice over: the per-class supervisor
    #: deadline quarantines slow classes (``ENGINE TIMEOUT``), and a
    #: job-level backstop fails the job outright.
    job_deadline: float = 120.0
    #: Per-class supervisor deadline; ``None`` means "the job deadline"
    #: (a single class can never eat more than the whole budget).
    class_timeout: float | None = None
    #: Re-executions of a job after a worker crash before it fails.
    job_retries: int = 1

    # -- circuit breaker ------------------------------------------------
    #: Consecutive worker-pool crashes that trip the breaker open.
    breaker_threshold: int = 3
    #: First open interval in seconds; doubles per consecutive trip
    #: (deterministic exponential backoff), capped below.
    breaker_backoff: float = 1.0
    breaker_max_backoff: float = 30.0

    # -- lifecycle ------------------------------------------------------
    #: Grace period for SIGTERM drain: in-flight jobs get this long to
    #: finish before the daemon exits anyway (queued jobs are already
    #: checkpointed in the journal either way).
    drain_grace: float = 30.0

    #: Largest accepted request body.
    max_body_bytes: int = 5 * 1024 * 1024

    #: Collect per-request/per-job obs spans (bounded memory cost grows
    #: with served requests; meant for smoke runs and debugging).
    trace: bool = False

    def __post_init__(self) -> None:
        if self.remote_cache is not None and not self.remote_cache.startswith(
            ("http://", "https://")
        ):
            raise ServeConfigError(
                "remote_cache must be an http:// or https:// URL, "
                f"got {self.remote_cache!r}"
            )
        if self.queue_depth < 1:
            raise ServeConfigError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.tenant_queue_cap is not None and self.tenant_queue_cap < 1:
            raise ServeConfigError(
                f"tenant_queue_cap must be >= 1, got {self.tenant_queue_cap}"
            )
        if self.tenant_concurrency < 1:
            raise ServeConfigError(
                f"tenant_concurrency must be >= 1, got {self.tenant_concurrency}"
            )
        if self.workers < 1:
            raise ServeConfigError(f"workers must be >= 1, got {self.workers}")
        if self.job_deadline <= 0:
            raise ServeConfigError(
                f"job_deadline must be positive, got {self.job_deadline}"
            )
        if self.class_timeout is not None and self.class_timeout <= 0:
            raise ServeConfigError(
                f"class_timeout must be positive, got {self.class_timeout}"
            )
        if self.job_retries < 0:
            raise ServeConfigError(
                f"job_retries must be >= 0, got {self.job_retries}"
            )
        if self.breaker_threshold < 1:
            raise ServeConfigError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_backoff <= 0 or self.breaker_max_backoff <= 0:
            raise ServeConfigError("breaker backoff values must be positive")
        if self.drain_grace < 0:
            raise ServeConfigError(
                f"drain_grace must be >= 0, got {self.drain_grace}"
            )

    @property
    def serve_root(self) -> Path:
        """The daemon's persistent spool inside the cache directory."""
        return Path(self.cache_dir) / "serve"

    @property
    def effective_tenant_queue_cap(self) -> int:
        return (
            self.queue_depth
            if self.tenant_queue_cap is None
            else self.tenant_queue_cap
        )

    @property
    def effective_class_timeout(self) -> float:
        return (
            self.job_deadline
            if self.class_timeout is None
            else self.class_timeout
        )
