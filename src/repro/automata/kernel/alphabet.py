"""Dense symbol interning for the bitset kernel.

Every bitset automaton carries an :class:`Alphabet` mapping its event
symbols to dense integer ids ``0..k-1``.  Construction *sorts* the
symbol set first, so the id assignment is a pure function of the set —
two alphabets built from the same symbols in any insertion order are
identical, which is what makes flat-array payloads comparable across
process workers (see the property tests in
``tests/automata/test_alphabet.py``).

Symbols interned *after* construction get the next free id in call
order; callers that need permutation-stable ids for a grown alphabet
rebuild via :meth:`Alphabet.canonical`.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Alphabet:
    """An interner from event symbols (str) to dense integer ids."""

    __slots__ = ("_ids", "_symbols")

    def __init__(self, symbols: Iterable[str] = ()):
        ordered = sorted(set(symbols))
        self._symbols: list[str] = ordered
        self._ids: dict[str, int] = {
            symbol: index for index, symbol in enumerate(ordered)
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(tuple(self._symbols))

    def __repr__(self) -> str:
        return f"Alphabet({self._symbols!r})"

    @property
    def symbols(self) -> tuple[str, ...]:
        """All symbols, in id order (id ``i`` names ``symbols[i]``)."""
        return tuple(self._symbols)

    def id_of(self, symbol: str) -> int:
        """The id of ``symbol``; raises ``KeyError`` when unknown."""
        return self._ids[symbol]

    def get(self, symbol: str, default: int = -1) -> int:
        """The id of ``symbol``, or ``default`` when unknown."""
        return self._ids.get(symbol, default)

    def symbol(self, symbol_id: int) -> str:
        """The symbol with id ``symbol_id``."""
        return self._symbols[symbol_id]

    def decode(self, ids: Iterable[int]) -> tuple[str, ...]:
        """Map a word of symbol ids back to a word of symbols."""
        symbols = self._symbols
        return tuple(symbols[i] for i in ids)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------

    def intern(self, symbol: str) -> int:
        """The id of ``symbol``, adding it (next free id) when new."""
        ids = self._ids
        found = ids.get(symbol)
        if found is not None:
            return found
        index = len(self._symbols)
        self._symbols.append(symbol)
        ids[symbol] = index
        return index

    def is_sorted(self) -> bool:
        """Do ids follow sorted symbol order (the canonical layout)?"""
        return all(
            self._symbols[i] < self._symbols[i + 1]
            for i in range(len(self._symbols) - 1)
        )

    def canonical(self) -> "Alphabet":
        """A fresh alphabet over the same symbols with canonical ids."""
        return Alphabet(self._symbols)

    # ------------------------------------------------------------------
    # Serialization (flat payloads shipped between process workers)
    # ------------------------------------------------------------------

    def to_payload(self) -> list[str]:
        """The JSON-safe form: the symbol list in id order."""
        return list(self._symbols)

    @classmethod
    def from_payload(cls, payload: Iterable[str]) -> "Alphabet":
        """Rebuild from :meth:`to_payload`, preserving the exact ids."""
        alphabet = cls.__new__(cls)
        alphabet._symbols = [str(symbol) for symbol in payload]
        alphabet._ids = {
            symbol: index for index, symbol in enumerate(alphabet._symbols)
        }
        if len(alphabet._ids) != len(alphabet._symbols):
            raise ValueError("alphabet payload contains duplicate symbols")
        return alphabet
