"""Table 1 — Shelley's annotations, where they apply, and their meanings.

Regenerates the table by parsing a class that uses every annotation and
asserting the extracted role of each, then times the full annotation-
recognition pass.
"""

from repro.frontend.model_ast import OpKind
from repro.frontend.parse import parse_module

SOURCE = (
    '@claim("G (a.go -> F a.stop)")\n'
    "@sys(['a'])\n"
    "class Composite:\n"
    "    def __init__(self):\n"
    "        self.a = Base()\n"
    "    @op_initial\n"
    "    def start(self):\n"
    "        self.a.go()\n"
    "        return ['middle']\n"
    "    @op\n"
    "    def middle(self):\n"
    "        return ['stop']\n"
    "    @op_final\n"
    "    def stop(self):\n"
    "        self.a.stop()\n"
    "        return []\n"
    "    @op_initial_final\n"
    "    def both(self):\n"
    "        self.a.go()\n"
    "        self.a.stop()\n"
    "        return []\n"
    "\n"
    "@sys\n"
    "class Base:\n"
    "    @op_initial\n"
    "    def go(self):\n"
    "        return ['stop']\n"
    "    @op_final\n"
    "    def stop(self):\n"
    "        return []\n"
)

#: The rows of Table 1: annotation -> (applies to, recognised meaning).
EXPECTED_ROWS = [
    ("@claim", "class", "temporal requirement"),
    ("@sys", "class", "base class"),
    ("@sys([...])", "class", "composite class"),
    ("@op_initial", "method", "invoke in first place"),
    ("@op_final", "method", "invoke in last place"),
    ("@op_initial_final", "method", "invoke in first and last places"),
    ("@op", "method", "invoke in between an initial and final methods"),
]


def _extract_rows():
    module, violations = parse_module(SOURCE)
    assert violations == []
    composite = module.get_class("Composite")
    base = module.get_class("Base")

    rows = []
    # @claim on a class.
    assert composite.claims == ("G (a.go -> F a.stop)",)
    rows.append(("@claim", "class", "temporal requirement"))
    # @sys bare = base class; @sys([...]) = composite class.
    assert not base.is_composite
    rows.append(("@sys", "class", "base class"))
    assert composite.is_composite
    rows.append(("@sys([...])", "class", "composite class"))
    # The four method annotations.
    kinds = {op.name: op.kind for op in composite.operations}
    assert kinds["start"] is OpKind.INITIAL
    rows.append(("@op_initial", "method", "invoke in first place"))
    assert kinds["stop"] is OpKind.FINAL
    rows.append(("@op_final", "method", "invoke in last place"))
    assert kinds["both"] is OpKind.INITIAL_FINAL
    rows.append(("@op_initial_final", "method", "invoke in first and last places"))
    assert kinds["middle"] is OpKind.MIDDLE
    rows.append(("@op", "method", "invoke in between an initial and final methods"))
    return rows


def test_table1_annotations(benchmark):
    rows = benchmark(_extract_rows)
    assert rows == EXPECTED_ROWS
    print("\nTable 1 (reproduced):")
    print(f"  {'Annotation':<20} {'Applies to':<12} Meaning")
    for annotation, target, meaning in rows:
        print(f"  {annotation:<20} {target:<12} {meaning}")
