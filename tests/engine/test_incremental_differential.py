"""The differential harness: incremental == cold, always.

The incremental engine's whole contract is one equation — after any
edit, ``verify_incremental`` must produce a report *byte-identical* to a
fresh cold run of the same parse, while re-checking *exactly* the dirty
set the documented rule predicts (docs/incremental.md).  This suite
pins both halves over randomly generated projects and random edit
sequences:

* **project model** — a dict of named classes, each either a base
  (linear ``step0 → … → []`` protocol, optional back-edge, blank-line
  padding) or a composite (one subsystem field, a chain of ``run``
  operations, padding).  Every class renders to its *own* source string
  and is parsed separately, so a padding edit shifts only that class's
  line numbers — the realistic "edited one file" shape;
* **edits** — body-only change, return-list (spec) change, class
  add/remove, rename, dependency rewire;
* **prediction** — the dirty set is recomputed *independently* from the
  model diff (not from the planner's own fingerprints): added classes,
  classes whose rendered source changed, and classes naming a subsystem
  that was added, removed, or spec-changed;
* **fault profiles** — the same equation must hold under injected
  worker delays and cache-entry corruption (the ``delay`` and
  ``corrupt`` actions; ``raise``/``kill`` would make cold and
  incremental runs consume a shared ``times=`` budget differently, so
  they are exercised by the supervisor suite instead).
"""

import tempfile
from dataclasses import dataclass, replace
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import faults
from repro.engine.cache import InferenceCache
from repro.engine.engine import BatchVerifier
from repro.engine.incremental import verify_incremental
from repro.frontend.model_ast import ParsedModule
from repro.frontend.parse import parse_module

# ----------------------------------------------------------------------
# The project model and its renderer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BaseModel:
    """A leaf protocol class: ``step0 → step1 → … → []``."""

    steps: int = 2  # >= 2: initial plus final
    back_edge: bool = False  # step0 may also return to itself (spec change)
    pad: int = 0  # leading blank lines (lineno-only change)


@dataclass(frozen=True)
class CompModel:
    """A composite driving one subsystem field through ``dep_steps`` calls."""

    dep: str  # named subsystem class; may dangle
    dep_steps: int = 2  # calls step0..step{n-1} (body-only change)
    ops: int = 1  # chained run operations (spec change)
    pad: int = 0


def render(name, model):
    lines = [""] * model.pad
    if isinstance(model, BaseModel):
        lines += ["@sys", f"class {name}:"]
        for index in range(model.steps):
            if index == 0:
                decorator = "@op_initial"
            elif index == model.steps - 1:
                decorator = "@op_final"
            else:
                decorator = "@op"
            successors = []
            if index < model.steps - 1:
                successors.append(f"step{index + 1}")
                if index == 0 and model.back_edge:
                    successors.append("step0")
            listed = ", ".join(repr(s) for s in successors)
            lines += [
                f"    {decorator}",
                f"    def step{index}(self):",
                f"        return [{listed}]",
            ]
    else:
        lines += [
            "@sys(['s0'])",
            f"class {name}:",
            "    def __init__(self):",
            f"        self.s0 = {model.dep}()",
        ]
        for op_index in range(model.ops):
            if model.ops == 1:
                decorator = "@op_initial_final"
            elif op_index == 0:
                decorator = "@op_initial"
            elif op_index == model.ops - 1:
                decorator = "@op_final"
            else:
                decorator = "@op"
            lines += [f"    {decorator}", f"    def run{op_index}(self):"]
            if op_index == 0:
                lines += [
                    f"        self.s0.step{step}()"
                    for step in range(model.dep_steps)
                ]
            else:
                lines.append("        pass")
            if op_index < model.ops - 1:
                lines.append(f"        return ['run{op_index + 1}']")
            else:
                lines.append("        return []")
    return "\n".join(lines) + "\n"


def build_module(project):
    """Render and parse each class *separately*, then merge.

    Per-class parsing keeps a padding edit's lineno shift local to the
    edited class, like a one-file edit in a multi-file project.
    """
    classes, violations = [], []
    for name in sorted(project):
        module, file_violations = parse_module(
            render(name, project[name]), source_name=name
        )
        assert len(module.classes) == 1
        classes.append(module.classes[0])
        violations.extend(file_violations)
    return ParsedModule(classes=tuple(classes), source_name="<diff>"), violations


# ----------------------------------------------------------------------
# Independent dirtiness prediction (from the model diff, not the planner)
# ----------------------------------------------------------------------


def spec_shape(model):
    """The model fields that determine the class's *spec structure*."""
    if isinstance(model, BaseModel):
        return ("base", model.steps, model.back_edge)
    return ("comp", model.ops)


def named_deps(model):
    return (model.dep,) if isinstance(model, CompModel) else ()


def predict_dirty(old, new):
    added = {name for name in new if name not in old}
    removed = {name for name in old if name not in new}
    source_changed = {
        name for name in new if name in old and old[name] != new[name]
    }
    spec_events = added | removed | {
        name
        for name in new
        if name in old and spec_shape(old[name]) != spec_shape(new[name])
    }
    dirty = added | source_changed
    for name, model in new.items():
        if any(dep in spec_events for dep in named_deps(model)):
            dirty.add(name)
    return dirty


# ----------------------------------------------------------------------
# Random edit sequences
# ----------------------------------------------------------------------

EDIT_KINDS = ("body", "returns", "add", "remove", "rename", "rewire")


def apply_edit(draw, project, fresh):
    """Mutate ``project`` in place with one randomly drawn edit."""
    kind = draw(st.sampled_from(EDIT_KINDS))
    names = sorted(project)
    if kind == "body":
        name = draw(st.sampled_from(names))
        model = project[name]
        if isinstance(model, BaseModel):
            project[name] = replace(model, pad=model.pad + 1)
        elif draw(st.booleans()):
            project[name] = replace(model, dep_steps=model.dep_steps + 1)
        else:
            project[name] = replace(model, pad=model.pad + 1)
    elif kind == "returns":
        name = draw(st.sampled_from(names))
        model = project[name]
        if isinstance(model, BaseModel):
            project[name] = replace(model, back_edge=not model.back_edge)
        else:
            project[name] = replace(model, ops=1 if model.ops > 1 else 2)
    elif kind == "add":
        name = f"C{next(fresh)}"
        if draw(st.booleans()):
            project[name] = BaseModel(steps=draw(st.integers(2, 4)))
        else:
            dep = draw(st.sampled_from(names + ["Ghost"]))
            project[name] = CompModel(dep=dep, dep_steps=draw(st.integers(1, 3)))
    elif kind == "remove" and len(names) > 1:
        del project[draw(st.sampled_from(names))]
    elif kind == "rename":
        old_name = draw(st.sampled_from(names))
        project[f"C{next(fresh)}"] = project.pop(old_name)
    elif kind == "rewire":
        comps = [n for n in names if isinstance(project[n], CompModel)]
        if comps:
            name = draw(st.sampled_from(comps))
            dep = draw(st.sampled_from(names + ["Ghost"]))
            project[name] = replace(project[name], dep=dep)


def initial_project(draw):
    project = {"Dev0": BaseModel(steps=draw(st.integers(2, 4)))}
    for index in range(draw(st.integers(0, 2))):
        project[f"Dev{index + 1}"] = BaseModel(steps=draw(st.integers(2, 4)))
    bases = sorted(project)
    for index in range(draw(st.integers(1, 3))):
        dep = draw(st.sampled_from(bases + ["Ghost"]))
        project[f"Ctl{index}"] = CompModel(
            dep=dep, dep_steps=draw(st.integers(1, 4))
        )
    return project


# ----------------------------------------------------------------------
# The differential property
# ----------------------------------------------------------------------


def run_differential(data, fault_spec=None):
    # Installed per example (not via a function-scoped fixture, which
    # Hypothesis rejects): an empty plan shields the run from ambient
    # REPRO_FAULTS; the engine conftest clears the install afterwards.
    if fault_spec is not None:
        faults.install(faults.parse_faults(fault_spec))
    else:
        faults.install(faults.FaultPlan(()))
    project = initial_project(data.draw)
    fresh = iter(range(10_000))
    with tempfile.TemporaryDirectory() as scratch:
        state_file = Path(scratch) / "state.json"
        cache = InferenceCache(Path(scratch) / "cache")
        previous = {}
        edits = data.draw(st.integers(1, 5))
        for _round in range(edits + 1):  # round 0 is the cold first run
            module, violations = build_module(project)
            incremental = verify_incremental(
                module,
                list(violations),
                state_file=state_file,
                cache=cache,
            )
            cold = BatchVerifier(module, list(violations)).run()

            assert (
                incremental.batch.merged().format() == cold.merged().format()
            ), "incremental report diverged from the cold run"
            predicted = predict_dirty(previous, project)
            assert set(incremental.plan.dirty) == predicted
            executed = {
                timing.class_name
                for timing in incremental.batch.metrics.timings
                if not timing.from_state
            }
            assert executed == predicted
            assert incremental.batch.metrics.reused_verdicts == len(
                project
            ) - len(predicted)

            previous = dict(project)
            apply_edit(data.draw, project, fresh)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_incremental_equals_cold(data):
    run_differential(data)


@pytest.mark.parametrize(
    "fault_spec",
    [
        "worker:delay:*:arg=0.001",
        "cache-put:corrupt:*:p=0.5",
    ],
    ids=["delay", "corrupt"],
)
@given(st.data())
@settings(max_examples=8, deadline=None)
def test_incremental_equals_cold_under_faults(fault_spec, data):
    run_differential(data, fault_spec=fault_spec)
