"""The claim-syntax parser."""

import pytest

from repro.ltlf.ast import (
    FALSE,
    TRUE,
    Eventually,
    Globally,
    Next,
    Release,
    Until,
    WeakNext,
    WeakUntil,
    atom,
    conj,
    disj,
    neg,
)
from repro.ltlf.parser import ClaimSyntaxError, parse_claim

A = atom("a.open")
B = atom("b.open")


class TestAtoms:
    def test_event_atom(self):
        assert parse_claim("a.open") == A

    def test_plain_identifier(self):
        assert parse_claim("open_a") == atom("open_a")

    def test_constants(self):
        assert parse_claim("true") is TRUE
        assert parse_claim("false") is FALSE

    def test_reserved_names_rejected_as_atoms(self):
        with pytest.raises(ClaimSyntaxError):
            parse_claim("a.open W")  # W with no right operand


class TestOperators:
    def test_paper_claim(self):
        assert parse_claim("(!a.open) W b.open") == WeakUntil(neg(A), B)

    def test_weak_until_without_parens(self):
        assert parse_claim("!a.open W b.open") == WeakUntil(neg(A), B)

    def test_until(self):
        assert parse_claim("a.open U b.open") == Until(A, B)

    def test_release(self):
        assert parse_claim("a.open R b.open") == Release(A, B)

    def test_temporal_right_associative(self):
        parsed = parse_claim("a.open U b.open U c")
        assert parsed == Until(A, Until(B, atom("c")))

    def test_unary_operators(self):
        assert parse_claim("X a.open") == Next(A)
        assert parse_claim("X[w] a.open") == WeakNext(A)
        assert parse_claim("F a.open") == Eventually(A)
        assert parse_claim("G a.open") == Globally(A)

    def test_stacked_unaries(self):
        assert parse_claim("G F a.open") == Globally(Eventually(A))
        assert parse_claim("! X a.open") == neg(Next(A))

    def test_boolean_precedence(self):
        parsed = parse_claim("a.open & b.open | c")
        assert parsed == disj([conj([A, B]), atom("c")])

    def test_doubled_boolean_tokens_accepted(self):
        assert parse_claim("a.open && b.open") == conj([A, B])
        assert parse_claim("a.open || b.open") == disj([A, B])

    def test_implication(self):
        parsed = parse_claim("a.open -> F b.open")
        assert parsed == disj([neg(A), Eventually(B)])

    def test_implication_right_associative(self):
        parsed = parse_claim("a.open -> b.open -> c")
        assert parsed == disj([neg(A), disj([neg(B), atom("c")])])

    def test_temporal_binds_tighter_than_and(self):
        parsed = parse_claim("a.open U b.open & c")
        assert parsed == conj([Until(A, B), atom("c")])

    def test_useful_response_pattern(self):
        # G (open -> F close): every open is eventually closed.
        parsed = parse_claim("G (open -> F close)")
        assert parsed == Globally(disj([neg(atom("open")), Eventually(atom("close"))]))


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "(", "a.open W", "& a", "a.open !", "()", "a.open (b.open)", "->"],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ClaimSyntaxError):
            parse_claim(text)

    def test_unbalanced_parens(self):
        with pytest.raises(ClaimSyntaxError):
            parse_claim("(a.open W b.open")
