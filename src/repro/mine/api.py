"""End-to-end mining of a module: parse, instantiate, collect, learn, diff.

The static side comes from the frontend (``@sys`` classes parsed to
:class:`~repro.core.spec.ClassSpec`); the dynamic side from *executing*
the module — the annotations are behavior-preserving taggers, so the
same source is both analyzable and runnable.  Each class is wrapped by
the runtime monitor, driven through a transition-covering plus seeded
random corpus, mined into a DFA, and (optionally) diffed against its
static model.

Reports are deterministic byte for byte for a fixed ``(source, config)``:
no timestamps, no wall-clock numbers, sorted rendering throughout.
Timings live in the metrics payload only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.spec import ClassSpec
from repro.frontend.model_ast import FrontendError
from repro.frontend.parse import parse_module
from repro.mine.collect import (
    CollectConfig,
    CollectError,
    collect_corpus,
    transition_coverage,
)
from repro.mine.corpus import TraceCorpus
from repro.mine.diff import DiffResult, diff_mined
from repro.mine.learn import MinedModel, mine_corpus
from repro.obs.tracer import NULL_TRACER
from repro.runtime.monitor import MonitorError, monitored


class MineError(Exception):
    """The module could not be mined (parse/exec/monitor failure)."""


@dataclass
class ClassMineResult:
    """Everything mining produced for one class."""

    class_name: str
    corpus: TraceCorpus
    model: MinedModel
    coverage: float
    diff: DiffResult | None = None
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """No soundness violation and no conformance fault observed."""
        if self.corpus.notes:
            return False
        return self.diff is None or self.diff.sound

    def format(self) -> str:
        stats = self.corpus.stats()
        lines = [
            f"class {self.class_name}: corpus {stats['samples']} runs / "
            f"{stats['events']} events / {stats['positive_words']} lifecycles, "
            f"coverage {self.coverage:.2f}, "
            f"mined {self.model.stats.mined_states} states "
            f"(pta {self.model.stats.pta_states}, "
            f"merges {self.model.stats.merges_accepted})"
        ]
        # Collapse repeats (a crashing op body leaves one note per run)
        # but keep first-seen order and the total count.
        counts: dict[str, int] = {}
        for note in self.corpus.notes:
            counts[note] = counts.get(note, 0) + 1
        for note, count in counts.items():
            suffix = f" (x{count})" if count > 1 else ""
            lines.append(f"  note: {note}{suffix}")
        if self.diff is not None:
            lines.append("  " + self.diff.format().replace("\n", "\n  "))
        return "\n".join(lines)


@dataclass
class MineReport:
    """The full mining run over one module."""

    source_name: str
    results: list[ClassMineResult] = field(default_factory=list)
    config: CollectConfig = CollectConfig()

    @property
    def ok(self) -> bool:
        return all(result.clean for result in self.results)

    def divergent(self) -> list[ClassMineResult]:
        return [
            result
            for result in self.results
            if result.diff is not None and not result.diff.equivalent
        ]

    def format(self) -> str:
        verdict = "CLEAN" if self.ok else "DIVERGENT"
        header = (
            f"mine {self.source_name}: {len(self.results)} class(es), "
            f"seed {self.config.seed} -> {verdict}"
        )
        lines = [header]
        lines.extend(result.format() for result in self.results)
        return "\n".join(lines)

    def metrics(self) -> dict[str, Any]:
        """The ``mine`` metrics section (see docs/mining.md)."""
        section = {
            "classes": len(self.results),
            "corpus_samples": sum(len(r.corpus) for r in self.results),
            "corpus_events": sum(r.corpus.event_count() for r in self.results),
            "pta_states": sum(r.model.stats.pta_states for r in self.results),
            "mined_states": sum(r.model.stats.mined_states for r in self.results),
            "merges_accepted": sum(
                r.model.stats.merges_accepted for r in self.results
            ),
            "divergent": len(self.divergent()),
            "unsound": sum(
                1
                for r in self.results
                if r.diff is not None and not r.diff.sound
            ),
            "notes": sum(len(r.corpus.notes) for r in self.results),
            "wall_seconds": sum(
                sum(r.seconds.values()) for r in self.results
            ),
        }
        return {"mine": section}


#: Names the executable view of a module needs even when the source does
#: not import them (workload generators emit bare annotated classes).
def _exec_namespace() -> dict[str, Any]:
    from repro.frontend import decorators

    return {
        "sys": decorators.sys,
        "claim": decorators.claim,
        "op": decorators.op,
        "op_initial": decorators.op_initial,
        "op_final": decorators.op_final,
        "op_initial_final": decorators.op_initial_final,
    }


def load_implementations(
    source: str, source_name: str = "<mine>"
) -> dict[str, type]:
    """Execute ``source`` and return its class objects by name."""
    namespace = _exec_namespace()
    try:
        exec(compile(source, source_name, "exec"), namespace)
    except Exception as error:  # noqa: BLE001 - surfaced as a MineError
        raise MineError(
            f"cannot execute {source_name}: {type(error).__name__}: {error}"
        ) from error
    return {
        name: obj for name, obj in namespace.items() if isinstance(obj, type)
    }


def mine_source(
    source: str,
    source_name: str = "<mine>",
    class_name: str | None = None,
    config: CollectConfig = CollectConfig(),
    diff: bool = True,
    tracer=NULL_TRACER,
) -> MineReport:
    """Mine every ``@sys`` class of ``source`` (or just ``class_name``)."""
    try:
        module, violations = parse_module(source, source_name=source_name)
    except FrontendError as error:
        raise MineError(f"cannot parse {source_name}: {error}") from error
    errors = [v for v in violations if v.severity == "error"]
    if errors:
        raise MineError(
            f"cannot mine {source_name}: "
            + "; ".join(v.format() for v in errors)
        )
    parsed_classes = list(module.classes)
    if class_name is not None:
        parsed_classes = [c for c in parsed_classes if c.name == class_name]
        if not parsed_classes:
            raise MineError(
                f"{source_name} defines no @sys class named {class_name}"
            )
    implementations = load_implementations(source, source_name)

    report = MineReport(source_name=source_name, config=config)
    with tracer.span("mine-run", source_name, seed=config.seed):
        # Monitor every spec'd class up front so composite corpora run
        # with their subsystems enforced too.
        specs: dict[str, ClassSpec] = {}
        for parsed in module.classes:
            implementation = implementations.get(parsed.name)
            if implementation is None:
                continue
            spec = ClassSpec.of(parsed)
            specs[parsed.name] = spec
            try:
                monitored(implementation, spec=spec)
            except MonitorError as error:
                raise MineError(
                    f"cannot monitor {parsed.name}: {error}"
                ) from error

        for parsed in parsed_classes:
            implementation = implementations.get(parsed.name)
            if implementation is None:
                raise MineError(
                    f"{source_name} executed but defines no class "
                    f"object named {parsed.name}"
                )
            spec = specs[parsed.name]
            result = _mine_class(implementation, spec, config, diff, tracer)
            report.results.append(result)
    return report


def _mine_class(
    implementation: type,
    spec: ClassSpec,
    config: CollectConfig,
    diff: bool,
    tracer,
) -> ClassMineResult:
    seconds: dict[str, float] = {}
    with tracer.span("mine-class", spec.name):
        started = time.perf_counter()
        with tracer.span("phase", "mine-collect"):
            try:
                corpus = collect_corpus(
                    implementation, spec, config=config, tracer=tracer
                )
            except CollectError as error:
                raise MineError(str(error)) from error
        seconds["collect"] = time.perf_counter() - started

        started = time.perf_counter()
        with tracer.span("phase", "mine-learn"):
            model = mine_corpus(corpus, tracer=tracer)
        seconds["learn"] = time.perf_counter() - started

        diff_result: DiffResult | None = None
        if diff:
            started = time.perf_counter()
            with tracer.span("phase", "mine-diff"):
                diff_result = diff_mined(model, spec, tracer=tracer)
            seconds["diff"] = time.perf_counter() - started
        coverage = transition_coverage(spec, corpus)
        tracer.event(
            "mine-class-done",
            class_name=spec.name,
            coverage=round(coverage, 4),
        )
    return ClassMineResult(
        class_name=spec.name,
        corpus=corpus,
        model=model,
        coverage=coverage,
        diff=diff_result,
        seconds=seconds,
    )


def mine_path(
    path: str | Path,
    class_name: str | None = None,
    config: CollectConfig = CollectConfig(),
    diff: bool = True,
    tracer=NULL_TRACER,
) -> MineReport:
    """Mine a module file (see :func:`mine_source`)."""
    path = Path(path)
    if path.is_dir():
        raise MineError(
            "repro mine works on single module files; "
            "point it at one file of the project"
        )
    try:
        source = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise MineError(f"no such file: {path}")
    return mine_source(
        source,
        source_name=str(path),
        class_name=class_name,
        config=config,
        diff=diff,
        tracer=tracer,
    )
