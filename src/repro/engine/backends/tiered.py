"""Local read-through over a remote cache, with write-behind.

The deployment shape for fleets (docs/distributed.md): every worker
keeps its private ``.repro-cache/`` tree as tier one and shares a
``repro cache serve`` endpoint as tier two.

* **Reads** hit the local tree first; a local miss consults the remote,
  and a remote hit is *promoted* into the local tree — but only after
  the envelope's seal verifies, so a corrupt or hostile remote byte
  stream can never take root locally.
* **Writes** land locally synchronously (verification latency never
  waits on the network) and are replicated to the remote by a
  write-behind thread; :meth:`flush` drains the replication queue, and
  a remote replication failure is counted, never raised.
* **Degradation**: after :attr:`failure_threshold` *consecutive* remote
  failures the tier stops talking to the remote for the rest of the
  run — one ``remote-degraded`` event, ``stats.remote_degraded`` set,
  and the run continues local-only at full fidelity.  A single success
  before the threshold resets the streak.

Healing deletes (:meth:`delete`) touch only the local tier: if a local
entry went corrupt, the remote's sealed copy is exactly what should be
re-promoted on the next read.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Any

from repro.engine.backends.base import CacheBackend, RemoteUnavailable

#: Consecutive remote failures before the run degrades to local-only.
DEFAULT_FAILURE_THRESHOLD = 3

_STOP = object()


class TieredBackend(CacheBackend):
    """Local tier in front of a remote tier; see the module docstring."""

    def __init__(
        self,
        local: CacheBackend,
        remote: CacheBackend,
        *,
        write_behind: bool = True,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
    ) -> None:
        super().__init__()
        self.local = local
        self.remote = remote
        self.failure_threshold = max(1, failure_threshold)
        self.degraded = False
        self._failures = 0
        self._degrade_guard = threading.Lock()
        self._queue: queue.Queue[Any] | None = None
        self._writer: threading.Thread | None = None
        if write_behind:
            self._queue = queue.Queue()
            self._writer = threading.Thread(
                target=self._replicate_forever,
                name="repro-cache-write-behind",
                daemon=True,
            )
            self._writer.start()

    @property
    def local_root(self) -> Path | None:
        return self.local.local_root

    @property
    def supports_scan(self) -> bool:  # type: ignore[override]
        return self.local.supports_scan

    def bind(self, owner: Any) -> None:
        super().bind(owner)
        self.local.bind(owner)
        self.remote.bind(owner)

    # -- reads ----------------------------------------------------------

    def get_text(self, namespace: str, key: str) -> str | None:
        # An unreadable *local* entry propagates so the cache heals it;
        # the heal deletes the local copy only, and the remote's sealed
        # copy is re-promoted on the next read.
        text = self.local.get_text(namespace, key)
        if text is not None:
            return text
        if self.degraded:
            return None
        try:
            text = self.remote.get_text(namespace, key)
        except RemoteUnavailable:
            self._remote_failed()
            return None
        self._remote_ok()
        if text is None:
            return None
        from repro.engine.cache import classify_entry

        verdict, _ = classify_entry(text)
        if verdict != "ok":
            # Never promote bytes whose seal does not verify; the entry
            # still reaches the cache as a miss, not as data.
            return None
        try:
            self.local.put_text(namespace, key, text)
        except OSError:
            # Promotion is an optimization; serving the remote copy is
            # correct either way.
            pass
        return text

    # -- writes ---------------------------------------------------------

    def put_text(self, namespace: str, key: str, text: str) -> None:
        self.local.put_text(namespace, key, text)
        if self.degraded:
            return
        if self._queue is not None:
            self._queue.put((namespace, key, text))
        else:
            self._replicate(namespace, key, text)

    def delete(self, namespace: str, key: str) -> bool:
        return self.local.delete(namespace, key)

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        if self._queue is not None:
            self._queue.join()
        self.local.flush()

    def close(self) -> None:
        if self._queue is not None and self._writer is not None:
            self._queue.join()
            self._queue.put(_STOP)
            self._writer.join(timeout=5.0)
        self.local.close()
        self.remote.close()

    # -- replication machinery ------------------------------------------

    def _replicate_forever(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                namespace, key, text = item
                if not self.degraded:
                    self._replicate(namespace, key, text)
            finally:
                self._queue.task_done()

    def _replicate(self, namespace: str, key: str, text: str) -> None:
        try:
            self.remote.put_text(namespace, key, text)
        except RemoteUnavailable:
            self._remote_failed()
        else:
            self._remote_ok()

    def _remote_ok(self) -> None:
        with self._degrade_guard:
            self._failures = 0

    def _remote_failed(self) -> None:
        with self._degrade_guard:
            if self.degraded:
                return
            self._failures += 1
            if self._failures < self.failure_threshold:
                return
            self.degraded = True
        stats = self._stats()
        if stats is not None:
            stats.remote_degraded += 1
        self._event("remote-degraded", failures=self.failure_threshold)
