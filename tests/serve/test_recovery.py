"""The PR's chaos acceptance scenario: SIGKILL the daemon mid-job, then
prove the restarted daemon recovers the journaled queue and serves
**byte-identical** verdicts, with the shared store auditing clean."""

import subprocess
import sys

from tests.serve.conftest import SIGKILLED, SRC_DIR


def batch_check(target, cache_dir):
    """A cold ``repro check`` subprocess — the reference verdict."""
    return subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "check", str(target),
            "--cache", "--cache-dir", str(cache_dir),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR},
    )


def cache_verify(cache_dir):
    return subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "cache", "verify",
            "--cache-dir", str(cache_dir),
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env={"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR},
    )


class TestSigkillRecovery:
    def test_injected_sigkill_mid_dispatch(
        self, daemon_factory, tmp_path, example_source
    ):
        """The ``serve-dispatch`` fault site kills the daemon at the
        worst moment: the job journaled RUNNING, nothing executed."""
        cache = tmp_path / "cache"
        daemon = daemon_factory(
            "--faults", "serve-dispatch:sigkill:*:times=1",
            cache_dir=cache,
        )
        _status, job, _headers = daemon.submit(
            {"greenhouse.py": example_source}, tenant="alice"
        )
        assert _status == 202
        assert daemon.proc.wait(timeout=60) == SIGKILLED

        restarted = daemon_factory(cache_dir=cache)
        assert "1 job(s) recovered" in restarted.ready_line
        done = restarted.wait_job(job["id"])
        assert done["state"] == "done"
        assert done["recovered"] == 1
        daemon_report = done["report"]
        rc, _err = restarted.terminate()
        assert rc == 0

        # Byte-identity: a pristine batch run over the spooled sources
        # (fresh cache — no shared warm state) prints the same verdict.
        spool = cache / "serve" / "spool" / job["id"] / "greenhouse.py"
        reference = batch_check(spool, tmp_path / "pristine-cache")
        assert reference.returncode == 0
        assert reference.stdout == daemon_report + "\n"

        # And the store the crash tore through audits clean.
        assert cache_verify(cache).returncode == 0

    def test_external_sigkill_while_running(
        self, daemon_factory, tmp_path, example_source
    ):
        """SIGKILL from outside while the job is mid-execution."""
        cache = tmp_path / "cache"
        daemon = daemon_factory(
            # Hold the job in RUNNING long enough to kill deterministically.
            "--faults", "serve-dispatch:delay:*:arg=10",
            cache_dir=cache,
        )
        _status, job, _headers = daemon.submit(
            {"greenhouse.py": example_source}, tenant="alice"
        )
        # Wait until the journal says RUNNING, then murder the daemon.
        for _ in range(200):
            status, record = daemon.get(f"/v1/jobs/{job['id']}")
            if record["state"] == "running":
                break
        assert record["state"] == "running"
        assert daemon.sigkill() == SIGKILLED

        restarted = daemon_factory(cache_dir=cache)
        done = restarted.wait_job(job["id"])
        assert done["state"] == "done"
        assert done["ok"] is True
        assert done["recovered"] == 1
        rc, _err = restarted.terminate()
        assert rc == 0
        assert cache_verify(cache).returncode == 0

    def test_kill_restart_kill_restart(
        self, daemon_factory, tmp_path, example_source
    ):
        """Two crashes in a row: the recovery counter keeps score and
        the verdict still lands."""
        cache = tmp_path / "cache"
        daemon = daemon_factory(
            "--faults", "serve-dispatch:sigkill:*:times=1", cache_dir=cache
        )
        _status, job, _headers = daemon.submit(
            {"greenhouse.py": example_source}
        )
        assert daemon.proc.wait(timeout=60) == SIGKILLED

        second = daemon_factory(
            "--faults", "serve-dispatch:sigkill:*:times=1", cache_dir=cache
        )
        assert second.proc.wait(timeout=60) == SIGKILLED

        third = daemon_factory(cache_dir=cache)
        done = third.wait_job(job["id"])
        assert done["state"] == "done"
        assert done["recovered"] == 2
        rc, _err = third.terminate()
        assert rc == 0
