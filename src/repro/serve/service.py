"""The verification service: queue, breaker, journal and workers, wired.

:class:`VerificationService` is the daemon minus HTTP — everything here
is driven through plain method calls from the event loop, which is what
the in-process tests exercise (the HTTP layer in
:mod:`repro.serve.http` is a thin translation on top).

The lifecycle of a submission::

    submit()           admission control: draining? breaker open? queue
                       full? tenant over cap?  → explicit AdmissionError
                       (never a silent drop); otherwise spool the
                       sources, journal the QUEUED record, enqueue
    dispatcher loop    round-robin take() across tenants, gated on free
                       worker slots and the circuit breaker
    _run_job()         execute on the thread pool under the job's
                       wall-clock deadline; crashes retry up to
                       job_retries then fail the job and feed the
                       breaker; every transition is journaled

Execution happens in :func:`execute_job`, a module-level pure-ish
function running the existing :class:`~repro.engine.engine.BatchVerifier`
supervisor with the shared content-addressed cache — the per-class
timeout defaults to the job deadline, so the supervisor (not the
service) is what bounds a runaway class and stamps ``ENGINE TIMEOUT``
quarantine diagnostics into the report.  The ``serve-dispatch`` fault
site fires at the top of the worker, after the journal write: a
``sigkill`` rule there dies with the job journaled as RUNNING, which is
exactly what the recovery chaos test needs.
"""

from __future__ import annotations

import os
import time
import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Callable

from repro.engine import faults
from repro.engine.cache import InferenceCache
from repro.engine.engine import verify_path
from repro.frontend.model_ast import FrontendError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.jobs import (
    DONE,
    FAILED,
    KIND_CRASH,
    KIND_DEADLINE,
    KIND_INVALID,
    KIND_LOST_SPOOL,
    QUEUED,
    RUNNING,
    Job,
    JobJournal,
    make_job,
    requeued,
)
from repro.serve.metrics import ServeMetrics, serve_prometheus_text
from repro.serve.queue import (
    REASON_BREAKER_OPEN,
    REASON_DRAINING,
    AdmissionError,
    AdmissionQueue,
)

#: Dispatcher poll interval when idle (a notify wakes it immediately).
_TICK = 0.05


def execute_job(
    target: str,
    job_id: str,
    *,
    jobs: int,
    executor: str,
    cache: InferenceCache | None,
    timeout: float,
    retries: int,
) -> dict[str, Any]:
    """Run one verification job (thread-pool side).

    Returns the merged report plus shape numbers.  Raises on crashes —
    the dispatcher decides between retry, quarantine and breaker
    feedback.  Runs the same engine as ``repro check``, so a job's
    report is byte-identical to a batch run over the spooled sources.
    """
    started = time.perf_counter()
    faults.fire("serve-dispatch", job_id)
    batch = verify_path(
        target,
        jobs=jobs,
        executor=executor,
        cache=cache,
        timeout=timeout,
        retries=retries,
        tracer=None,
    )
    merged = batch.merged()
    return {
        "ok": merged.ok,
        "report": merged.format(),
        "classes": len(batch.class_results),
        "seconds": time.perf_counter() - started,
    }


class VerificationService:
    """The daemon's moving parts behind one asyncio-friendly facade."""

    def __init__(
        self,
        config: ServeConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config
        self.journal = JobJournal(config.serve_root)
        self.queue = AdmissionQueue(
            config.queue_depth, config.effective_tenant_queue_cap
        )
        self.breaker = CircuitBreaker(
            config.breaker_threshold,
            config.breaker_backoff,
            config.breaker_max_backoff,
            clock=clock,
        )
        self.metrics = ServeMetrics()
        self.tracer: Any = Tracer() if config.trace else NULL_TRACER
        if config.remote_cache:
            from pathlib import Path

            from repro.engine.backends import (
                LocalDirBackend,
                RemoteHTTPBackend,
                TieredBackend,
            )

            self.cache = InferenceCache(
                backend=TieredBackend(
                    LocalDirBackend(Path(config.cache_dir)),
                    RemoteHTTPBackend(config.remote_cache),
                )
            )
        else:
            self.cache = InferenceCache(config.cache_dir)
        #: Every job this process knows, id → latest state (terminal
        #: jobs loaded from the journal included, so a restarted daemon
        #: keeps serving finished verdicts).
        self.jobs: dict[str, Job] = {}
        self.draining = False
        self._seq = 1
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self._active: dict[str, int] = {}  # tenant → executing jobs
        #: Monotonic start instants of RUNNING jobs.  Durations must
        #: never come from ``time.time()`` diffs — a clock step (NTP,
        #: DST, manual set) would poison ``job_seconds_total`` and with
        #: it every Retry-After hint.  Wall timestamps stay on the Job
        #: for display and the journal only.
        self._job_started_mono: dict[str, float] = {}
        self._busy = 0  # occupied worker threads (deadline-expired included)
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._tasks: dict[str, asyncio.Task] = {}
        self._wake: asyncio.Event | None = None
        self._update: asyncio.Event | None = None
        self.drained = False

    # -- lifecycle -----------------------------------------------------

    def recover(self) -> int:
        """Reload the journal; re-enqueue every non-terminal job.

        Returns the number of jobs re-enqueued.  A job whose spool
        vanished (cache cleared between runs) fails with a
        ``lost-spool`` verdict instead of blocking recovery.
        """
        loaded = self.journal.load_all()
        recovered = 0
        for job in loaded:
            if job.id in self.jobs:
                # Already known in-memory (submitted before start()):
                # the live object is newer than its journal record.
                continue
            if job.terminal:
                self.jobs[job.id] = job
                continue
            if self.journal.check_target(job) is None:
                self._finish_failed(
                    job, KIND_LOST_SPOOL, "spool lost across restart"
                )
                continue
            fresh = requeued(job)
            self.journal.record(fresh)
            self.jobs[fresh.id] = fresh
            self.queue.restore(fresh)
            self.metrics.recovered_jobs_total += 1
            self.metrics.jobs_queued_total += 1
            recovered += 1
        self._seq = self.journal.next_seq(loaded)
        return recovered

    async def start(self) -> int:
        """Recover the journal and start the dispatcher; returns the
        number of recovered (re-enqueued) jobs."""
        self._wake = asyncio.Event()
        self._update = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        recovered = self.recover()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        return recovered

    async def drain(self) -> dict[str, Any]:
        """Graceful shutdown: stop intake, let in-flight jobs finish
        (up to ``drain_grace``), leave queued jobs checkpointed.

        Queued jobs are already durable — each was journaled as QUEUED
        at admission — so stopping the dispatcher *is* the checkpoint:
        the next daemon start re-enqueues them and their verdicts come
        out byte-identical.
        """
        if self.draining:
            while not self.drained:
                await asyncio.sleep(_TICK)
            return self.drain_summary()
        self.draining = True
        self.metrics.draining = True
        if self._wake is not None:
            self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
        pending = [task for task in self._tasks.values() if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_grace)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        # Drain the cache's write-behind queue too: verdicts computed
        # by the last jobs must reach the remote tier before exit.
        self.cache.flush()
        self._refresh_gauges()
        self.drained = True
        self._notify()
        return self.drain_summary()

    def drain_summary(self) -> dict[str, Any]:
        return {
            "completed": self.metrics.jobs_done_total
            + self.metrics.jobs_failed_total,
            "checkpointed": len(self.queue),
            "abandoned_inflight": sum(
                1 for task in self._tasks.values() if not task.done()
            ),
        }

    # -- admission -----------------------------------------------------

    def submit(self, tenant: str, files: dict[str, str]) -> Job:
        """Admit a submission or raise (``JobError`` on bad input,
        ``AdmissionError`` on load shed — both explicit)."""
        self.metrics.submissions_total += 1
        faults.fire("serve-accept", tenant)
        if self.draining:
            self.metrics.reject(REASON_DRAINING)
            raise AdmissionError(
                REASON_DRAINING,
                "daemon is draining; resubmit to the next instance",
                self.config.drain_grace,
            )
        if self.breaker.state == OPEN and self.breaker.retry_after() > 0:
            self.metrics.reject(REASON_BREAKER_OPEN)
            raise AdmissionError(
                REASON_BREAKER_OPEN,
                "circuit breaker open after repeated worker crashes",
                self.breaker.retry_after(),
            )
        job, validated = make_job(
            self._seq, tenant, files, self.config.job_deadline
        )
        try:
            self.queue.submit(job, self._retry_after_hint())
        except AdmissionError as error:
            self.metrics.reject(error.reason)
            raise
        self._seq += 1
        # Durability before dispatch: spool first, then the journal
        # record; only then can the dispatcher (same event loop — no
        # preemption before we return) see the job.
        self.journal.write_spool(job, validated)
        self.journal.record(job)
        self.jobs[job.id] = job
        self.metrics.jobs_queued_total += 1
        self.tracer.counter("serve.submissions")
        self._notify()
        return job

    def _retry_after_hint(self) -> float:
        """A deterministic Retry-After for shed submissions: the mean
        job duration so far, clamped to [0.1, deadline]."""
        finished = self.metrics.jobs_done_total + self.metrics.jobs_failed_total
        mean = (
            self.metrics.job_seconds_total / finished if finished else 1.0
        )
        return round(min(max(mean, 0.1), self.config.job_deadline), 3)

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self.draining:
            self._refresh_gauges()
            job = None
            if self._busy < self.config.workers:
                job = self.queue.take(
                    self._active, self.config.tenant_concurrency
                )
            if job is None:
                await self._tick()
                continue
            if not self.breaker.allow():
                # Put it back where it came from; probe again next tick.
                self.queue.restore(job, front=True)
                await self._tick()
                continue
            self._start_job(job)

    async def _tick(self) -> None:
        assert self._wake is not None
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=_TICK)
        except asyncio.TimeoutError:
            pass
        self._wake.clear()

    def _start_job(self, job: Job) -> None:
        running = replace(
            job,
            state=RUNNING,
            started_at=time.time(),
            attempts=job.attempts + 1,
        )
        self.journal.record(running)
        self.jobs[job.id] = running
        self._job_started_mono[job.id] = time.monotonic()
        self._active[job.tenant] = self._active.get(job.tenant, 0) + 1
        self._busy += 1
        self.metrics.jobs_started_total += 1
        task = asyncio.create_task(
            self._run_job(running), name=f"repro-serve-job-{job.id}"
        )
        self._tasks[job.id] = task
        task.add_done_callback(lambda _t, job_id=job.id: self._tasks.pop(job_id, None))
        self._notify()

    async def _run_job(self, job: Job) -> None:
        target = self.journal.check_target(job)
        if target is None:
            self._release_slot(job.tenant)
            self._finish_failed(job, KIND_LOST_SPOOL, "spool lost before execution")
            return
        assert self._pool is not None
        loop = asyncio.get_running_loop()
        future = asyncio.ensure_future(
            loop.run_in_executor(
                self._pool,
                lambda: execute_job(
                    str(target),
                    job.id,
                    jobs=self.config.engine_jobs,
                    executor=self.config.engine_executor,
                    cache=self.cache,
                    timeout=self.config.effective_class_timeout,
                    retries=2,
                ),
            )
        )
        # The worker *thread* outlives a deadline expiry (Python cannot
        # kill a thread), so the slot frees when the thread actually
        # finishes, not when the job's fate is decided.
        future.add_done_callback(
            lambda _f, tenant=job.tenant: self._release_slot(tenant)
        )
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(future), timeout=job.deadline
            )
        except asyncio.TimeoutError:
            # The supervisor's per-class timeout (≤ the deadline) will
            # unwind the thread shortly; the job fails *now*.
            future.add_done_callback(lambda f: f.cancelled() or f.exception())
            self._finish_failed(
                job,
                KIND_DEADLINE,
                f"wall-clock deadline of {job.deadline:g}s exceeded",
            )
            return
        except asyncio.CancelledError:
            raise
        except FrontendError as error:
            self._finish_failed(job, KIND_INVALID, f"unparseable project: {error}")
            return
        except Exception as error:  # worker crash
            self._crashed(job, error)
            return
        self.breaker.record_success()
        self._job_started_mono.pop(job.id, None)
        done = replace(
            job,
            state=DONE,
            finished_at=time.time(),
            ok=bool(outcome["ok"]),
            report=outcome["report"],
            classes=int(outcome["classes"]),
            seconds=float(outcome["seconds"]),
        )
        self.journal.record(done)
        self.jobs[job.id] = done
        self.metrics.jobs_done_total += 1
        self.metrics.classes_checked_total += done.classes
        self.metrics.job_seconds_total += done.seconds
        self.metrics.tenant_done(job.tenant)
        if self.tracer.enabled:
            self.tracer.root.child(
                "serve",
                f"job:{job.id}",
                seconds=done.seconds,
                tenant=job.tenant,
                classes=done.classes,
                ok=done.ok,
            )
            self.tracer.counter("serve.jobs.done")
        self._notify()

    def _crashed(self, job: Job, error: BaseException) -> None:
        """A crash escaped the engine's own supervisor: retry the whole
        job if budget remains, feed the circuit breaker either way."""
        self.breaker.record_failure()
        detail = f"{type(error).__name__}: {error}"
        if job.attempts <= self.config.job_retries:
            self._job_started_mono.pop(job.id, None)
            retried = replace(job, state=QUEUED, started_at=None)
            self.journal.record(retried)
            self.jobs[job.id] = retried
            self.queue.restore(retried)
            self.metrics.retries_total += 1
            self.metrics.jobs_queued_total += 1
            self.tracer.counter("serve.jobs.retried")
            self._notify()
        else:
            self._finish_failed(job, KIND_CRASH, detail)

    def _finish_failed(self, job: Job, kind: str, error: str) -> None:
        # Failed jobs count in _retry_after_hint's denominator, so they
        # must contribute their (monotonic) duration to the numerator
        # too — else every failure drags the mean toward zero.  Jobs
        # that never started (lost spool at recovery) contribute 0.
        started_mono = self._job_started_mono.pop(job.id, None)
        seconds = (
            max(0.0, time.monotonic() - started_mono)
            if started_mono is not None
            else 0.0
        )
        failed = replace(
            self.jobs.get(job.id, job),
            state=FAILED,
            kind=kind,
            error=error,
            ok=False,
            finished_at=time.time(),
            seconds=seconds,
        )
        self.journal.record(failed)
        self.jobs[job.id] = failed
        self.metrics.jobs_failed_total += 1
        self.metrics.job_seconds_total += seconds
        self.metrics.tenant_done(job.tenant)
        self.tracer.counter("serve.jobs.failed")
        self._notify()

    def _release_slot(self, tenant: str) -> None:
        self._busy = max(0, self._busy - 1)
        remaining = self._active.get(tenant, 1) - 1
        if remaining > 0:
            self._active[tenant] = remaining
        else:
            self._active.pop(tenant, None)
        if self._wake is not None:
            self._wake.set()

    # -- observation ---------------------------------------------------

    def _refresh_gauges(self) -> None:
        self.metrics.queue_depth = len(self.queue)
        self.metrics.inflight = self._busy
        self.metrics.draining = self.draining
        self.metrics.breaker_state = self.breaker.state
        self.metrics.breaker_trips_total = self.breaker.trips_total
        self.metrics.journal_write_failures = self.journal.stats.write_failures
        self.metrics.journal_corrupt_entries = self.journal.stats.corrupt_entries
        self.metrics.uptime_seconds = time.monotonic() - self._started_mono

    def healthz(self) -> dict[str, Any]:
        """Liveness: the process and its dispatcher are running."""
        dispatcher_ok = (
            self._dispatcher is not None
            and (not self._dispatcher.done() or self.draining)
        )
        return {
            "ok": bool(dispatcher_ok),
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self._started_mono, 3),
            "draining": self.draining,
        }

    def readyz(self) -> tuple[bool, dict[str, Any]]:
        """Readiness: would a submission be admitted right now?"""
        self._refresh_gauges()
        blockers = []
        if self.draining:
            blockers.append("draining")
        if self.breaker.state == OPEN and self.breaker.retry_after() > 0:
            blockers.append("breaker-open")
        if self.queue.saturated:
            blockers.append("queue-full")
        ready = not blockers
        return ready, {
            "ready": ready,
            "blockers": blockers,
            "queue": {"depth": len(self.queue), "capacity": self.queue.depth},
            "inflight": self._busy,
            "breaker": self.breaker.snapshot(),
            "draining": self.draining,
        }

    def prometheus(self) -> str:
        self._refresh_gauges()
        return serve_prometheus_text(self.metrics)

    def job_summaries(self) -> list[dict[str, Any]]:
        return [
            job.summary()
            for job in sorted(self.jobs.values(), key=lambda j: j.seq)
        ]

    # -- change notification -------------------------------------------

    def _notify(self) -> None:
        if self._wake is not None:
            self._wake.set()
        if self._update is not None:
            event = self._update
            self._update = asyncio.Event()
            event.set()

    async def updated(self, timeout: float) -> bool:
        """Await the next job-state transition; False on timeout."""
        if self._update is None:
            return False
        event = self._update
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            return False
        return True
