"""Regex equivalence and inclusion by derivative bisimulation.

This is the classic Hopcroft–Karp-style algorithm lifted to Brzozowski
derivatives: two regexes denote the same language iff the pairs reachable
by simultaneous derivation never disagree on nullability.  We use it to
test algebraic laws of the inference (for instance that ``infer`` is
invariant under semantics-preserving program rewrites).
"""

from __future__ import annotations

from repro.regex.ast import Regex, alphabet
from repro.regex.derivatives import derivative, nullable


def equivalent(left: Regex, right: Regex) -> bool:
    """Do ``left`` and ``right`` denote the same language?"""
    return _bisimulate(left, right, check_inclusion_only=False)


def included(left: Regex, right: Regex) -> bool:
    """Is the language of ``left`` a subset of the language of ``right``?"""
    return _bisimulate(left, right, check_inclusion_only=True)


def _bisimulate(left: Regex, right: Regex, check_inclusion_only: bool) -> bool:
    """Shared worker for :func:`equivalent` and :func:`included`.

    For inclusion we require ``nullable(l) -> nullable(r)`` on every
    reachable pair; for equivalence we require ``nullable(l) == nullable(r)``.
    """
    symbols = sorted(alphabet(left) | alphabet(right))
    pending: list[tuple[Regex, Regex]] = [(left, right)]
    visited: set[tuple[Regex, Regex]] = set()
    while pending:
        pair = pending.pop()
        if pair in visited:
            continue
        visited.add(pair)
        current_left, current_right = pair
        left_nullable = nullable(current_left)
        right_nullable = nullable(current_right)
        if check_inclusion_only:
            if left_nullable and not right_nullable:
                return False
        elif left_nullable != right_nullable:
            return False
        for symbol in symbols:
            pending.append(
                (derivative(current_left, symbol), derivative(current_right, symbol))
            )
    return True


def counterexample(left: Regex, right: Regex) -> tuple[str, ...] | None:
    """A shortest word on which ``left`` and ``right`` disagree, if any.

    Returns ``None`` when the regexes are equivalent.  Search is
    breadth-first over pairs of derivatives, so the returned word is of
    minimal length (ties broken alphabetically).
    """
    from collections import deque

    symbols = sorted(alphabet(left) | alphabet(right))
    queue: deque[tuple[tuple[str, ...], Regex, Regex]] = deque([((), left, right)])
    visited: set[tuple[Regex, Regex]] = {(left, right)}
    while queue:
        word, current_left, current_right = queue.popleft()
        if nullable(current_left) != nullable(current_right):
            return word
        for symbol in symbols:
            next_pair = (
                derivative(current_left, symbol),
                derivative(current_right, symbol),
            )
            if next_pair not in visited:
                visited.add(next_pair)
                queue.append((word + (symbol,), *next_pair))
    return None
