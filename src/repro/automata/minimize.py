"""DFA minimization (Hopcroft's partition-refinement algorithm).

Minimization serves two purposes here: it keeps the automata produced by
regex translation small before expensive products, and it gives a
*canonical* automaton per language (after :meth:`DFA.renumbered`), which
the equivalence check in :mod:`repro.automata.operations` and several
golden tests rely on.
"""

from __future__ import annotations

from collections import defaultdict

from repro.automata.dfa import DFA, State


def minimize(dfa: DFA, *, max_states: int | None = None, tracer=None) -> DFA:
    """The minimal total DFA for ``dfa``'s language.

    The input is completed and trimmed first; the result is renumbered to
    integer states in BFS order, so two language-equal DFAs minimize to
    structurally identical automata.

    ``max_states`` (``None`` = unlimited, matching historic behavior)
    bounds the *input* size: refinement is ``O(states × alphabet)`` per
    split, so a caller with a budget rejects oversized inputs up front
    with :class:`repro.core.limits.BudgetExceeded` instead of churning.

    ``tracer`` (optional; the same plumbing point as the budget)
    annotates the enclosing span with input/output sizes — it never
    changes the result.
    """
    if max_states is not None and max_states > 0 and len(dfa.states) > max_states:
        from repro.core.limits import charge_states

        charge_states(len(dfa.states), max_states, "DFA minimization")
    total = dfa.trim().completed()
    states = sorted(total.states, key=str)
    alphabet = sorted(total.alphabet)

    accepting = total.accepting_states
    partition_of: dict[State, int] = {
        state: (1 if state in accepting else 0) for state in states
    }
    blocks: dict[int, set[State]] = defaultdict(set)
    for state, block in partition_of.items():
        blocks[block].add(state)
    # Degenerate case: everything accepting or nothing accepting.
    blocks = {k: v for k, v in blocks.items() if v}

    # Hopcroft refinement with a worklist of (block id, symbol) splitters.
    # Predecessor index: symbol -> target -> set of sources.
    predecessors: dict[str, dict[State, set[State]]] = {
        symbol: defaultdict(set) for symbol in alphabet
    }
    for (source, symbol), target in total.transitions.items():
        predecessors[symbol][target].add(source)

    worklist: list[tuple[int, str]] = [
        (block_id, symbol) for block_id in blocks for symbol in alphabet
    ]
    next_block_id = max(blocks, default=-1) + 1

    while worklist:
        splitter_id, symbol = worklist.pop()
        splitter = blocks.get(splitter_id)
        if not splitter:
            continue
        # States with a `symbol` move into the splitter block.
        movers: set[State] = set()
        for target in splitter:
            movers.update(predecessors[symbol].get(target, ()))
        # Group movers by their current block and split those blocks.
        touched: dict[int, set[State]] = defaultdict(set)
        for state in movers:
            touched[partition_of[state]].add(state)
        for block_id, inside in touched.items():
            block = blocks[block_id]
            if len(inside) == len(block):
                continue
            outside = block - inside
            # Keep the smaller part as the new block (Hopcroft's trick).
            new_part = inside if len(inside) <= len(outside) else outside
            block -= new_part
            new_id = next_block_id
            next_block_id += 1
            blocks[new_id] = set(new_part)
            for state in new_part:
                partition_of[state] = new_id
            for other_symbol in alphabet:
                worklist.append((new_id, other_symbol))

    # Build the quotient automaton.
    representative: dict[int, State] = {
        block_id: min(members, key=str) for block_id, members in blocks.items()
    }
    quotient_transitions = {}
    for block_id, rep in representative.items():
        for symbol in alphabet:
            target = total.successor(rep, symbol)
            assert target is not None  # total DFA
            quotient_transitions[(block_id, symbol)] = partition_of[target]
    quotient = DFA(
        states=frozenset(blocks),
        alphabet=total.alphabet,
        transitions=quotient_transitions,
        initial_state=partition_of[total.initial_state],
        accepting_states=frozenset(
            block_id
            for block_id, members in blocks.items()
            if next(iter(members)) in accepting
        ),
    )
    minimal = quotient.trim().renumbered()
    if tracer is not None and tracer.enabled:
        tracer.annotate(
            input_states=len(dfa.states), minimal_states=len(minimal.states)
        )
    return minimal
