"""Model-based testing: test suites and conformance from extracted models.

A natural application of the paper's model extraction: the
specification automaton of a class generates transition-covering
lifecycle sequences (:mod:`repro.testing.paths`), and the runtime
monitor drives an implementation through them, classifying each run
(:mod:`repro.testing.conformance`).
"""

from repro.testing.conformance import (
    ConformanceReport,
    Outcome,
    SequenceResult,
    check_conformance,
    generate_suite,
    run_sequence,
)
from repro.testing.paths import (
    shortest_prefixes,
    shortest_suffixes,
    state_cover,
    transition_cover,
)

__all__ = [
    "ConformanceReport",
    "Outcome",
    "SequenceResult",
    "check_conformance",
    "generate_suite",
    "run_sequence",
    "shortest_prefixes",
    "shortest_suffixes",
    "state_cover",
    "transition_cover",
]
