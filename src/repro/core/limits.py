"""Shared resource budgets for the verification pipeline.

Every potentially super-linear step of a check — subset construction,
Hopcroft refinement, behavior-automaton splicing — accepts a **state
budget** and (where it loops) a **wall-clock deadline**.  Exceeding
either raises :class:`BudgetExceeded`, a *verdict about the input's
cost*, not a crash: callers like the batch supervisor
(:mod:`repro.engine.engine`) convert it into a structured
``ENGINE BUDGET`` / ``ENGINE TIMEOUT`` diagnostic and keep checking the
rest of the project.

The cap already existed piecemeal (``regex/derivatives.py`` and
``ltlf/translate.py`` each enforce a ``max_states``); this module is the
shared home so the engine can thread one unified budget through all of
them.

Conventions:

* ``max_states=None`` means "use the site's default cap"
  (:data:`DEFAULT_MAX_STATES` for the subset construction);
* ``max_states <= 0`` disables the cap entirely (explicit opt-out);
* deadlines are absolute :func:`time.monotonic` timestamps, checked
  cooperatively inside state-exploration loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: Default cap on states explored by the subset construction.  Chosen to
#: be far above anything a real annotated class produces (the paper's
#: case studies stay under a few hundred states) while bounding
#: pathological exponential blowups to well under a second of work.
DEFAULT_MAX_STATES = 100_000


class BudgetExceeded(RuntimeError):
    """A check exceeded its resource budget (states or wall clock).

    ``resource`` is ``"states"`` or ``"wall-clock"`` — the batch
    supervisor maps these onto ``ENGINE BUDGET`` and ``ENGINE TIMEOUT``
    quarantine diagnostics.  Only the message survives pickling across a
    process pool, so the resource kind is also encoded in the message.
    """

    def __init__(self, message: str, *, resource: str = "states"):
        super().__init__(message)
        self.resource = resource

    def __reduce__(self):  # keep `resource` across process-pool pickling
        return (_rebuild_budget_exceeded, (self.args[0], self.resource))


def _rebuild_budget_exceeded(message: str, resource: str) -> "BudgetExceeded":
    return BudgetExceeded(message, resource=resource)


@dataclass(frozen=True)
class Limits:
    """The resource budget of one class check.  Picklable by design so
    the engine can ship it to process-pool workers.

    ``max_states`` bounds every state-exploration step of the check;
    ``timeout`` (seconds) arms a cooperative in-worker deadline, measured
    from the moment the check starts.  Both ``None`` by default — no
    budget beyond each site's own default cap.
    """

    max_states: int | None = None
    timeout: float | None = None

    def deadline(self) -> float | None:
        """The absolute monotonic deadline this budget arms, if any."""
        if self.timeout is None:
            return None
        return time.monotonic() + self.timeout


def effective_cap(max_states: int | None, default: int) -> int | None:
    """Resolve the ``None``/``<=0`` conventions into an actual cap."""
    if max_states is None:
        return default
    if max_states <= 0:
        return None
    return max_states


def charge_states(
    count: int, cap: int | None, what: str
) -> None:
    """Raise :class:`BudgetExceeded` when ``count`` exceeds ``cap``."""
    if cap is not None and count > cap:
        raise BudgetExceeded(
            f"state budget exceeded in {what}: "
            f"explored {count} states, budget is {cap}",
            resource="states",
        )


def check_deadline(deadline: float | None, what: str) -> None:
    """Raise :class:`BudgetExceeded` when ``deadline`` has passed."""
    if deadline is not None and time.monotonic() > deadline:
        raise BudgetExceeded(
            f"wall-clock deadline exceeded in {what}",
            resource="wall-clock",
        )
