"""Language-preserving regex simplification beyond canonical construction.

The smart constructors in :mod:`repro.regex.ast` apply only *local* unit
and ACI laws.  State elimination (:mod:`repro.automata.to_regex`) and
long inference chains still produce noisy terms; :func:`simplify`
rewrites them with a bounded set of additional Kleene-algebra laws:

* ``ε + r · r*  =  r*``   and its mirror (star unrolling),
* ``r + r  =  r`` across concat heads: ``r·s + r·t  =  r·(s + t)``
  (left factoring) and ``s·r + t·r  =  (s + t)·r`` (right factoring),
* ``r* · r*  =  r*``,
* ``(ε + r)*  =  r*`` and ``ε + r*  =  r*``.

Every rewrite is language-preserving (property-tested against the
derivative semantics) and size-non-increasing except factoring, which
strictly reduces size; the rewriting therefore terminates.
"""

from __future__ import annotations

from functools import lru_cache

from repro.regex.ast import (
    EPSILON,
    Concat,
    Epsilon,
    Regex,
    Star,
    Union,
    concat,
    star,
    union_all,
)


def _alternatives(regex: Regex) -> list[Regex]:
    """Flattened alternatives of a canonical union (or the term itself)."""
    if not isinstance(regex, Union):
        return [regex]
    parts: list[Regex] = []
    node: Regex = regex
    while isinstance(node, Union):
        parts.append(node.left)
        node = node.right
    parts.append(node)
    return parts


def _head_tail(regex: Regex) -> tuple[Regex, Regex]:
    """Split a (canonical, right-nested) concat into (head, rest)."""
    if isinstance(regex, Concat):
        return regex.left, regex.right
    return regex, EPSILON


def _split_last(regex: Regex) -> tuple[Regex, Regex]:
    """Split into (prefix, last factor)."""
    if not isinstance(regex, Concat):
        return EPSILON, regex
    factors: list[Regex] = []
    node: Regex = regex
    while isinstance(node, Concat):
        factors.append(node.left)
        node = node.right
    factors.append(node)
    prefix = factors[:-1]
    result: Regex = EPSILON
    for factor in reversed(prefix):
        result = concat(factor, result)
    return result, factors[-1]


def _simplify_union(parts: list[Regex]) -> Regex:
    """Union-level rewrites: star absorption and left/right factoring."""
    parts = [simplify(part) for part in parts]

    # r + r* = r*  and  ε + r* = r*: a starred alternative absorbs its
    # own body and the empty word.
    starred_bodies = {part.inner for part in parts if isinstance(part, Star)}
    if starred_bodies:
        absorbed = [
            part
            for part in parts
            if part not in starred_bodies and not isinstance(part, Epsilon)
        ]
        if len(absorbed) < len(parts):
            return simplify(union_all(absorbed))

    # ε + r·r* = r*  (and ε + r*·r = r*): detect an alternative whose
    # language is (one or more of) a starred alternative present as body.
    has_epsilon = any(isinstance(p, Epsilon) for p in parts)
    if has_epsilon:
        rest = [p for p in parts if not isinstance(p, Epsilon)]
        rewritten: list[Regex] = []
        absorbed_epsilon = False
        for part in rest:
            head, tail = _head_tail(part)
            if isinstance(tail, Star) and tail.inner == head:
                rewritten.append(tail)  # r · r* -> r* once ε joins in
                absorbed_epsilon = True
                continue
            prefix, last = _split_last(part)
            if isinstance(prefix, Star) and prefix.inner == last:
                rewritten.append(prefix)
                absorbed_epsilon = True
                continue
            if isinstance(part, Star):
                rewritten.append(part)  # ε + r* = r*
                absorbed_epsilon = True
                continue
            rewritten.append(part)
        if absorbed_epsilon:
            return simplify(union_all(rewritten))

    # Left factoring: group alternatives by their first concat factor.
    by_head: dict[Regex, list[Regex]] = {}
    for part in parts:
        head, tail = _head_tail(part)
        by_head.setdefault(head, []).append(tail)
    if any(len(tails) > 1 for tails in by_head.values()) and len(by_head) < len(parts):
        factored = [
            concat(head, simplify(union_all(tails))) for head, tails in by_head.items()
        ]
        return simplify(union_all(factored))

    # Right factoring: group by the last factor.
    by_last: dict[Regex, list[Regex]] = {}
    for part in parts:
        prefix, last = _split_last(part)
        by_last.setdefault(last, []).append(prefix)
    if any(len(prefixes) > 1 for prefixes in by_last.values()) and len(by_last) < len(parts):
        factored = [
            concat(simplify(union_all(prefixes)), last)
            for last, prefixes in by_last.items()
        ]
        return simplify(union_all(factored))

    return union_all(parts)


@lru_cache(maxsize=None)
def simplify(regex: Regex) -> Regex:
    """Rewrite ``regex`` into a smaller language-equal term (see module
    docstring for the rule set)."""
    if isinstance(regex, Union):
        return _simplify_union(_alternatives(regex))
    if isinstance(regex, Concat):
        left = simplify(regex.left)
        right = simplify(regex.right)
        # r* · r* = r*  (also reaches r* · (r* · s) via right nesting).
        if isinstance(left, Star):
            if left == right:
                return left
            head, tail = _head_tail(right)
            if head == left:
                return simplify(concat(left, tail))
            # r* · r · s  =  r · r* · s is not smaller; skip.
        return concat(left, right)
    if isinstance(regex, Star):
        inner = simplify(regex.inner)
        # (ε + r)* = r*: drop epsilon alternatives under a star.
        parts = [p for p in _alternatives(inner) if not isinstance(p, Epsilon)]
        # (r* + s)* = (r + s)*: unwrap starred alternatives under a star.
        unwrapped = [p.inner if isinstance(p, Star) else p for p in parts]
        return star(simplify(union_all(unwrapped)))
    return regex
