"""Mined-vs-static differential: kernel inclusion both ways, witnesses.

The two models of one class — the DFA mined from monitored executions
and the statically extracted specification automaton — are compared by
the bitset kernel's fused inclusion search
(:func:`repro.automata.kernel.inclusion.bitset_difference_counterexample`):

* ``mined ⊆ static`` is the **soundness** direction.  A violation means
  a monitored execution (or a generalization stitched from monitored
  steps) escapes the static model: either the monitor failed to enforce
  the specification or the static extraction is unsound.  Either way it
  is a finding, witnessed by a length-lex-minimal trace.
* ``static ⊆ mined`` is the **completeness** direction.  A witness here
  is a lifecycle the static model claims and no execution exhibited —
  an under-covered corpus, dead code, or a statically feasible but
  dynamically impossible path (the over-approximation the paper
  expects).

Reports render deterministically: state counts are of the *minimized*
automata, witnesses are unique shortest-first words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.kernel.alphabet import Alphabet
from repro.automata.kernel.bitset import BitDFA, dfa_to_bitdfa, nfa_to_bitnfa
from repro.automata.kernel.determinize import determinize_bitset
from repro.automata.kernel.inclusion import bitset_difference_counterexample
from repro.automata.kernel.minimize import minimize_bitset
from repro.core.spec import ClassSpec
from repro.mine.learn import MinedModel
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class DiffResult:
    """The two inclusion verdicts for one class."""

    class_name: str
    sound: bool
    complete: bool
    unsound_witness: tuple[str, ...] | None
    missed_witness: tuple[str, ...] | None
    mined_states: int
    static_states: int

    @property
    def equivalent(self) -> bool:
        return self.sound and self.complete

    @property
    def verdict(self) -> str:
        if self.equivalent:
            return "EQUIVALENT"
        if not self.sound:
            return "UNSOUND"
        return "INCOMPLETE"

    def format(self) -> str:
        lines = [
            f"mine diff {self.class_name}: mined={self.mined_states} states, "
            f"static={self.static_states} states -> {self.verdict}"
        ]
        if self.unsound_witness is not None:
            rendered = ", ".join(self.unsound_witness) or "(empty lifecycle)"
            lines.append(f"  unsound (mined accepts, static rejects): {rendered}")
        if self.missed_witness is not None:
            rendered = ", ".join(self.missed_witness) or "(empty lifecycle)"
            lines.append(f"  missed (static accepts, mined rejects): {rendered}")
        return "\n".join(lines)


def static_bitdfa(spec: ClassSpec) -> BitDFA:
    """The specification automaton as a kernel DFA."""
    return determinize_bitset(nfa_to_bitnfa(spec.nfa()))


def diff_mined(
    mined: MinedModel, spec: ClassSpec, tracer=NULL_TRACER
) -> DiffResult:
    """Diff ``mined`` against the static model of ``spec``."""
    # One shared interner keeps symbol ids aligned across both machines;
    # the mined alphabet is the spec vocabulary by construction, but a
    # corpus loaded from JSON may carry a subset — the union covers both.
    symbols = sorted(set(mined.dfa.alphabet) | set(spec.nfa().alphabet))
    alphabet = Alphabet(symbols)
    mined_bit = dfa_to_bitdfa(mined.dfa, alphabet)
    static_bit = determinize_bitset(nfa_to_bitnfa(spec.nfa(), alphabet))

    unsound = bitset_difference_counterexample(mined_bit, static_bit)
    missed = bitset_difference_counterexample(static_bit, mined_bit)
    result = DiffResult(
        class_name=mined.class_name or spec.name,
        sound=unsound is None,
        complete=missed is None,
        unsound_witness=unsound,
        missed_witness=missed,
        mined_states=minimize_bitset(mined_bit).n,
        static_states=minimize_bitset(static_bit).n,
    )
    if not result.equivalent:
        tracer.event(
            "mine-divergence",
            class_name=result.class_name,
            verdict=result.verdict,
        )
    return result
