"""Seeded differential farm: mine random workload projects, check soundness.

Each farm project is a synthetic two-class module
(:func:`repro.workloads.hierarchy.module_source`) with a shape drawn
from the project seed.  The farm executes the full pipeline on it —
collect a monitored corpus, mine, diff against the static model — and
checks the two properties the mining design guarantees:

* **soundness** on every run: ``L(mined) ⊆ L(static)`` (the local-language
  argument of docs/mining.md makes this structural, so any violation is
  a bug in the collector, the learner, or the kernel);
* **exact recovery** on transition-covering corpora: when the corpus
  exercises every static transition and the implementation is
  deterministic (single-exit operations, as generated workloads are),
  the mined automaton must be *equivalent* to the static one, checked by
  two-way kernel inclusion plus minimized state counts.

Failures carry a replayable corpus payload so a nightly farm hit can be
debugged offline.  The whole farm is a pure function of its config.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.mine.api import MineError, mine_source
from repro.mine.collect import CollectConfig
from repro.obs.tracer import NULL_TRACER
from repro.workloads.hierarchy import HierarchyShape, module_source


@dataclass(frozen=True)
class FarmConfig:
    """Deterministic knobs of one farm run."""

    projects: int = 50
    seed: int = 0
    random_runs: int = 16
    max_random_len: int = 10
    coverage_floor: float = 1.0

    def __post_init__(self) -> None:
        if self.projects < 1:
            raise ValueError("projects must be >= 1")


@dataclass
class FarmFailure:
    """One failed check, with enough context to replay it."""

    project: int
    class_name: str
    kind: str  # "unsound" | "inequivalent" | "coverage" | "error"
    detail: str
    corpus: dict[str, Any] | None = None

    def format(self) -> str:
        return (
            f"project {self.project} class {self.class_name}: "
            f"{self.kind}: {self.detail}"
        )


@dataclass
class ProjectRecord:
    """Per-project summary row."""

    project: int
    shape: dict[str, int]
    classes: int = 0
    corpus_events: int = 0
    mined_states: int = 0
    static_states: int = 0
    min_coverage: float = 1.0
    seconds: float = 0.0


@dataclass
class FarmResult:
    """The aggregated outcome of a farm run."""

    config: FarmConfig
    records: list[ProjectRecord] = field(default_factory=list)
    failures: list[FarmFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def min_coverage(self) -> float:
        if not self.records:
            return 1.0
        return min(record.min_coverage for record in self.records)

    def unsound(self) -> list[FarmFailure]:
        return [f for f in self.failures if f.kind == "unsound"]

    def format(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        lines = [
            f"mine farm: {len(self.records)} project(s), seed "
            f"{self.config.seed}, min coverage {self.min_coverage:.2f} "
            f"-> {verdict}"
        ]
        lines.extend(failure.format() for failure in self.failures)
        return "\n".join(lines)

    def to_payload(self) -> dict[str, Any]:
        return {
            "config": {
                "projects": self.config.projects,
                "seed": self.config.seed,
                "random_runs": self.config.random_runs,
                "max_random_len": self.config.max_random_len,
                "coverage_floor": self.config.coverage_floor,
            },
            "ok": self.ok,
            "min_coverage": self.min_coverage,
            "projects": [
                {
                    "project": record.project,
                    "shape": record.shape,
                    "classes": record.classes,
                    "corpus_events": record.corpus_events,
                    "mined_states": record.mined_states,
                    "static_states": record.static_states,
                    "min_coverage": record.min_coverage,
                    "seconds": record.seconds,
                }
                for record in self.records
            ],
            "failures": [
                {
                    "project": failure.project,
                    "class": failure.class_name,
                    "kind": failure.kind,
                    "detail": failure.detail,
                    "corpus": failure.corpus,
                }
                for failure in self.failures
            ],
        }


def project_shape(rng: Random) -> HierarchyShape:
    """Draw one workload shape; bounds keep a project under ~a second."""
    return HierarchyShape(
        base_operations=rng.randrange(2, 6),
        subsystems=rng.randrange(1, 4),
        composite_operations=rng.randrange(1, 4),
        seed=rng.randrange(1 << 30),
    )


def run_farm(config: FarmConfig = FarmConfig(), tracer=NULL_TRACER) -> FarmResult:
    """Mine ``config.projects`` random workload projects and check them."""
    result = FarmResult(config=config)
    rng = Random(config.seed)
    with tracer.span("mine-farm", f"seed={config.seed}", projects=config.projects):
        for project in range(config.projects):
            shape = project_shape(rng)
            record = ProjectRecord(
                project=project,
                shape={
                    "base_operations": shape.base_operations,
                    "subsystems": shape.subsystems,
                    "composite_operations": shape.composite_operations,
                    "seed": shape.seed,
                },
            )
            started = time.perf_counter()
            source = module_source(shape, correct=True)
            collect = CollectConfig(
                seed=config.seed * 1_000_003 + project,
                random_runs=config.random_runs,
                max_random_len=config.max_random_len,
            )
            try:
                report = mine_source(
                    source,
                    source_name=f"<farm:{project}>",
                    config=collect,
                    diff=True,
                    tracer=tracer,
                )
            except MineError as error:
                result.failures.append(
                    FarmFailure(
                        project=project,
                        class_name="*",
                        kind="error",
                        detail=str(error),
                    )
                )
                result.records.append(record)
                continue
            record.classes = len(report.results)
            for class_result in report.results:
                _check_class(project, class_result, config, result)
                record.corpus_events += class_result.corpus.event_count()
                record.min_coverage = min(
                    record.min_coverage, class_result.coverage
                )
                if class_result.diff is not None:
                    record.mined_states += class_result.diff.mined_states
                    record.static_states += class_result.diff.static_states
            record.seconds = time.perf_counter() - started
            result.records.append(record)
    if not result.ok:
        tracer.event(
            "mine-farm-failed",
            failures=len(result.failures),
            unsound=len(result.unsound()),
        )
    return result


def _check_class(
    project: int, class_result, config: FarmConfig, result: FarmResult
) -> None:
    diff = class_result.diff
    corpus = class_result.corpus

    def fail(kind: str, detail: str) -> None:
        result.failures.append(
            FarmFailure(
                project=project,
                class_name=class_result.class_name,
                kind=kind,
                detail=detail,
                corpus=corpus.to_payload(),
            )
        )

    for note in corpus.notes:
        fail("error", note)
    if diff is not None and not diff.sound:
        witness = ", ".join(diff.unsound_witness or ()) or "(empty)"
        fail("unsound", f"mined accepts spec-rejected word: {witness}")
    if class_result.coverage < config.coverage_floor:
        fail(
            "coverage",
            f"transition coverage {class_result.coverage:.2f} "
            f"< floor {config.coverage_floor:.2f}",
        )
    elif (
        class_result.coverage >= 1.0
        and diff is not None
        and diff.sound
        and not diff.equivalent
    ):
        witness = ", ".join(diff.missed_witness or ()) or "(empty)"
        fail(
            "inequivalent",
            "covering corpus but mined != static "
            f"({diff.mined_states} vs {diff.static_states} states); "
            f"missed: {witness}",
        )
