"""The mined-vs-static differential engine."""

from repro.automata.dfa import DFA
from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.mine.diff import diff_mined
from repro.mine.learn import MinedModel, MineStats

SPEC_SOURCE = '''
from repro.frontend.decorators import sys, op_initial, op_final

@sys
class Pump:
    @op_initial
    def start(self):
        return ["stop"]

    @op_final
    def stop(self):
        return ["start"]
'''


def pump_spec() -> ClassSpec:
    module, _violations = parse_module(SPEC_SOURCE)
    return ClassSpec.of(module.get_class("Pump"))


def model_of(transitions, accepting, states) -> MinedModel:
    dfa = DFA(
        states=frozenset(range(states)),
        alphabet=frozenset({"start", "stop"}),
        transitions=transitions,
        initial_state=0,
        accepting_states=frozenset(accepting),
    )
    return MinedModel(class_name="Pump", dfa=dfa, stats=MineStats())


class TestDiff:
    def test_equivalent(self):
        spec = pump_spec()
        model = model_of(
            {(0, "start"): 1, (1, "stop"): 0}, accepting={0}, states=2
        )
        result = diff_mined(model, spec)
        assert result.verdict == "EQUIVALENT"
        assert result.sound and result.complete and result.equivalent
        assert result.unsound_witness is None
        assert result.missed_witness is None
        assert result.mined_states == result.static_states

    def test_unsound_with_minimal_witness(self):
        spec = pump_spec()
        # Accepts after a bare "start" — the spec rejects that.
        model = model_of(
            {(0, "start"): 1, (1, "stop"): 0}, accepting={0, 1}, states=2
        )
        result = diff_mined(model, spec)
        assert result.verdict == "UNSOUND"
        assert not result.sound
        assert result.unsound_witness == ("start",)
        assert "UNSOUND" in result.format()

    def test_incomplete_with_minimal_witness(self):
        spec = pump_spec()
        # Only the empty lifecycle: start/stop never observed.
        model = model_of({}, accepting={0}, states=1)
        result = diff_mined(model, spec)
        assert result.verdict == "INCOMPLETE"
        assert result.sound and not result.complete
        assert result.missed_witness == ("start", "stop")

    def test_format_is_deterministic(self):
        spec = pump_spec()
        model = model_of({}, accepting={0}, states=1)
        assert diff_mined(model, spec).format() == diff_mined(model, spec).format()

    def test_divergence_event_emitted(self):
        from repro.obs import Tracer

        spec = pump_spec()
        model = model_of({}, accepting={0}, states=1)
        tracer = Tracer()
        with tracer.span("run", "test"):
            diff_mined(model, spec, tracer=tracer)
        assert tracer.counters.get("event.mine-divergence") == 1
