"""Thompson construction: regex → NFA."""

from repro.automata.thompson import regex_to_dfa, thompson
from repro.regex.ast import EMPTY, EPSILON, concat, star, symbol, union
from repro.regex.enumerate_words import words_up_to
from repro.regex.parser import parse_regex

A = symbol("a")
B = symbol("b")


class TestThompson:
    def test_empty(self):
        nfa = thompson(EMPTY)
        assert not nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_epsilon(self):
        nfa = thompson(EPSILON)
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_symbol(self):
        nfa = thompson(A)
        assert nfa.accepts(["a"])
        assert not nfa.accepts([])

    def test_concat(self):
        nfa = thompson(concat(A, B))
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b", "a"])

    def test_union(self):
        nfa = thompson(union(A, B))
        assert nfa.accepts(["a"])
        assert nfa.accepts(["b"])
        assert not nfa.accepts(["a", "b"])

    def test_star(self):
        nfa = thompson(star(concat(A, B)))
        assert nfa.accepts([])
        assert nfa.accepts(["a", "b", "a", "b"])
        assert not nfa.accepts(["a"])

    def test_forced_alphabet(self):
        nfa = thompson(A, frozenset({"a", "b", "c"}))
        assert nfa.alphabet == {"a", "b", "c"}
        assert not nfa.accepts(["c"])

    def test_agrees_with_enumeration(self):
        for text in ["(a . b)* + a", "a . (b + a)* . b", "(a + b) . (a + b)*"]:
            regex = parse_regex(text)
            nfa = thompson(regex)
            words = words_up_to(regex, 4, frozenset({"a", "b"}))
            from itertools import product

            for length in range(5):
                for word in product("ab", repeat=length):
                    assert nfa.accepts(word) == (tuple(word) in words), (text, word)


class TestRegexToDfa:
    def test_pipeline_produces_minimal_dfa(self):
        dfa = regex_to_dfa(parse_regex("(a + b)*"))
        assert len(dfa.states) == 1
        assert dfa.accepts(["a", "b", "b"])

    def test_pipeline_language(self):
        dfa = regex_to_dfa(parse_regex("a . b*"))
        assert dfa.accepts(["a"])
        assert dfa.accepts(["a", "b", "b"])
        assert not dfa.accepts(["b"])
