"""The differential oracle: bitset kernel == classic automata.

The classic modules stay in the tree as the executable specification of
the kernel; this harness pins the two implementations against each other
on random NFAs (language equivalence, minimized state counts,
counterexample words) and on every paper listing and workload generator
(byte-identical reports).  The nightly CI job re-runs this file with a
much larger Hypothesis budget: explicit ``max_examples`` would override
any profile, so budgets here are scaled by ``REPRO_FUZZ_MULTIPLIER``
(the nightly workflow sets it to 20).
"""

import os

from hypothesis import given, settings, strategies as st

from repro.automata.determinize import determinize
from repro.automata.kernel import (
    bitdfa_to_dfa,
    bitset_difference_counterexample,
    bitset_equivalent,
    bitset_intersection_counterexample,
    determinize_bitset,
    dfa_to_bitdfa,
    forced_kernel,
    minimize_bitset,
    nfa_to_bitnfa,
    project_bitnfa,
)
from repro.automata.minimize import minimize
from repro.automata.nfa import NFA, NFABuilder
from repro.automata.operations import (
    inclusion_counterexample,
    lift_alphabet,
    project_nfa,
    with_alphabet,
)
from repro.automata.product import intersection
from repro.automata.shortest import shortest_accepted_word
from repro.core.checker import check_source
from repro.paper import GOOD_MODULE, SECTION_2_MODULE, SECTOR_MODULE
from repro.workloads.hierarchy import (
    HierarchyShape,
    lifecycle_claim,
    module_source,
)

ALPHABET = ("a", "b", "c")
MAX_STATES = 5

_MULTIPLIER = max(1, int(os.environ.get("REPRO_FUZZ_MULTIPLIER", "1")))


def _examples(base: int) -> int:
    return base * _MULTIPLIER


@st.composite
def nfas(draw) -> NFA:
    """Small random NFAs with epsilon moves over a fixed alphabet."""
    n = draw(st.integers(min_value=1, max_value=MAX_STATES))
    states = [f"q{i}" for i in range(n)]
    builder = NFABuilder()
    builder.add_states(states)
    builder.mark_initial(states[0])
    transitions = draw(
        st.lists(
            st.tuples(
                st.sampled_from(states),
                st.sampled_from(ALPHABET),
                st.sampled_from(states),
            ),
            max_size=18,
        )
    )
    for source, symbol, target in transitions:
        builder.add_transition(source, symbol, target)
    for source, target in draw(
        st.lists(
            st.tuples(st.sampled_from(states), st.sampled_from(states)),
            max_size=3,
        )
    ):
        builder.add_epsilon(source, target)
    for state in states:
        if draw(st.booleans()):
            builder.mark_accepting(state)
    for symbol in ALPHABET:
        builder.alphabet.add(symbol)
    return builder.build()


def classic_as_bitdfa(nfa: NFA):
    """The classic determinization, interned for bitset comparison."""
    return dfa_to_bitdfa(determinize(nfa))


@given(nfas())
@settings(max_examples=_examples(150), deadline=None)
def test_determinize_language_equivalence(nfa):
    kernel = determinize_bitset(nfa_to_bitnfa(nfa))
    assert bitset_equivalent(kernel, classic_as_bitdfa(nfa))


@given(nfas())
@settings(max_examples=_examples(100), deadline=None)
def test_minimized_state_counts_agree(nfa):
    classic_minimal = minimize(determinize(nfa))
    kernel_minimal = minimize_bitset(determinize_bitset(nfa_to_bitnfa(nfa)))
    assert len(classic_minimal.states) == kernel_minimal.n
    assert bitset_equivalent(kernel_minimal, dfa_to_bitdfa(classic_minimal))


@given(nfas(), nfas())
@settings(max_examples=_examples(100), deadline=None)
def test_inclusion_counterexamples_agree(left, right):
    classic_left, classic_right = determinize(left), determinize(right)
    joint = classic_left.alphabet | classic_right.alphabet
    classic = inclusion_counterexample(
        with_alphabet(classic_left, joint), with_alphabet(classic_right, joint)
    )
    kernel = bitset_difference_counterexample(
        determinize_bitset(nfa_to_bitnfa(left)),
        determinize_bitset(nfa_to_bitnfa(right)),
    )
    assert classic == kernel


@given(nfas(), nfas())
@settings(max_examples=_examples(100), deadline=None)
def test_lifted_inclusion_counterexamples_agree(left, right):
    # The subsystem-usage reading: the right side self-loops on symbols
    # outside its alphabet.  Exercised with a projected right automaton
    # so the alphabets genuinely differ.
    keep = frozenset(ALPHABET[:2])
    classic_left = determinize(left)
    classic_right = determinize(project_nfa(right, keep))
    joint = classic_left.alphabet | classic_right.alphabet
    classic = inclusion_counterexample(
        with_alphabet(classic_left, joint),
        lift_alphabet(classic_right, joint),
    )
    kernel = bitset_difference_counterexample(
        determinize_bitset(nfa_to_bitnfa(left)),
        determinize_bitset(project_bitnfa(nfa_to_bitnfa(right), keep)),
        foreign="lift",
    )
    assert classic == kernel


@given(nfas(), nfas())
@settings(max_examples=_examples(100), deadline=None)
def test_intersection_counterexamples_agree(left, right):
    classic_left, classic_right = determinize(left), determinize(right)
    joint = classic_left.alphabet | classic_right.alphabet
    classic = shortest_accepted_word(
        intersection(
            with_alphabet(classic_left, joint),
            with_alphabet(classic_right, joint),
        )
    )
    kernel = bitset_intersection_counterexample(
        determinize_bitset(nfa_to_bitnfa(left)),
        determinize_bitset(nfa_to_bitnfa(right)),
    )
    assert classic == kernel


def _empty_language_nfa() -> NFA:
    builder = NFABuilder()
    builder.add_state("s")
    builder.mark_initial("s")
    for symbol in ALPHABET:
        builder.alphabet.add(symbol)
    return builder.build()


@given(nfas())
@settings(max_examples=_examples(75), deadline=None)
def test_counterexample_words_are_accepted(nfa):
    """Any counterexample the kernel reports is actually in the language."""
    kernel = determinize_bitset(nfa_to_bitnfa(nfa))
    empty = determinize_bitset(nfa_to_bitnfa(_empty_language_nfa()))
    word = bitset_difference_counterexample(kernel, empty)
    if word is not None:
        assert kernel.accepts(word)
        assert nfa.accepts(word)
    else:
        assert not nfa.accepts(())


# ----------------------------------------------------------------------
# Report byte-equality: paper listings and workload generators
# ----------------------------------------------------------------------

PAPER_SOURCES = {
    "section2": SECTION_2_MODULE,
    "sector": SECTOR_MODULE,
    "good": GOOD_MODULE,
}

WORKLOAD_SHAPES = [
    (HierarchyShape(base_operations=5, subsystems=2, seed=3), True),
    (HierarchyShape(base_operations=5, subsystems=2, seed=3), False),
    (
        HierarchyShape(
            base_operations=4, subsystems=3, composite_operations=2, seed=5
        ),
        False,
    ),
    (
        HierarchyShape(
            base_operations=6, subsystems=3, composite_operations=3, seed=11
        ),
        True,
    ),
]


def _report(source: str, kernel: str) -> str:
    with forced_kernel(kernel):
        return check_source(source).format()


def test_paper_reports_byte_identical_across_kernels():
    for name, source in PAPER_SOURCES.items():
        assert _report(source, "bitset") == _report(source, "classic"), name


def test_workload_reports_byte_identical_across_kernels():
    for shape, correct in WORKLOAD_SHAPES:
        claim = lifecycle_claim(shape) if correct else None
        source = module_source(shape, correct=correct, claim=claim)
        assert _report(source, "bitset") == _report(source, "classic"), (
            shape,
            correct,
        )


def test_minimized_dfa_round_trip_preserves_language():
    for source in PAPER_SOURCES.values():
        from repro.core.behavior import behavior_nfa
        from repro.frontend.parse import parse_module

        module, _ = parse_module(source)
        for parsed in module.classes:
            behavior = behavior_nfa(parsed)
            classic_minimal = minimize(determinize(behavior))
            kernel_minimal = minimize_bitset(
                determinize_bitset(nfa_to_bitnfa(behavior))
            )
            assert len(classic_minimal.states) == kernel_minimal.n
            assert bitset_equivalent(
                kernel_minimal, dfa_to_bitdfa(classic_minimal)
            )
            # And the classic view of the kernel result is usable.
            round_tripped = bitdfa_to_dfa(kernel_minimal)
            assert round_tripped.accepts(()) == classic_minimal.accepts(())
