"""Hypothesis property tests: the whole automata pipeline agrees with
the derivative-based regex semantics on random terms and random words."""

from hypothesis import given, settings, strategies as st

from repro.automata.determinize import determinize
from repro.automata.minimize import minimize
from repro.automata.operations import equivalent as dfa_equivalent
from repro.automata.thompson import thompson
from repro.automata.to_regex import nfa_to_regex
from repro.regex.ast import EMPTY, EPSILON, Regex, concat, star, symbol, union
from repro.regex.matching import matches

ALPHABET = ["a", "b"]


def regexes() -> st.SearchStrategy[Regex]:
    atoms = st.sampled_from([EMPTY, EPSILON, symbol("a"), symbol("b")])
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: union(*pair)),
            children.map(star),
        ),
        max_leaves=10,
    )


def words():
    return st.lists(st.sampled_from(ALPHABET), max_size=6).map(tuple)


@given(regexes(), words())
@settings(max_examples=200, deadline=None)
def test_thompson_agrees_with_derivatives(regex, word):
    nfa = thompson(regex, frozenset(ALPHABET))
    assert nfa.accepts(word) == matches(regex, word)


@given(regexes(), words())
@settings(max_examples=150, deadline=None)
def test_determinize_preserves_language(regex, word):
    nfa = thompson(regex, frozenset(ALPHABET))
    dfa = determinize(nfa)
    assert dfa.accepts(word) == nfa.accepts(word)


@given(regexes(), words())
@settings(max_examples=100, deadline=None)
def test_minimize_preserves_language(regex, word):
    dfa = determinize(thompson(regex, frozenset(ALPHABET)))
    assert minimize(dfa).accepts(word) == dfa.accepts(word)


@given(regexes(), words())
@settings(max_examples=75, deadline=None)
def test_state_elimination_round_trip(regex, word):
    """Corollary 1 as a property: regex → NFA → regex keeps the language."""
    recovered = nfa_to_regex(thompson(regex, frozenset(ALPHABET)))
    assert matches(recovered, word) == matches(regex, word)


@given(regexes())
@settings(max_examples=75, deadline=None)
def test_minimal_dfas_of_equal_languages_are_equal(regex):
    """Minimization is canonical: two pipelines for the same regex
    (directly, and via a round trip through state elimination) minimize
    to language-equivalent — and structurally identical — DFAs."""
    direct = minimize(determinize(thompson(regex, frozenset(ALPHABET))))
    round_tripped = minimize(
        determinize(
            thompson(nfa_to_regex(thompson(regex, frozenset(ALPHABET))), frozenset(ALPHABET))
        )
    )
    assert dfa_equivalent(direct, round_tripped)
    assert direct.states == round_tripped.states
    assert direct.transitions == round_tripped.transitions


@given(regexes(), words())
@settings(max_examples=100, deadline=None)
def test_complement_flips_membership(regex, word):
    dfa = determinize(thompson(regex, frozenset(ALPHABET)))
    assert dfa.complemented().accepts(word) != dfa.accepts(word)
