"""Subset construction: NFA → DFA.

The produced DFA is partial — the empty subset is simply not a state, so
missing transitions encode rejection.  States are frozensets of NFA
states, preserved so diagnostics can map DFA states back to the model's
entry/exit points; call :meth:`repro.automata.dfa.DFA.renumbered` when
opaque integer states are preferable.

The construction is the one step of the pipeline that can genuinely
explode (worst case ``2^n`` subsets), so it is **budgeted**: it explores
at most ``max_states`` subsets (default
:data:`repro.core.limits.DEFAULT_MAX_STATES`, aligning with the caps in
:mod:`repro.regex.derivatives` and :mod:`repro.ltlf.translate`) and
checks an optional cooperative ``deadline``, raising
:class:`repro.core.limits.BudgetExceeded` on either trip.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA

#: How many subset expansions happen between deadline checks; keeps the
#: clock out of the hot loop while bounding overshoot.
_DEADLINE_STRIDE = 256


def determinize(
    nfa: NFA,
    *,
    max_states: int | None = None,
    deadline: float | None = None,
    tracer=None,
) -> DFA:
    """Determinize ``nfa`` by the subset construction.

    ``max_states=None`` applies the default cap
    (:data:`~repro.core.limits.DEFAULT_MAX_STATES`); ``max_states <= 0``
    disables it.  ``deadline`` is an absolute :func:`time.monotonic`
    timestamp checked every few expansions.  Either limit tripping
    raises :class:`~repro.core.limits.BudgetExceeded`.

    ``tracer`` (optional; the same plumbing point as the budget)
    annotates the enclosing span with the explored subset count — it
    never changes the construction.
    """
    # Imported lazily: repro.core.spec imports this module back, so a
    # top-level import would be order-sensitive during package init.
    from repro.core.limits import (
        DEFAULT_MAX_STATES,
        charge_states,
        check_deadline,
        effective_cap,
    )

    cap = effective_cap(max_states, DEFAULT_MAX_STATES)
    initial = nfa.epsilon_closure(nfa.initial_states)
    states: set[frozenset] = {initial}
    transitions: dict[tuple[frozenset, str], frozenset] = {}
    accepting: set[frozenset] = set()
    queue: deque[frozenset] = deque([initial])
    ordered_alphabet = sorted(nfa.alphabet)
    expansions = 0
    while queue:
        subset = queue.popleft()
        expansions += 1
        if expansions % _DEADLINE_STRIDE == 0:
            check_deadline(deadline, "subset construction")
        if subset & nfa.accepting_states:
            accepting.add(subset)
        for symbol in ordered_alphabet:
            successor = nfa.step(subset, symbol)
            if not successor:
                continue
            transitions[(subset, symbol)] = successor
            if successor not in states:
                states.add(successor)
                charge_states(len(states), cap, "subset construction")
                queue.append(successor)
    if tracer is not None and tracer.enabled:
        tracer.annotate(dfa_states=len(states), expansions=expansions)
    return DFA(
        states=frozenset(states),
        alphabet=nfa.alphabet,
        transitions=transitions,
        initial_state=initial,
        accepting_states=frozenset(accepting),
    )
