"""Engine-suite fixtures: never leak an *installed* fault plan.

``REPRO_FAULTS`` from the ambient environment is deliberately left
alone — the CI fault-injection job sets it and re-runs these suites to
prove the supervisor recovers transparently.  Tests that must observe
exact supervisor counters opt out of ambient faults with the
``no_ambient_faults`` fixture (an installed empty plan beats the
environment).
"""

import pytest

from repro.engine import faults


@pytest.fixture(autouse=True)
def clean_fault_plan():
    """Each test starts and ends with no installed plan."""
    faults.install(None)
    yield
    faults.install(None)


@pytest.fixture
def no_ambient_faults():
    """Shield a test from ``REPRO_FAULTS`` set by the CI fault job."""
    faults.install(faults.FaultPlan(()))
    yield
    faults.install(None)
