"""Crash/chaos harness: real ``repro check`` subprocesses, killed and
failed at injected sync points mid-write (docs/robustness.md).

The recovery contract under test: whatever a crash leaves behind —
orphaned temp files, torn entries, a half-persisted state — a restarted
run must produce the byte-identical report a pristine cold run would,
with zero corrupt entries surviving a full-store audit.
"""

import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.engine.cache import InferenceCache
from repro.engine.state import load_state, state_path

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
MODULE = str(Path(__file__).resolve().parents[2] / "examples" / "greenhouse_monitor.py")

SIGKILLED = -signal.SIGKILL if hasattr(signal, "SIGKILL") else 117


def run_check(cache_dir, *, faults=None, timeout=120):
    """One real ``repro check --cache --incremental`` subprocess."""
    env = {"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR}
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    return subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "check", MODULE,
            "--cache", "--cache-dir", str(cache_dir), "--incremental",
        ],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def audit(cache_dir):
    """Full-store checksum audit; returns total corrupt entries."""
    report = InferenceCache(cache_dir).verify()
    return sum(counts["corrupt"] for counts in report.values())


@pytest.fixture(scope="module")
def cold_reference(tmp_path_factory):
    """The pristine cold run every recovery must reproduce exactly."""
    pristine = tmp_path_factory.mktemp("pristine-cache")
    completed = run_check(pristine)
    assert completed.returncode in (0, 1)
    assert completed.stdout
    return completed


class TestCrashRecovery:
    """SIGKILL at a mid-write sync point, then restart."""

    @pytest.mark.parametrize(
        "sync_point",
        [
            "store-write:sigkill:state:times=1",
            "store-rename:sigkill:state:times=1",
            "store-write:sigkill:method/*:times=1",
            "store-rename:sigkill:class/*:times=1",
        ],
    )
    def test_killed_run_recovers_to_identical_report(
        self, tmp_path, cold_reference, sync_point
    ):
        crashed = run_check(tmp_path, faults=sync_point)
        assert crashed.returncode == SIGKILLED

        # The kill fired after the temp file was written and before (or
        # instead of) the publish — so the wreckage is an orphan, never
        # a corrupt published entry.
        survivor = InferenceCache(tmp_path, tmp_gc_min_age=10_000.0)
        assert survivor.orphan_count() >= 1
        assert audit(tmp_path) == 0

        restarted = run_check(tmp_path)
        assert restarted.returncode == cold_reference.returncode
        assert restarted.stdout == cold_reference.stdout

        # Post-recovery the store audits clean and the orphans sweep.
        assert audit(tmp_path) == 0
        swept = InferenceCache(tmp_path, tmp_gc_min_age=10_000.0).gc_tmp()
        assert swept >= 1
        assert InferenceCache(tmp_path).orphan_count() == 0

    def test_repeated_kills_then_recovery(self, tmp_path, cold_reference):
        """Three crashes in a row leave the store recoverable."""
        for sync_point in (
            "store-write:sigkill:method/*:times=1",
            "store-write:sigkill:class/*:times=1",
            "store-rename:sigkill:state:times=1",
        ):
            crashed = run_check(tmp_path, faults=sync_point)
            assert crashed.returncode == SIGKILLED
        restarted = run_check(tmp_path)
        assert restarted.returncode == cold_reference.returncode
        assert restarted.stdout == cold_reference.stdout
        assert audit(tmp_path) == 0


class TestTornWriteRecovery:
    def test_torn_entry_is_detected_and_healed(self, tmp_path, cold_reference):
        """A torn-but-published entry (the failure rename cannot stop)
        is caught by the seal and healed into one recomputation."""
        torn = run_check(
            tmp_path, faults="store-write:torn:method/*:times=1:arg=40"
        )
        # The writing process is unaffected (its memory layer serves
        # it); only the published bytes are damaged.
        assert torn.returncode == cold_reference.returncode
        assert torn.stdout == cold_reference.stdout
        assert audit(tmp_path) == 1

        healed = run_check(tmp_path)
        assert healed.returncode == cold_reference.returncode
        assert healed.stdout == cold_reference.stdout

        # The restart spliced its verdicts from the state file, so the
        # torn entry was never read (healing is lazy); the eager audit
        # repairs it, after which the store is pristine.
        repaired = InferenceCache(tmp_path).verify(repair=True)
        assert sum(c["repaired"] for c in repaired.values()) == 1
        assert audit(tmp_path) == 0
        rechecked = run_check(tmp_path)
        assert rechecked.stdout == cold_reference.stdout

    def test_torn_state_file_degrades_to_cold_run(
        self, tmp_path, cold_reference
    ):
        first = run_check(tmp_path, faults="store-write:torn:state:times=1")
        assert first.stdout == cold_reference.stdout
        state, reason = load_state(state_path(tmp_path))
        assert state is None
        assert "corrupt state file" in reason

        recovered = run_check(tmp_path)
        assert recovered.returncode == cold_reference.returncode
        assert recovered.stdout == cold_reference.stdout
        state, reason = load_state(state_path(tmp_path))
        assert reason is None
        assert state.generation >= 1


class TestDegradedPersistence:
    @pytest.mark.parametrize(
        "profile",
        [
            "store-write:enospc:*",
            "store-rename:rename-fail:*",
            "lock-acquire:lock-timeout:*",
        ],
    )
    def test_persistence_failures_never_change_the_report(
        self, tmp_path, cold_reference, profile
    ):
        degraded = run_check(tmp_path, faults=profile)
        assert degraded.returncode == cold_reference.returncode
        assert degraded.stdout == cold_reference.stdout

        # And the next healthy run starts clean from whatever survived.
        recovered = run_check(tmp_path)
        assert recovered.returncode == cold_reference.returncode
        assert recovered.stdout == cold_reference.stdout
        assert audit(tmp_path) == 0

    def test_enospc_warns_about_the_unsaved_state(
        self, tmp_path, cold_reference
    ):
        degraded = run_check(tmp_path, faults="store-write:enospc:*")
        assert "project state not saved" in degraded.stderr
        assert not state_path(tmp_path).exists()


class TestMultiProcessStress:
    def test_four_concurrent_checks_on_one_cache(
        self, tmp_path, cold_reference
    ):
        """N >= 4 processes race put/get and the state read-modify-merge
        on one shared store; every report must be byte-identical to the
        cold reference and the store must audit clean afterwards."""
        env = {"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR}
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "check", MODULE,
                    "--cache", "--cache-dir", str(tmp_path), "--incremental",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for _ in range(4)
        ]
        for worker in workers:
            out, err = worker.communicate(timeout=120)
            assert worker.returncode == cold_reference.returncode, err
            assert out == cold_reference.stdout

        assert audit(tmp_path) == 0
        state, reason = load_state(state_path(tmp_path))
        assert reason is None
        assert state.generation >= 1
        assert len(state.classes) == 4

        # A warm follow-up over the merged state still agrees.
        warm = run_check(tmp_path)
        assert warm.returncode == cold_reference.returncode
        assert warm.stdout == cold_reference.stdout
