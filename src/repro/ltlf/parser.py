"""Parser for the claim syntax of ``@claim`` annotations.

Grammar (low to high precedence; binary temporal operators are
right-associative)::

    implies ::= or ('->' implies)?
    or      ::= and ('|' and)*
    and     ::= temporal ('&' temporal)*
    temporal::= unary (('U' | 'W' | 'R') temporal)?
    unary   ::= ('!' | 'X[w]' | 'X' | 'F' | 'G')* atom
    atom    ::= 'true' | 'false' | EVENT | '(' implies ')'

``EVENT`` is a dotted identifier such as ``a.open``.  The single-letter
operator names ``U W R X F G`` are reserved and cannot be events; any
other identifier is an event atom.  The paper's example claim parses as
expected: ``(!a.open) W b.open``.
"""

from __future__ import annotations

import re

from repro.ltlf.ast import (
    FALSE,
    TRUE,
    Eventually,
    Formula,
    Globally,
    Next,
    Release,
    Until,
    WeakNext,
    WeakUntil,
    atom,
    conj,
    disj,
    implies,
    neg,
)

_TOKEN_PATTERN = re.compile(
    r"\s*(?:"
    r"(?P<weaknext>X\[w\])"
    r"|(?P<arrow>->)"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<bang>!)"
    r"|(?P<amp>&&?)"
    r"|(?P<pipe>\|\|?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*)"
    r")"
)

_RESERVED = {"U", "W", "R", "X", "F", "G", "true", "false"}


class ClaimSyntaxError(ValueError):
    """Raised when a ``@claim`` string is not a well-formed formula."""


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ClaimSyntaxError(f"unexpected input at: {remainder[:20]!r}")
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def parse(self) -> Formula:
        result = self._implies()
        if self._peek() is not None:
            raise ClaimSyntaxError(
                f"trailing tokens starting at {self._tokens[self._index][1]!r}"
            )
        return result

    def _implies(self) -> Formula:
        left = self._or()
        token = self._peek()
        if token is not None and token[0] == "arrow":
            self._advance()
            return implies(left, self._implies())
        return left

    def _or(self) -> Formula:
        operands = [self._and()]
        while (token := self._peek()) is not None and token[0] == "pipe":
            self._advance()
            operands.append(self._and())
        return operands[0] if len(operands) == 1 else disj(operands)

    def _and(self) -> Formula:
        operands = [self._temporal()]
        while (token := self._peek()) is not None and token[0] == "amp":
            self._advance()
            operands.append(self._temporal())
        return operands[0] if len(operands) == 1 else conj(operands)

    def _temporal(self) -> Formula:
        left = self._unary()
        token = self._peek()
        if token is not None and token[0] == "ident" and token[1] in {"U", "W", "R"}:
            operator = self._advance()[1]
            right = self._temporal()
            if operator == "U":
                return Until(left, right)
            if operator == "W":
                return WeakUntil(left, right)
            return Release(left, right)
        return left

    def _unary(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ClaimSyntaxError("unexpected end of claim")
        kind, text = token
        if kind == "bang":
            self._advance()
            return neg(self._unary())
        if kind == "weaknext":
            self._advance()
            return WeakNext(self._unary())
        if kind == "ident" and text in {"X", "F", "G"}:
            self._advance()
            operand = self._unary()
            if text == "X":
                return Next(operand)
            if text == "F":
                return Eventually(operand)
            return Globally(operand)
        return self._atom()

    def _atom(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ClaimSyntaxError("unexpected end of claim")
        kind, text = token
        if kind == "lparen":
            self._advance()
            inner = self._implies()
            next_token = self._peek()
            if next_token is None or next_token[0] != "rparen":
                raise ClaimSyntaxError("missing closing parenthesis")
            self._advance()
            return inner
        if kind == "ident":
            self._advance()
            if text == "true":
                return TRUE
            if text == "false":
                return FALSE
            if text in _RESERVED:
                raise ClaimSyntaxError(f"{text!r} is a reserved operator name")
            return atom(text)
        raise ClaimSyntaxError(f"unexpected token {text!r}")


def parse_claim(text: str) -> Formula:
    """Parse a ``@claim`` string into an LTLf formula."""
    tokens = _tokenize(text)
    if not tokens:
        raise ClaimSyntaxError("empty claim")
    return _Parser(tokens).parse()
