"""The claim-pattern catalog: each pattern against a direct trace-level
definition, exhaustively over short traces and randomly via hypothesis."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.ltlf.patterns import (
    absence,
    alternation,
    bounded_existence,
    existence,
    never_adjacent,
    precedence,
    response,
    succession,
    universality,
)
from repro.ltlf.semantics import evaluate

ALPHABET = ["a", "b", "c"]


def all_traces(max_length: int):
    for length in range(max_length + 1):
        yield from itertools.product(ALPHABET, repeat=length)


class TestAgainstDirectDefinitions:
    def test_absence(self):
        formula = absence("a")
        for trace in all_traces(4):
            assert evaluate(formula, trace) == ("a" not in trace), trace

    def test_existence(self):
        formula = existence("a")
        for trace in all_traces(4):
            assert evaluate(formula, trace) == ("a" in trace), trace

    def test_universality(self):
        formula = universality("a")
        for trace in all_traces(4):
            assert evaluate(formula, trace) == all(e == "a" for e in trace), trace

    def test_response(self):
        formula = response("a", "b")

        def direct(trace):
            return all(
                "b" in trace[i:] for i, e in enumerate(trace) if e == "a"
            )

        for trace in all_traces(4):
            assert evaluate(formula, trace) == direct(trace), trace

    def test_precedence(self):
        formula = precedence("a", "b")  # b waits for a

        def direct(trace):
            if "b" not in trace:
                return True
            if "a" not in trace:
                return False
            return trace.index("a") < trace.index("b")

        for trace in all_traces(4):
            assert evaluate(formula, trace) == direct(trace), trace

    def test_succession(self):
        formula = succession("a", "b")

        def direct(trace):
            responds = all("b" in trace[i:] for i, e in enumerate(trace) if e == "a")
            precedes = ("b" not in trace) or (
                "a" in trace and trace.index("a") < trace.index("b")
            )
            return responds and precedes

        for trace in all_traces(4):
            assert evaluate(formula, trace) == direct(trace), trace

    def test_bounded_existence(self):
        for bound in (0, 1, 2):
            formula = bounded_existence("a", bound)
            for trace in all_traces(4):
                assert evaluate(formula, trace) == (trace.count("a") <= bound), (
                    bound,
                    trace,
                )

    def test_never_adjacent(self):
        formula = never_adjacent("a", "b")

        def direct(trace):
            return all(
                not (trace[i] == "a" and trace[i + 1] == "b")
                for i in range(len(trace) - 1)
            )

        for trace in all_traces(4):
            assert evaluate(formula, trace) == direct(trace), trace

    def test_alternation(self):
        formula = alternation("a", "b")

        def direct(trace):
            # Project onto {a, b}; must be a prefix of (ab)* repetitions.
            projected = [e for e in trace if e in ("a", "b")]
            expected = ["a", "b"] * (len(projected) // 2 + 1)
            return projected == expected[: len(projected)]

        for trace in all_traces(5):
            assert evaluate(formula, trace) == direct(trace), trace


class TestPaperClaimViaPattern:
    def test_paper_claim_is_a_precedence(self):
        from repro.ltlf.parser import parse_claim

        pattern = precedence("b.open", "a.open")
        parsed = parse_claim("(!a.open) W b.open")
        assert pattern == parsed


class TestRandomised:
    @given(st.lists(st.sampled_from(ALPHABET), max_size=8).map(tuple))
    @settings(max_examples=150, deadline=None)
    def test_bounded_existence_random(self, trace):
        for bound in (0, 1, 3):
            assert evaluate(bounded_existence("b", bound), trace) == (
                trace.count("b") <= bound
            )

    @given(st.lists(st.sampled_from(ALPHABET), max_size=8).map(tuple))
    @settings(max_examples=150, deadline=None)
    def test_response_random(self, trace):
        expected = all("b" in trace[i:] for i, e in enumerate(trace) if e == "a")
        assert evaluate(response("a", "b"), trace) == expected

    def test_bound_validation(self):
        import pytest

        with pytest.raises(ValueError):
            bounded_existence("a", -1)
