"""Portable advisory file locks for cross-process store coordination.

:class:`FileLock` wraps the platform's advisory byte/whole-file lock —
``fcntl.flock`` on POSIX, ``msvcrt.locking`` on Windows — behind one
small API with the semantics the persistence layer needs
(docs/robustness.md):

* **bounded acquisition** — a deterministic poll loop with exponential
  backoff and a hard deadline, raising :class:`LockTimeout` instead of
  blocking forever (callers degrade gracefully: a cache writer proceeds
  with its atomic write, a state writer skips the save and reports it);
* **reentrancy** — the same :class:`FileLock` instance can be
  re-acquired by the thread that holds it (a depth counter, released
  symmetrically), so composed call paths need no lock bookkeeping;
* **stale-lock recovery for free** — OS advisory locks die with their
  process, so a lock *file* left behind by a ``SIGKILL``-ed writer is
  immediately acquirable; no pid probing or lease expiry is needed.
  The holder's pid is written into the file purely as a diagnostic.

The ``lock-acquire`` fault-injection site fires on every acquisition
attempt (key = the lock's name): a ``delay`` rule simulates contention,
a ``lock-timeout`` rule forces the timed-out path so chaos profiles can
prove every caller survives it.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.engine import faults

if os.name == "nt":  # pragma: no cover - exercised only on Windows
    import msvcrt

    def _try_lock(handle: int) -> bool:
        try:
            os.lseek(handle, 0, os.SEEK_SET)
            msvcrt.locking(handle, msvcrt.LK_NBLCK, 1)
            return True
        except OSError:
            return False

    def _unlock(handle: int) -> None:
        try:
            os.lseek(handle, 0, os.SEEK_SET)
            msvcrt.locking(handle, msvcrt.LK_UNLCK, 1)
        except OSError:
            pass
else:
    import fcntl

    def _try_lock(handle: int) -> bool:
        try:
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            return True
        except OSError:
            return False

    def _unlock(handle: int) -> None:
        try:
            fcntl.flock(handle, fcntl.LOCK_UN)
        except OSError:
            pass


#: Default acquisition deadline; long enough for a slow writer to
#: finish, short enough that a wedged peer cannot stall a run forever.
DEFAULT_TIMEOUT = 10.0

#: First poll interval of the backoff loop; doubles up to the cap.
DEFAULT_POLL = 0.005
MAX_POLL = 0.2


class LockTimeout(TimeoutError):
    """Lock not acquired within the deadline."""

    def __init__(self, path: Path, waited: float):
        super().__init__(
            f"could not acquire lock {path} within {waited:.2f}s"
        )
        self.path = path
        self.waited = waited


class FileLock:
    """A reentrant, advisory, cross-process file lock.

    ``name`` keys fault injection and observability events; it defaults
    to the lock file's stem.  Use one instance per logical lock — the
    reentrancy accounting is per instance, while the cross-process
    exclusion is the OS's.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        name: str | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        poll: float = DEFAULT_POLL,
    ):
        self.path = Path(path)
        self.name = name if name is not None else self.path.stem
        self.timeout = timeout
        self.poll = poll
        #: Wall time the most recent acquisition spent waiting.
        self.waited = 0.0
        self._handle: int | None = None
        self._owner: int | None = None
        self._depth = 0
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def held(self) -> bool:
        return self._depth > 0

    def acquire(self, timeout: float | None = None) -> None:
        """Take the lock, waiting up to ``timeout`` (instance default).

        Raises :class:`LockTimeout` when the deadline passes — including
        when a ``lock-acquire:lock-timeout`` fault rule fires, which
        forces this path without any real contention.
        """
        me = threading.get_ident()
        with self._mutex:
            if self._owner == me and self._depth > 0:
                self._depth += 1
                return
        try:
            faults.fire("lock-acquire", self.name)
        except faults.InjectedLockTimeout:
            raise LockTimeout(self.path, 0.0)
        deadline_budget = self.timeout if timeout is None else timeout
        started = time.monotonic()
        deadline = started + deadline_budget
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        pause = self.poll
        acquired = False
        try:
            while True:
                if _try_lock(handle):
                    acquired = True
                    break
                now = time.monotonic()
                if now >= deadline:
                    raise LockTimeout(self.path, now - started)
                time.sleep(min(pause, max(0.0, deadline - now)))
                pause = min(pause * 2, MAX_POLL)
        finally:
            if not acquired:
                try:
                    os.close(handle)
                except OSError:
                    pass
        self.waited = time.monotonic() - started
        try:  # holder pid, purely diagnostic (never trusted for liveness)
            os.ftruncate(handle, 0)
            os.write(handle, f"{os.getpid()}\n".encode("ascii"))
        except OSError:
            pass
        with self._mutex:
            self._handle = handle
            self._owner = me
            self._depth = 1

    def release(self) -> None:
        """Drop one level of the lock; the OS lock goes at depth zero.

        The lock *file* is left on disk — deleting it is racy (a peer
        may hold an open handle to it), and an unheld lock file is
        harmless by construction.
        """
        with self._mutex:
            if self._depth == 0 or self._owner != threading.get_ident():
                raise RuntimeError(
                    f"release of lock {self.path} not held by this thread"
                )
            self._depth -= 1
            if self._depth > 0:
                return
            handle = self._handle
            self._handle = None
            self._owner = None
        if handle is not None:
            _unlock(handle)
            try:
                os.close(handle)
            except OSError:
                pass

    # ------------------------------------------------------------------

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def lock_for(path: str | Path, **kwargs) -> FileLock:
    """The lock guarding writes to ``path`` (``<path>.lock`` beside it)."""
    path = Path(path)
    return FileLock(path.with_name(path.name + ".lock"), **kwargs)
