"""Specification refinement and substitutability."""

from repro.core.refinement import (
    check_refinement,
    check_substitutable,
    equivalent_specs,
)
from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module


def spec_of(source: str, name: str) -> ClassSpec:
    module, violations = parse_module(source)
    assert violations == []
    return ClassSpec.of(module.get_class(name))


#: The baseline valve protocol.
BASE = (
    "@sys\n"
    "class Valve:\n"
    "    @op_initial\n"
    "    def test(self):\n"
    "        if x:\n"
    "            return ['open']\n"
    "        return ['clean']\n"
    "    @op\n"
    "    def open(self):\n"
    "        return ['close']\n"
    "    @op_final\n"
    "    def close(self):\n"
    "        return ['test']\n"
    "    @op_final\n"
    "    def clean(self):\n"
    "        return ['test']\n"
)

#: A strictly smaller protocol: the clean path was removed.
NARROW = (
    "@sys\n"
    "class StrictValve:\n"
    "    @op_initial\n"
    "    def test(self):\n"
    "        return ['open']\n"
    "    @op\n"
    "    def open(self):\n"
    "        return ['close']\n"
    "    @op_final\n"
    "    def close(self):\n"
    "        return ['test']\n"
    "    @op_final\n"
    "    def clean(self):\n"
    "        return ['test']\n"
)

#: A strictly larger protocol: close may be re-tested or re-opened.
WIDE = (
    "@sys\n"
    "class FlexValve:\n"
    "    @op_initial\n"
    "    def test(self):\n"
    "        if x:\n"
    "            return ['open']\n"
    "        return ['clean']\n"
    "    @op\n"
    "    def open(self):\n"
    "        if x:\n"
    "            return ['close']\n"
    "        return ['open']\n"
    "    @op_final\n"
    "    def close(self):\n"
    "        return ['test']\n"
    "    @op_final\n"
    "    def clean(self):\n"
    "        return ['test']\n"
)


class TestRefinement:
    def test_narrow_refines_base(self):
        result = check_refinement(spec_of(BASE, "Valve"), spec_of(NARROW, "StrictValve"))
        assert result.ok, result.format()

    def test_base_does_not_refine_narrow(self):
        result = check_refinement(spec_of(NARROW, "StrictValve"), spec_of(BASE, "Valve"))
        errors = result.by_code("not-a-refinement")
        assert len(errors) == 1
        # The clean lifecycle is the shortest extra behavior.
        assert errors[0].counterexample == ("test", "clean")

    def test_reflexive(self):
        spec = spec_of(BASE, "Valve")
        assert check_refinement(spec, spec).ok

    def test_wide_is_not_a_refinement(self):
        result = check_refinement(spec_of(BASE, "Valve"), spec_of(WIDE, "FlexValve"))
        errors = result.by_code("not-a-refinement")
        assert len(errors) == 1
        assert errors[0].counterexample == ("test", "open", "open", "close")


class TestSubstitutability:
    def test_wide_substitutes_for_base(self):
        result = check_substitutable(spec_of(BASE, "Valve"), spec_of(WIDE, "FlexValve"))
        assert result.ok, result.format()

    def test_narrow_does_not_substitute_for_base(self):
        result = check_substitutable(
            spec_of(BASE, "Valve"), spec_of(NARROW, "StrictValve")
        )
        errors = result.by_code("not-substitutable")
        assert len(errors) == 1
        assert errors[0].counterexample == ("test", "clean")

    def test_missing_operation_warned(self):
        missing = (
            "@sys\n"
            "class TwoOp:\n"
            "    @op_initial\n"
            "    def test(self):\n"
            "        return ['open']\n"
            "    @op_final\n"
            "    def open(self):\n"
            "        return []\n"
        )
        result = check_substitutable(spec_of(BASE, "Valve"), spec_of(missing, "TwoOp"))
        warned = {d.message for d in result.by_code("refinement-alphabet")}
        assert any("'close'" in message for message in warned)
        assert any("'clean'" in message for message in warned)
        assert not result.ok  # and the inclusion fails too


class TestEquivalence:
    def test_renamed_class_same_language(self):
        left = spec_of(BASE, "Valve")
        right = spec_of(BASE.replace("class Valve", "class Copy"), "Copy")
        assert equivalent_specs(left, right)

    def test_different_languages(self):
        assert not equivalent_specs(
            spec_of(BASE, "Valve"), spec_of(NARROW, "StrictValve")
        )
