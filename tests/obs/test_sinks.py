"""The sinks: JSONL event log, metrics JSON, Prometheus exposition."""

import json

from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    metrics_payload,
    prometheus_text,
    trace_lines,
    write_metrics_json,
    write_trace_jsonl,
)


def _small_trace() -> Tracer:
    tracer = Tracer(clock=iter(range(100)).__next__)
    with tracer.span("run", "run"):
        with tracer.span("wave", "wave-0") as wave:
            tracer.event("retry", cls="Device", attempt=1)
            span = wave.child("class", "Device", seconds=0.5, status="ok")
            span.child("phase", "infer", seconds=0.25, status="ok")
    return tracer


class TestTraceJsonl:
    def test_header_then_spans_in_dfs_order(self):
        lines = trace_lines(_small_trace())
        assert lines[0] == {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "counters": {"event.retry": 1},
        }
        spans = [line for line in lines if line["type"] == "span"]
        assert [s["name"] for s in spans] == [
            "root", "run", "wave-0", "Device", "infer",
        ]
        assert [s["id"] for s in spans] == list(range(5))
        # Parent ids reference earlier spans only.
        assert all(
            s["parent"] is None or s["parent"] < s["id"] for s in spans
        )

    def test_events_follow_their_span(self):
        lines = trace_lines(_small_trace())
        wave_index = next(
            i for i, line in enumerate(lines)
            if line["type"] == "span" and line["name"] == "wave-0"
        )
        event = lines[wave_index + 1]
        assert event["type"] == "event"
        assert event["span"] == lines[wave_index]["id"]
        assert event["name"] == "retry"

    def test_file_round_trips_as_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(_small_trace(), path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == count
        for line in lines:
            json.loads(line)


class TestMetricsPayload:
    def test_is_a_strict_superset_of_the_engine_summary(self):
        engine = {"classes": 3, "cache": {"class_hits": 1}, "jobs": 4}
        payload = metrics_payload(engine, _small_trace())
        for key, value in engine.items():
            assert payload[key] == value
        assert payload["obs"]["schema"] == TRACE_SCHEMA
        assert payload["obs"]["phases"]["infer"] == {
            "seconds": 0.25, "calls": 1,
        }
        assert payload["obs"]["counters"] == {"event.retry": 1}
        assert payload["obs"]["spans"] == 4

    def test_written_file_is_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(metrics_payload({"classes": 1}, None), path)
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text)["obs"] == {"schema": TRACE_SCHEMA}


class TestPrometheus:
    def test_families_and_labels(self):
        payload = metrics_payload(
            {
                "classes": 2,
                "waves": 1,
                "jobs": 4,
                "wall_seconds": 0.5,
                "cache": {"class_hits": 1, "class_misses": 1},
                "supervisor": {"retries": 3},
            },
            _small_trace(),
        )
        text = prometheus_text(payload)
        assert text.endswith("\n")
        assert "# TYPE repro_classes gauge" in text
        assert "repro_classes 2" in text
        assert 'repro_cache_events_total{kind="class_hits"} 1' in text
        assert 'repro_supervisor_events_total{kind="retries"} 3' in text
        assert 'repro_phase_seconds_total{phase="infer"} 0.25' in text
        assert 'repro_phase_calls_total{phase="infer"} 1' in text

    def test_store_family_from_store_section(self):
        text = prometheus_text(
            {
                "store": {
                    "checksum_failures": 2,
                    "lock_timeouts": 1,
                    "lock_wait_seconds": 0.125,
                    "state_generation": 7,
                }
            }
        )
        assert 'repro_store_events_total{kind="checksum_failures"} 2' in text
        assert 'repro_store_events_total{kind="lock_timeouts"} 1' in text
        assert "repro_store_lock_wait_seconds_total 0.125" in text
        assert "# TYPE repro_store_state_generation gauge" in text
        assert "repro_store_state_generation 7" in text

    def test_store_family_absent_without_store_section(self):
        assert "repro_store_" not in prometheus_text({"classes": 1})

    def test_label_values_are_escaped(self):
        assert (
            'kind="class_hits"'
            in prometheus_text({"cache": {"class_hits": 0}})
        )
        # The escaper itself:
        from repro.obs.sinks import _escape_label

        assert _escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
