"""DFA representation: runs, completion, complement, renumbering."""

import pytest

from repro.automata.dfa import DEAD_STATE, DFA


def even_as_dfa() -> DFA:
    """Accepts words with an even number of a's (total over {a, b})."""
    return DFA(
        states=frozenset({"even", "odd"}),
        alphabet=frozenset({"a", "b"}),
        transitions={
            ("even", "a"): "odd",
            ("odd", "a"): "even",
            ("even", "b"): "even",
            ("odd", "b"): "odd",
        },
        initial_state="even",
        accepting_states=frozenset({"even"}),
    )


def partial_dfa() -> DFA:
    """Accepts exactly "ab" (partial: missing moves reject)."""
    return DFA(
        states=frozenset({0, 1, 2}),
        alphabet=frozenset({"a", "b"}),
        transitions={(0, "a"): 1, (1, "b"): 2},
        initial_state=0,
        accepting_states=frozenset({2}),
    )


class TestAcceptance:
    def test_total_dfa(self):
        dfa = even_as_dfa()
        assert dfa.accepts([])
        assert dfa.accepts(["a", "a"])
        assert dfa.accepts(["b", "a", "b", "a"])
        assert not dfa.accepts(["a"])

    def test_partial_dfa_missing_move_rejects(self):
        dfa = partial_dfa()
        assert dfa.accepts(["a", "b"])
        assert not dfa.accepts(["b"])
        assert not dfa.accepts(["a", "b", "a"])

    def test_run_records_states(self):
        dfa = partial_dfa()
        assert dfa.run(["a", "b"]) == [0, 1, 2]

    def test_run_goes_none_when_stuck(self):
        dfa = partial_dfa()
        assert dfa.run(["b", "a"]) == [0, None, None]


class TestCompletion:
    def test_is_total(self):
        assert even_as_dfa().is_total()
        assert not partial_dfa().is_total()

    def test_completed_adds_dead_state(self):
        total = partial_dfa().completed()
        assert total.is_total()
        assert DEAD_STATE in total.states

    def test_completed_preserves_language(self):
        dfa = partial_dfa()
        total = dfa.completed()
        for word in ([], ["a"], ["a", "b"], ["b"], ["a", "b", "b"]):
            assert dfa.accepts(word) == total.accepts(word)

    def test_completed_total_is_identity(self):
        dfa = even_as_dfa()
        assert dfa.completed() is dfa

    def test_completed_rejects_name_clash(self):
        dfa = DFA(
            states=frozenset({DEAD_STATE}),
            alphabet=frozenset({"a"}),
            transitions={},
            initial_state=DEAD_STATE,
            accepting_states=frozenset(),
        )
        with pytest.raises(ValueError):
            dfa.completed()


class TestComplement:
    def test_complement_flips_membership(self):
        dfa = partial_dfa()
        flipped = dfa.complemented()
        for word in ([], ["a"], ["a", "b"], ["b", "b"], ["a", "b", "a"]):
            assert dfa.accepts(word) != flipped.accepts(word)

    def test_double_complement_is_same_language(self):
        dfa = even_as_dfa()
        double = dfa.complemented().complemented()
        for word in ([], ["a"], ["a", "a"], ["a", "b", "a"]):
            assert dfa.accepts(word) == double.accepts(word)


class TestTransformations:
    def test_trim_drops_unreachable(self):
        dfa = DFA(
            states=frozenset({0, 1, 99}),
            alphabet=frozenset({"a"}),
            transitions={(0, "a"): 1, (99, "a"): 99},
            initial_state=0,
            accepting_states=frozenset({1, 99}),
        )
        trimmed = dfa.trim()
        assert trimmed.states == {0, 1}

    def test_renumbered_preserves_language(self):
        dfa = even_as_dfa()
        renamed = dfa.renumbered()
        assert renamed.initial_state == 0
        for word in ([], ["a"], ["a", "a"], ["b", "a"]):
            assert dfa.accepts(word) == renamed.accepts(word)

    def test_to_nfa_same_language(self):
        dfa = partial_dfa()
        nfa = dfa.to_nfa()
        for word in ([], ["a"], ["a", "b"], ["b"]):
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_validates_initial_state(self):
        with pytest.raises(ValueError):
            DFA(
                states=frozenset({0}),
                alphabet=frozenset(),
                transitions={},
                initial_state=1,
                accepting_states=frozenset(),
            )
