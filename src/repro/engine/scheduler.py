"""Topological scheduling over the ``@sys`` subsystem dependency DAG.

A class *depends on* every class it instantiates as a constrained
subsystem field (``self.a = Valve()`` makes the composite depend on
``Valve``).  Verification of one class only ever reads the *parsed
specs* of its dependencies — never their verdicts — so any order is
sound; scheduling bottom-up still pays twice over:

* wave ``k`` only contains classes whose dependencies sit in earlier
  waves, so all classes of one wave are independent and can be checked
  concurrently without coordination;
* base classes (the leaves) warm the method-inference cache before the
  composites that embed their alphabets arrive.

Dependencies on classes *outside* the module (library classes checked
elsewhere) are ignored here; the checker reports them separately.  An
ill-formed cyclic hierarchy cannot be levelled — the classes on cycles
are appended as one final wave so every class is still checked exactly
once and the lint diagnostics get their chance to explain the cycle.
"""

from __future__ import annotations

from repro.frontend.model_ast import ParsedModule


def subsystem_dependencies(module: ParsedModule) -> dict[str, frozenset[str]]:
    """Class name → names of in-module classes it uses as subsystems."""
    known = set(module.class_names())
    return {
        parsed.name: frozenset(
            decl.class_name
            for decl in parsed.subsystems
            if decl.class_name in known and decl.class_name != parsed.name
        )
        for parsed in module.classes
    }


def topological_waves(dependencies: dict[str, frozenset[str]]) -> list[tuple[str, ...]]:
    """Kahn-style level schedule: each wave lists, sorted, the classes
    whose dependencies are all in earlier waves.

    Classes trapped on dependency cycles form one trailing wave.
    """
    remaining = {name: set(deps) for name, deps in dependencies.items()}
    waves: list[tuple[str, ...]] = []
    placed: set[str] = set()
    while remaining:
        ready = sorted(
            name for name, deps in remaining.items() if deps <= placed
        )
        if not ready:
            waves.append(tuple(sorted(remaining)))
            break
        waves.append(tuple(ready))
        placed.update(ready)
        for name in ready:
            del remaining[name]
    return waves


def prune_waves(
    waves: list[tuple[str, ...]], keep: "frozenset[str] | set[str]"
) -> list[tuple[str, ...]]:
    """Restrict a wave schedule to the classes in ``keep``.

    Wave *indices* are preserved — a pruned wave may be empty, but wave
    ``k`` of the pruned schedule still means "wave ``k`` of the full
    schedule", so per-class metrics and trace rows keep the same wave
    numbers whether a run was incremental or cold.  The incremental
    engine uses this to check only the dirty classes while every
    surviving class stays in its topological position.
    """
    return [
        tuple(name for name in wave if name in keep)
        for wave in waves
    ]


def schedule(module: ParsedModule) -> list[tuple[str, ...]]:
    """The wave schedule of a parsed module/project."""
    return topological_waves(subsystem_dependencies(module))
