"""A circuit breaker over worker-pool crashes.

A healthy daemon absorbs the occasional crashed job (the supervisor
retries it, the journal keeps it durable).  *Repeated* crashes are a
different animal — a poisoned input class, a leaking worker, a broken
interpreter — and re-dispatching into a dying pool just burns the queue.
The breaker watches consecutive job-execution crashes and, past a
threshold, **trips open**: admission and dispatch both stop, callers get
an explicit 503 with a retry-after equal to the remaining backoff.

Recovery is deterministic: the open interval is
``base * 2**(consecutive_trips - 1)`` capped at ``max_backoff`` — no
randomness, so tests (and operators) can predict exactly when the
breaker will probe again.  After the interval one **half-open** probe
job is let through; success closes the breaker and resets the backoff,
another crash re-trips it with a doubled interval.

The clock is injected so unit tests can drive time by hand.
"""

from __future__ import annotations

import time
from typing import Any, Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip on repeated crashes; recover with deterministic backoff."""

    def __init__(
        self,
        threshold: int = 3,
        base_backoff: float = 1.0,
        max_backoff: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if base_backoff <= 0 or max_backoff <= 0:
            raise ValueError("backoff intervals must be positive")
        self.threshold = threshold
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        #: Consecutive trips since the last close (drives the backoff).
        self.consecutive_trips = 0
        #: Lifetime trip count (monotonic; metrics).
        self.trips_total = 0
        self.opened_at: float | None = None

    # ------------------------------------------------------------------

    @property
    def backoff(self) -> float:
        """The current open interval in seconds."""
        if self.consecutive_trips == 0:
            return self.base_backoff
        return min(
            self.base_backoff * (2 ** (self.consecutive_trips - 1)),
            self.max_backoff,
        )

    def retry_after(self) -> float:
        """Seconds until the next half-open probe (0 when not open)."""
        if self.state != OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.backoff - self._clock())

    def allow(self) -> bool:
        """May a job be admitted/dispatched right now?

        While open, returns ``False`` until the backoff elapses, then
        transitions to half-open and lets exactly one probe through
        (subsequent calls return ``False`` until the probe reports).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.retry_after() > 0.0:
                return False
            self.state = HALF_OPEN
            return True
        return False  # half-open: the probe is already out

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.consecutive_trips = 0
            self.opened_at = None
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.consecutive_trips += 1
        self.trips_total += 1
        self.opened_at = self._clock()
        self.consecutive_failures = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_trips": self.consecutive_trips,
            "trips_total": self.trips_total,
            "backoff_seconds": self.backoff,
            "retry_after_seconds": round(self.retry_after(), 6),
        }
