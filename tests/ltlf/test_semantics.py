"""Finite-trace semantics of LTLf claims, operator by operator."""

from repro.ltlf.ast import (
    FALSE,
    TRUE,
    Eventually,
    Globally,
    Next,
    Release,
    Until,
    WeakNext,
    WeakUntil,
    atom,
    conj,
    disj,
    neg,
)
from repro.ltlf.semantics import evaluate

A = atom("a")
B = atom("b")


class TestPropositional:
    def test_constants(self):
        assert evaluate(TRUE, [])
        assert not evaluate(FALSE, ["a"])

    def test_atom_checks_first_event(self):
        assert evaluate(A, ["a"])
        assert evaluate(A, ["a", "b"])
        assert not evaluate(A, ["b", "a"])
        assert not evaluate(A, [])

    def test_negation(self):
        assert evaluate(neg(A), ["b"])
        assert evaluate(neg(A), [])  # atoms are false on the empty trace

    def test_conj_disj(self):
        assert evaluate(disj([A, B]), ["b"])
        assert not evaluate(conj([A, B]), ["a"])  # one event can't be both


class TestNext:
    def test_strong_next_requires_an_event_here(self):
        assert evaluate(Next(B), ["a", "b"])
        assert not evaluate(Next(B), ["a"])  # remainder is empty, B fails
        assert not evaluate(Next(B), [])

    def test_next_of_weak_formula_holds_at_last_event(self):
        # X (G b) consumes the only event and leaves G b on the empty
        # remainder, which holds vacuously.
        assert evaluate(Next(Globally(B)), ["a"])
        assert not evaluate(Next(Globally(B)), [])

    def test_weak_next_tolerates_empty_trace(self):
        assert evaluate(WeakNext(B), ["a", "b"])
        assert evaluate(WeakNext(B), [])
        # On a non-empty trace weak next equals strong next.
        assert not evaluate(WeakNext(B), ["a"])

    def test_next_vs_weak_next_differ_only_on_empty_trace(self):
        for trace in ([], ["a"], ["a", "b"], ["b", "a"], ["b", "b"]):
            strong = evaluate(Next(B), trace)
            weak = evaluate(WeakNext(B), trace)
            if trace:
                assert strong == weak
            else:
                assert weak and not strong


class TestEventuallyGlobally:
    def test_eventually(self):
        assert evaluate(Eventually(B), ["a", "a", "b"])
        assert not evaluate(Eventually(B), ["a", "a"])
        assert not evaluate(Eventually(B), [])

    def test_globally(self):
        assert evaluate(Globally(A), ["a", "a", "a"])
        assert not evaluate(Globally(A), ["a", "b"])
        assert evaluate(Globally(A), [])  # vacuous

    def test_duality(self):
        for trace in ([], ["a"], ["a", "b"], ["b", "b"]):
            assert evaluate(Globally(A), trace) == (
                not evaluate(Eventually(neg(A)), trace)
            )


class TestUntilFamily:
    def test_until_basic(self):
        formula = Until(A, B)
        assert evaluate(formula, ["a", "a", "b"])
        assert evaluate(formula, ["b"])
        assert not evaluate(formula, ["a", "a"])  # b never happens
        assert not evaluate(formula, [])

    def test_until_fails_on_gap(self):
        # a U b with a c before the b.
        formula = Until(A, B)
        assert not evaluate(formula, ["a", "c", "b"])

    def test_weak_until_holds_without_witness(self):
        formula = WeakUntil(A, B)
        assert evaluate(formula, ["a", "a"])  # G a branch
        assert evaluate(formula, ["a", "b"])  # U branch
        assert evaluate(formula, [])

    def test_weak_until_is_until_or_globally(self):
        for trace in ([], ["a"], ["a", "b"], ["b"], ["a", "a"], ["c", "b"]):
            expanded = disj([Until(A, B), Globally(A)])
            assert evaluate(WeakUntil(A, B), trace) == evaluate(expanded, trace)

    def test_release_duality(self):
        # a R b  ==  !(!a U !b)
        for trace in ([], ["b"], ["b", "a"], ["b", "b"], ["a"], ["b", "c"]):
            direct = evaluate(Release(A, B), trace)
            dual = not evaluate(Until(neg(A), neg(B)), trace)
            assert direct == dual, trace

    def test_release_requires_b_through_first_a(self):
        formula = Release(A, B)
        assert evaluate(formula, ["b", "b"])
        assert not evaluate(formula, ["b", "c"])
        # After a releasing position, b is no longer required.
        assert not evaluate(formula, ["b", "a"])  # position 1 fails b, a too late
        assert evaluate(Release(B, B), ["b", "c"])  # b at 0 releases immediately


class TestPaperClaim:
    def test_weak_until_claim(self):
        # (!a.open) W b.open
        formula = WeakUntil(neg(atom("a.open")), atom("b.open"))
        assert evaluate(formula, ["a.test", "b.open", "a.open"])
        assert not evaluate(formula, ["a.test", "a.open"])
        assert evaluate(formula, ["a.test", "a.clean"])  # a.open never occurs
        assert evaluate(formula, [])
