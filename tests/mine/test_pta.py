"""Trace corpora and prefix-tree acceptors."""

import pytest

from repro.mine.corpus import (
    CORPUS_SCHEMA,
    KIND_RANDOM,
    StepEvidence,
    TraceCorpus,
    TraceSample,
)
from repro.mine.pta import PrefixTreeAcceptor


def sample(word, completed=True, allowed_map=None, kind="cover"):
    """A sample with synthetic evidence: allowed_map[i] after word[:i]."""
    if allowed_map is None:
        return TraceSample(word=tuple(word), completed=completed, kind=kind)
    evidence = tuple(
        StepEvidence.of(allowed_map[i], i == len(word) and completed)
        for i in range(len(word) + 1)
    )
    return TraceSample(
        word=tuple(word), completed=completed, evidence=evidence, kind=kind
    )


class TestCorpus:
    def test_evidence_length_validated(self):
        with pytest.raises(ValueError):
            TraceSample(
                word=("a", "b"),
                completed=True,
                evidence=(StepEvidence.of(["a"], False),),
            )

    def test_round_trip_serialization(self):
        corpus = TraceCorpus(class_name="C", alphabet=("b", "a"))
        corpus.add(sample(("a", "b"), allowed_map={0: ["a"], 1: ["b"], 2: []}))
        corpus.add(sample(("a",), completed=False, kind=KIND_RANDOM))
        corpus.notes.append("anomaly")
        payload = corpus.to_payload()
        assert payload["schema"] == CORPUS_SCHEMA
        # Alphabet is normalized to sorted order on construction.
        assert payload["alphabet"] == ["a", "b"]
        restored = TraceCorpus.from_payload(payload)
        assert restored.to_payload() == payload
        assert restored.samples == corpus.samples
        assert restored.notes == ["anomaly"]

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceCorpus.from_payload({"schema": 99, "class": "C", "alphabet": [], "samples": []})

    def test_positive_words_include_finalizable_prefixes(self):
        corpus = TraceCorpus(class_name="C", alphabet=("a", "b"))
        # "a" is finalizable mid-run even though the sample went on to "ab".
        evidence = (
            StepEvidence.of(["a"], False),
            StepEvidence.of(["b"], True),
            StepEvidence.of([], True),
        )
        corpus.add(
            TraceSample(word=("a", "b"), completed=True, evidence=evidence)
        )
        assert corpus.positive_words() == [("a",), ("a", "b")]

    def test_stats(self):
        corpus = TraceCorpus(class_name="C", alphabet=("a",))
        corpus.add(sample(("a",)))
        stats = corpus.stats()
        assert stats == {
            "samples": 1,
            "events": 1,
            "positive_words": 1,
            "alphabet": 1,
        }


class TestPrefixTree:
    def test_node_ids_deterministic(self):
        """Insertion order of samples must not affect the tree."""
        words = [("a", "b"), ("a",), ("b", "a", "a")]
        trees = []
        for ordering in (words, list(reversed(words))):
            corpus = TraceCorpus(class_name="C", alphabet=("a", "b"))
            for word in ordering:
                corpus.add(sample(word))
            pta = PrefixTreeAcceptor.from_corpus(corpus)
            trees.append(
                [(node.children, node.final) for node in pta.nodes]
            )
        assert trees[0] == trees[1]

    def test_shared_prefixes_share_nodes(self):
        corpus = TraceCorpus(class_name="C", alphabet=("a", "b"))
        corpus.add(sample(("a", "a")))
        corpus.add(sample(("a", "b")))
        pta = PrefixTreeAcceptor.from_corpus(corpus)
        # root, a, aa, ab — the "a" prefix is one node.
        assert len(pta) == 4

    def test_evidence_aggregates_across_runs(self):
        corpus = TraceCorpus(class_name="C", alphabet=("a", "b"))
        corpus.add(sample(("a",), allowed_map={0: ["a"], 1: []}))
        corpus.add(sample(("a",), allowed_map={0: ["a", "b"], 1: []}))
        pta = PrefixTreeAcceptor.from_corpus(corpus)
        # Root evidence is the union of both observations.
        assert pta.nodes[0].allowed == frozenset({"a", "b"})
        assert pta.nodes[0].visits == 2

    def test_bare_words_mark_only_end_nodes(self):
        corpus = TraceCorpus(class_name="C", alphabet=("a", "b"))
        corpus.add(sample(("a", "b")))
        pta = PrefixTreeAcceptor.from_corpus(corpus)
        end = pta.nodes[pta.nodes[pta.nodes[0].children["a"]].children["b"]]
        assert end.final is True
        assert pta.nodes[0].final is None
        assert pta.nodes[0].allowed is None
        assert pta.accepting_ids() == (len(pta) - 1,)

    def test_incomplete_bare_word_adds_no_labels(self):
        corpus = TraceCorpus(class_name="C", alphabet=("a",))
        corpus.add(sample(("a",), completed=False))
        pta = PrefixTreeAcceptor.from_corpus(corpus)
        assert pta.accepting_ids() == ()
