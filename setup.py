"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so environments
whose toolchain cannot build PEP 660 editable wheels (no ``wheel``
package, as on minimal offline images) can still register the package
and its ``repro`` console script via ``python setup.py develop``.
"""

from setuptools import setup

setup()
