"""Engine observability: cache counters and per-class wall time.

Mirrors the style of :mod:`repro.core.metrics` (a frozen summary with a
``format`` method), but measures the *run*, not the model: how the wave
schedule shaped up, how the worker pool was configured, and how the
content-addressed cache performed per namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ClassTiming:
    """Wall time of one class's check and where the verdict came from.

    ``quarantined`` marks classes the supervisor gave up on — their
    "verdict" is an ``ENGINE ...`` diagnostic, not a real check result.
    ``from_state`` marks verdicts an incremental run spliced out of the
    persistent project state without scheduling the class at all
    (docs/incremental.md) — distinct from ``from_cache``, which means
    the class *was* scheduled and hit the verdict cache.
    """

    class_name: str
    seconds: float
    from_cache: bool
    wave: int
    quarantined: bool = False
    from_state: bool = False


@dataclass(frozen=True)
class EngineMetrics:
    """Quantitative summary of one batch-verification run."""

    classes: int
    waves: int
    jobs: int
    executor: str
    wall_seconds: float
    class_hits: int
    class_misses: int
    method_hits: int
    method_misses: int
    cache_writes: int
    timings: tuple[ClassTiming, ...]
    #: Corrupt cache entries found — and deleted — during this run.
    corrupt_entries: int = 0
    # Supervisor counters (docs/robustness.md): how much fault handling
    # the run needed.  All zero on a healthy run.
    retries: int = 0
    quarantines: int = 0
    budget_trips: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    # Incremental re-verification counters (docs/incremental.md): how
    # much of the run was served from the persistent project state.
    incremental: bool = False
    reused_verdicts: int = 0
    dirty_classes: int = 0
    # Crash-safe store counters (docs/robustness.md): checksum-detected
    # corruption, cross-process lock contention, failed persists, and
    # swept crash debris.  All zero on a healthy single-process run.
    checksum_failures: int = 0
    write_failures: int = 0
    lock_waits: int = 0
    lock_wait_seconds: float = 0.0
    lock_timeouts: int = 0
    orphans_removed: int = 0
    state_save_failures: int = 0
    state_merged_entries: int = 0
    state_generation: int = 0
    # Remote cache tier counters (docs/distributed.md).  All zero when
    # the run used a purely local backend.
    remote_hits: int = 0
    remote_misses: int = 0
    remote_puts: int = 0
    remote_errors: int = 0
    remote_degraded: int = 0

    @property
    def reuse_ratio(self) -> float:
        """Fraction of classes whose verdict came from the state file."""
        return self.reused_verdicts / self.classes if self.classes else 0.0

    @property
    def class_hit_rate(self) -> float:
        total = self.class_hits + self.class_misses
        return self.class_hits / total if total else 0.0

    @property
    def fully_cached(self) -> bool:
        """Did every class verdict come out of the cache (a warm run)?"""
        return self.classes > 0 and self.class_misses == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "classes": self.classes,
            "waves": self.waves,
            "jobs": self.jobs,
            "executor": self.executor,
            "wall_seconds": self.wall_seconds,
            "cache": {
                "class_hits": self.class_hits,
                "class_misses": self.class_misses,
                "method_hits": self.method_hits,
                "method_misses": self.method_misses,
                "writes": self.cache_writes,
                "corrupt_entries": self.corrupt_entries,
            },
            "supervisor": {
                "retries": self.retries,
                "quarantines": self.quarantines,
                "budget_trips": self.budget_trips,
                "timeouts": self.timeouts,
                "pool_restarts": self.pool_restarts,
            },
            "incremental": {
                "enabled": self.incremental,
                "reused": self.reused_verdicts,
                "dirty": self.dirty_classes,
                "reuse_ratio": self.reuse_ratio,
            },
            "store": {
                "checksum_failures": self.checksum_failures,
                "write_failures": self.write_failures,
                "lock_waits": self.lock_waits,
                "lock_wait_seconds": self.lock_wait_seconds,
                "lock_timeouts": self.lock_timeouts,
                "orphans_removed": self.orphans_removed,
                "state_save_failures": self.state_save_failures,
                "state_merged_entries": self.state_merged_entries,
                "state_generation": self.state_generation,
            },
            "remote": {
                "hits": self.remote_hits,
                "misses": self.remote_misses,
                "puts": self.remote_puts,
                "errors": self.remote_errors,
                "degraded": self.remote_degraded,
            },
            # Sorted here as well as at construction: the export is the
            # byte-stability contract (same project + cache temperature
            # => identical file regardless of jobs/completion order), so
            # it must hold even for hand-built metrics.
            "per_class": [
                {
                    "class": timing.class_name,
                    "seconds": timing.seconds,
                    "from_cache": timing.from_cache,
                    "wave": timing.wave,
                    "quarantined": timing.quarantined,
                    "from_state": timing.from_state,
                }
                for timing in sorted(
                    self.timings, key=lambda t: (t.wave, t.class_name)
                )
            ],
        }

    def format(self) -> str:
        lines = [
            "engine metrics:",
            f"  classes               {self.classes} in {self.waves} wave(s)",
            f"  workers               {self.jobs} ({self.executor})",
            f"  wall time             {self.wall_seconds * 1000.0:.1f} ms",
            f"  verdict cache         {self.class_hits} hit(s), "
            f"{self.class_misses} miss(es) "
            f"({self.class_hit_rate * 100.0:.0f}% hit rate)",
            f"  inference cache       {self.method_hits} hit(s), "
            f"{self.method_misses} miss(es)",
            f"  cache writes          {self.cache_writes}",
        ]
        if self.incremental:
            lines.append(
                f"  incremental           {self.reused_verdicts} reused, "
                f"{self.dirty_classes} re-checked "
                f"({self.reuse_ratio * 100.0:.0f}% reuse)"
            )
        if self.corrupt_entries:
            lines.append(
                f"  cache healed          {self.corrupt_entries} corrupt "
                f"entr{'y' if self.corrupt_entries == 1 else 'ies'} deleted"
                + (
                    f" ({self.checksum_failures} checksum mismatch(es))"
                    if self.checksum_failures
                    else ""
                )
            )
        if (
            self.write_failures
            or self.lock_waits
            or self.lock_timeouts
            or self.orphans_removed
            or self.state_save_failures
            or self.state_merged_entries
        ):
            lines.append(
                f"  store                 {self.write_failures} failed "
                f"write(s), {self.lock_waits} lock wait(s) "
                f"({self.lock_wait_seconds * 1000.0:.1f} ms), "
                f"{self.lock_timeouts} lock timeout(s), "
                f"{self.orphans_removed} orphan(s) swept, "
                f"{self.state_save_failures} state save failure(s), "
                f"{self.state_merged_entries} merged state entr"
                f"{'y' if self.state_merged_entries == 1 else 'ies'}"
            )
        if (
            self.remote_hits
            or self.remote_misses
            or self.remote_puts
            or self.remote_errors
            or self.remote_degraded
        ):
            lines.append(
                f"  remote cache          {self.remote_hits} hit(s), "
                f"{self.remote_misses} miss(es), "
                f"{self.remote_puts} upload(s), "
                f"{self.remote_errors} error(s)"
                + (" — degraded to local-only" if self.remote_degraded else "")
            )
        if (
            self.retries
            or self.quarantines
            or self.budget_trips
            or self.timeouts
            or self.pool_restarts
        ):
            lines.append(
                f"  supervisor            {self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
                f"{self.quarantines} quarantine(s), "
                f"{self.budget_trips} budget trip(s), "
                f"{self.timeouts} timeout(s), "
                f"{self.pool_restarts} pool restart(s)"
            )
        for timing in self.timings:
            if timing.quarantined:
                origin = "quarantined"
            elif timing.from_state:
                origin = "state"
            elif timing.from_cache:
                origin = "cache"
            else:
                origin = "checked"
            lines.append(
                f"  class {timing.class_name:<15} wave {timing.wave}  "
                f"{timing.seconds * 1000.0:8.2f} ms  [{origin}]"
            )
        return "\n".join(lines)
