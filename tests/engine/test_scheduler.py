"""Wave scheduling over the subsystem dependency DAG."""

from repro.engine.scheduler import (
    schedule,
    subsystem_dependencies,
    topological_waves,
)
from repro.frontend.parse import parse_module
from repro.workloads.hierarchy import (
    HierarchyShape,
    layered_project_source,
    project_source,
)


class TestTopologicalWaves:
    def test_independent_classes_form_one_wave(self):
        waves = topological_waves(
            {"A": frozenset(), "B": frozenset(), "C": frozenset()}
        )
        assert waves == [("A", "B", "C")]

    def test_chain_forms_singleton_waves(self):
        waves = topological_waves(
            {"A": frozenset(), "B": frozenset("A"), "C": frozenset("B")}
        )
        assert waves == [("A",), ("B",), ("C",)]

    def test_diamond(self):
        waves = topological_waves(
            {
                "Base": frozenset(),
                "Left": frozenset({"Base"}),
                "Right": frozenset({"Base"}),
                "Top": frozenset({"Left", "Right"}),
            }
        )
        assert waves == [("Base",), ("Left", "Right"), ("Top",)]

    def test_cycle_becomes_trailing_wave(self):
        waves = topological_waves(
            {
                "Free": frozenset(),
                "A": frozenset({"B"}),
                "B": frozenset({"A"}),
            }
        )
        assert waves == [("Free",), ("A", "B")]

    def test_empty(self):
        assert topological_waves({}) == []


class TestModuleScheduling:
    def test_wide_project_is_two_waves(self):
        shape = HierarchyShape(base_operations=3, subsystems=2)
        module, _violations = parse_module(project_source(shape, pairs=3))
        waves = schedule(module)
        assert waves == [
            ("Device0", "Device1", "Device2"),
            ("Controller0", "Controller1", "Controller2"),
        ]

    def test_layered_project_is_a_path(self):
        shape = HierarchyShape(base_operations=3)
        module, _violations = parse_module(layered_project_source(shape, depth=3))
        assert schedule(module) == [
            ("Layer0",),
            ("Layer1",),
            ("Layer2",),
            ("Layer3",),
        ]

    def test_external_dependencies_ignored(self):
        module, _violations = parse_module(
            "@sys(['a'])\n"
            "class Lonely:\n"
            "    def __init__(self):\n"
            "        self.a = NotInThisModule()\n"
            "    @op_initial_final\n"
            "    def run(self):\n"
            "        return []\n"
        )
        assert subsystem_dependencies(module) == {"Lonely": frozenset()}
        assert schedule(module) == [("Lonely",)]
