"""Ablation — end-to-end checking cost on synthetic class hierarchies.

Two sweeps over generated modules (see ``repro.workloads.hierarchy``):
operations per base class, and number of subsystem fields.  Both the
clean-verdict direction (prove absence of violations) and the
counterexample direction (find and render one) are measured.
"""

import pytest

from repro.core.checker import check_source
from repro.workloads.hierarchy import HierarchyShape, lifecycle_claim, module_source

OPERATION_SWEEP = [3, 6, 10]
SUBSYSTEM_SWEEP = [1, 4, 8]


@pytest.mark.parametrize("operations", OPERATION_SWEEP)
def test_checker_scaling_operations_clean(benchmark, operations):
    shape = HierarchyShape(base_operations=operations, subsystems=2, seed=3)
    source = module_source(shape, correct=True, claim=lifecycle_claim(shape))
    result = benchmark(check_source, source)
    assert result.ok
    print(f"\n{operations} ops/base, 2 subsystems: clean verdict")


@pytest.mark.parametrize("subsystems", SUBSYSTEM_SWEEP)
def test_checker_scaling_subsystems_clean(benchmark, subsystems):
    shape = HierarchyShape(
        base_operations=4,
        subsystems=subsystems,
        composite_operations=max(1, subsystems // 2),
        seed=5,
    )
    source = module_source(shape, correct=True)
    result = benchmark(check_source, source)
    assert result.ok
    print(f"\n4 ops/base, {subsystems} subsystems: clean verdict")


@pytest.mark.parametrize("subsystems", SUBSYSTEM_SWEEP)
def test_checker_scaling_counterexample(benchmark, subsystems):
    shape = HierarchyShape(
        base_operations=4,
        subsystems=subsystems,
        composite_operations=max(1, subsystems // 2),
        seed=5,
    )
    source = module_source(shape, correct=False)
    result = benchmark(check_source, source)
    assert not result.ok
    usage = result.by_code("invalid-subsystem-usage")
    assert len(usage) == 1
    assert usage[0].counterexample
    print(
        f"\n{subsystems} subsystems, planted bug: counterexample of "
        f"{len(usage[0].counterexample)} events found"
    )
