"""Content fingerprints: stability, sensitivity, and scoping."""

from repro.engine.fingerprint import (
    class_key,
    method_key,
    program_text,
    spec_fingerprint,
)
from repro.frontend.parse import parse_module

BASE = (
    "@sys\n"
    "class Valve:\n"
    "    @op_initial\n"
    "    def test(self):\n"
    "        return ['open']\n"
    "    @op_final\n"
    "    def open(self):\n"
    "        return []\n"
)

COMPOSITE = (
    "@sys(['a'])\n"
    "class Sector:\n"
    "    def __init__(self):\n"
    "        self.a = Valve()\n"
    "    @op_initial_final\n"
    "    def run(self):\n"
    "        self.a.test()\n"
    "        self.a.open()\n"
    "        return []\n"
)


def _classes(source):
    module, violations = parse_module(source)
    assert violations == []
    return {parsed.name: parsed for parsed in module.classes}


class TestMethodKey:
    def test_deterministic_across_parses(self):
        op1 = _classes(BASE + COMPOSITE)["Sector"].operation("run")
        op2 = _classes(BASE + COMPOSITE)["Sector"].operation("run")
        assert method_key(op1) == method_key(op2)

    def test_body_change_changes_key(self):
        original = _classes(BASE + COMPOSITE)["Sector"].operation("run")
        edited = _classes(
            BASE + COMPOSITE.replace("self.a.open()\n        ", "")
        )["Sector"].operation("run")
        assert method_key(original) != method_key(edited)

    def test_independent_of_method_position(self):
        shifted = "# a leading comment shifts every lineno\n" + BASE + COMPOSITE
        original = _classes(BASE + COMPOSITE)["Sector"].operation("run")
        moved = _classes(shifted)["Sector"].operation("run")
        assert method_key(original) == method_key(moved)

    def test_program_text_is_injective_on_structure(self):
        classes = _classes(BASE + COMPOSITE)
        texts = {
            program_text(op.body)
            for parsed in classes.values()
            for op in parsed.operations
        }
        assert len(texts) == 3  # test, open, run all differ


class TestClassKey:
    def test_stable_for_same_source(self):
        first = _classes(BASE + COMPOSITE)
        second = _classes(BASE + COMPOSITE)
        assert class_key(first["Sector"], first) == class_key(
            second["Sector"], second
        )

    def test_lineno_shift_invalidates(self):
        # Diagnostics carry line numbers, so cached verdicts must not
        # survive a pure downward shift of the class.
        first = _classes(BASE + COMPOSITE)
        shifted = _classes(BASE + "\n\n" + COMPOSITE)
        assert class_key(first["Sector"], first) != class_key(
            shifted["Sector"], shifted
        )

    def test_dependency_spec_change_invalidates_composite(self):
        first = _classes(BASE + COMPOSITE)
        # Add an operation to Valve: its *spec* changed.
        grown = _classes(
            BASE
            + "    @op\n"
            + "    def clean(self):\n"
            + "        return ['open']\n"
            + COMPOSITE
        )
        assert class_key(first["Sector"], first) != class_key(
            grown["Sector"], grown
        )

    def test_dependency_body_change_preserves_composite_key(self):
        # Editing a *body* of Valve does not change Valve's spec, so
        # Sector's verdict must stay cached.  Claims/usage only read
        # annotation structure of dependencies.  (Valve lives in its own
        # file here so the edit cannot shift Sector's line numbers.)
        sector = _classes(COMPOSITE)["Sector"]
        valve = _classes(BASE)["Valve"]
        edited_valve = _classes(
            BASE.replace(
                "    def open(self):\n        return []\n",
                "    def open(self):\n        pass\n        return []\n",
            )
        )["Valve"]
        assert spec_fingerprint(valve) == spec_fingerprint(edited_valve)
        assert class_key(sector, {"Valve": valve, "Sector": sector}) == class_key(
            sector, {"Valve": edited_valve, "Sector": sector}
        )

    def test_unrelated_class_change_preserves_key(self):
        extra = (
            "@sys\n"
            "class Bystander:\n"
            "    @op_initial_final\n"
            "    def go(self):\n"
            "        return []\n"
        )
        first = _classes(BASE + COMPOSITE)
        augmented = _classes(BASE + COMPOSITE + extra)
        assert class_key(first["Sector"], first) == class_key(
            augmented["Sector"], augmented
        )
