"""Property-based round-trip: spec → monitored traces → mined model.

The differential farm checks fixed seeds; this suite lets Hypothesis
drive the workload shape and the collection seed, asserting the mining
pipeline's two contracts on every drawn instance:

* **soundness** — the mined automaton never accepts a word the
  specification rejects (checked both by kernel inclusion and by
  re-running enumerated mined words through the spec DFA, so the two
  acceptance paths cross-validate each other);
* **exact recovery** — when the collected corpus covers every static
  transition (always true for generated workloads: their operations are
  single-exit, so every static path is dynamically feasible), the mined
  automaton is equivalent to the static one, by two-way kernel inclusion
  and by minimized state count.
"""

from itertools import islice

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.shortest import iter_accepted_words
from repro.mine.api import mine_source
from repro.mine.collect import CollectConfig
from repro.workloads.hierarchy import HierarchyShape, module_source

shapes = st.builds(
    HierarchyShape,
    base_operations=st.integers(min_value=2, max_value=4),
    subsystems=st.integers(min_value=1, max_value=2),
    composite_operations=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(deadline=None, max_examples=25)
@given(shape=shapes, collect_seed=st.integers(min_value=0, max_value=10_000))
def test_round_trip_recovers_specification(shape, collect_seed):
    source = module_source(shape, correct=True)
    report = mine_source(
        source,
        source_name="<property>",
        config=CollectConfig(
            seed=collect_seed, random_runs=6, max_random_len=8
        ),
        diff=True,
    )
    assert len(report.results) == 2
    for result in report.results:
        assert not result.corpus.notes, result.corpus.notes
        diff = result.diff
        # Soundness, via the kernel inclusion search.
        assert diff.sound, (
            result.class_name,
            diff.unsound_witness,
        )
        # Soundness again, via direct word enumeration: no mined word
        # up to length 6 may be spec-rejected.  Cross-validates the
        # kernel path with the classic DFA path.
        from repro.core.spec import ClassSpec
        from repro.frontend.parse import parse_module

        module, _violations = parse_module(source)
        spec = ClassSpec.of(module.get_class(result.class_name))
        spec_dfa = spec.dfa()
        for word in islice(iter_accepted_words(result.model.dfa, 6), 200):
            assert spec_dfa.accepts(word), (result.class_name, word)
        # Generated workloads are single-exit: the covering suite is
        # fully feasible, so coverage must be total...
        assert result.coverage == 1.0
        # ...and a transition-covering, evidence-carrying corpus makes
        # the learner recover the specification exactly.
        assert diff.equivalent, (result.class_name, diff.missed_witness)
        assert diff.mined_states == diff.static_states


@settings(deadline=None, max_examples=25)
@given(shape=shapes, collect_seed=st.integers(min_value=0, max_value=10_000))
def test_mined_accepts_every_observed_lifecycle(shape, collect_seed):
    """Whatever the merges did, no observed completed lifecycle (or
    finalizable prefix) may be rejected by the mined model."""
    source = module_source(shape, correct=True)
    report = mine_source(
        source,
        source_name="<property>",
        config=CollectConfig(
            seed=collect_seed, random_runs=8, max_random_len=10
        ),
        diff=False,
    )
    for result in report.results:
        for word in result.corpus.positive_words():
            assert result.model.accepts(word), (result.class_name, word)


@settings(deadline=None, max_examples=15)
@given(
    shape=shapes,
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_mining_is_a_pure_function_of_source_and_seed(shape, seed):
    source = module_source(shape, correct=True)
    config = CollectConfig(seed=seed, random_runs=5, max_random_len=6)
    first = mine_source(source, config=config, diff=True)
    second = mine_source(source, config=config, diff=True)
    assert first.format() == second.format()
    assert first.metrics()["mine"]["wall_seconds"] >= 0
    for left, right in zip(first.results, second.results):
        assert left.corpus.to_payload() == right.corpus.to_payload()
        assert left.model.dfa == right.model.dfa
