"""Span-tree stability: the golden guarantees of docs/observability.md.

The exported trace is a pure function of (project, cache temperature,
fault plan) — job count, executor choice and completion order must not
show through.  Durations are the one sanctioned difference, so every
comparison here strips the ``seconds`` fields and nothing else.
"""

import pytest

from repro.engine import faults
from repro.engine.cache import InferenceCache
from repro.engine.engine import verify_module
from repro.engine.faults import parse_faults
from repro.frontend.parse import parse_module
from repro.obs import PHASES, Tracer, metrics_payload, trace_lines
from repro.workloads.hierarchy import HierarchyShape, layered_project_source


@pytest.fixture(scope="module")
def layered():
    source = layered_project_source(HierarchyShape(), depth=3)
    return parse_module(source, "layered.py")


def traced_run(layered, **kwargs) -> tuple[Tracer, object]:
    module, violations = layered
    tracer = Tracer()
    batch = verify_module(module, violations, tracer=tracer, **kwargs)
    return tracer, batch


def sans_durations(tracer: Tracer) -> list[dict]:
    """The full JSONL export with the duration fields removed."""
    lines = []
    for line in trace_lines(tracer):
        line = dict(line)
        line.pop("seconds", None)
        lines.append(line)
    return lines


class TestJobCountInvariance:
    def test_jobs_1_and_jobs_4_export_identical_traces(
        self, layered, no_ambient_faults
    ):
        serial, _ = traced_run(layered, jobs=1)
        pooled, _ = traced_run(layered, jobs=4)
        assert sans_durations(serial) == sans_durations(pooled)

    def test_thread_and_process_executors_agree(
        self, layered, no_ambient_faults
    ):
        threaded, _ = traced_run(layered, jobs=2, executor="thread")
        processed, _ = traced_run(layered, jobs=2, executor="process")
        assert sans_durations(threaded) == sans_durations(processed)

    def test_every_class_carries_every_phase(self, layered, no_ambient_faults):
        tracer, batch = traced_run(layered, jobs=4)
        class_spans = [s for s in tracer.root.walk() if s.kind == "class"]
        assert len(class_spans) == batch.metrics.classes
        for span in class_spans:
            assert [c.name for c in span.children] == list(PHASES)
            assert all(c.kind == "phase" for c in span.children)


class TestCacheTemperature:
    def test_warm_run_has_the_same_shape_all_cached(
        self, layered, no_ambient_faults, tmp_path
    ):
        module, violations = layered
        cache = InferenceCache(tmp_path / "cache")
        cold = Tracer()
        verify_module(module, violations, cache=cache, tracer=cold)

        warm_cache = InferenceCache(tmp_path / "cache")  # fresh memory layer
        warm = Tracer()
        verify_module(module, violations, cache=warm_cache, tracer=warm)

        def shape(tracer):
            def strip(span):
                return (span.kind, span.name, tuple(map(strip, span.children)))
            return strip(tracer.root)

        assert shape(cold) == shape(warm)
        warm_classes = [s for s in warm.root.walk() if s.kind == "class"]
        assert warm_classes and all(s.status == "cached" for s in warm_classes)
        for span in warm_classes:
            assert [c.status for c in span.children] == ["cached"] * len(PHASES)

    def test_warm_runs_are_identical_to_each_other(
        self, layered, no_ambient_faults, tmp_path
    ):
        module, violations = layered
        verify_module(
            module, violations, cache=InferenceCache(tmp_path / "cache")
        )
        first = Tracer()
        verify_module(
            module, violations,
            cache=InferenceCache(tmp_path / "cache"), tracer=first,
        )
        second = Tracer()
        verify_module(
            module, violations, jobs=4,
            cache=InferenceCache(tmp_path / "cache"), tracer=second,
        )
        assert sans_durations(first) == sans_durations(second)


class TestFaultProfiles:
    def test_delay_profile_changes_nothing_but_durations(self, layered):
        faults.install(faults.FaultPlan(()))
        clean, _ = traced_run(layered, jobs=2)
        faults.install(parse_faults("worker:delay:*:arg=0.001"))
        delayed, _ = traced_run(layered, jobs=2)
        assert sans_durations(clean) == sans_durations(delayed)

    def test_quarantined_class_keeps_its_place_in_the_tree(self, layered):
        faults.install(parse_faults("worker:raise:Layer1"))
        tracer, batch = traced_run(layered, retries=0)
        assert batch.quarantined() == ("Layer1",)
        (span,) = [
            s for s in tracer.root.walk()
            if s.kind == "class" and s.name == "Layer1"
        ]
        assert span.status == "quarantined"
        assert [c.status for c in span.children] == ["quarantined"] * len(PHASES)
        # The quarantine shows up as a structured event on its wave.
        events = [
            e for s in tracer.root.walk() for e in s.events
            if e["name"] == "quarantine"
        ]
        assert events == [
            {"name": "quarantine", "cls": "Layer1", "kind": "crash"}
        ]
        # Healthy classes are untouched.
        healthy = [
            s for s in tracer.root.walk()
            if s.kind == "class" and s.name != "Layer1"
        ]
        assert healthy and all(s.status == "ok" for s in healthy)


class TestMetricsStability:
    def test_obs_section_is_job_count_invariant(
        self, layered, no_ambient_faults
    ):
        def obs_section(jobs):
            tracer, batch = traced_run(layered, jobs=jobs)
            payload = metrics_payload(batch.metrics.to_dict(), tracer)
            obs = payload["obs"]
            obs["phases"] = {
                name: entry["calls"] for name, entry in obs["phases"].items()
            }
            return obs

        assert obs_section(1) == obs_section(4)

    def test_per_class_rows_are_sorted_by_wave_then_name(
        self, layered, no_ambient_faults
    ):
        _, batch = traced_run(layered, jobs=4)
        rows = batch.metrics.to_dict()["per_class"]
        keys = [(row["wave"], row["class"]) for row in rows]
        assert keys == sorted(keys)

    def test_report_is_byte_identical_with_tracing_off_and_on(
        self, layered, no_ambient_faults
    ):
        module, violations = layered
        untraced = verify_module(module, violations, jobs=2)
        traced = verify_module(module, violations, jobs=2, tracer=Tracer())
        assert untraced.merged().format() == traced.merged().format()
