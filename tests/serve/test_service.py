"""In-process service tests: admission, fairness, deadlines, retries,
the circuit breaker, recovery and drain — no HTTP, no subprocesses.

The overload/fairness acceptance test for the PR lives here: queue
capacity K, 3×K concurrent submissions across 3 tenants → every excess
submission is shed *explicitly* (structured reason + retry-after), every
accepted job completes within its deadline bound, and per-tenant
completion counts come out exactly even.
"""

import asyncio
import time

import pytest

from repro.engine import faults
from repro.serve.breaker import OPEN
from repro.serve.config import ServeConfig
from repro.serve.jobs import DONE, FAILED, KIND_CRASH, KIND_DEADLINE
from repro.serve.queue import AdmissionError
from repro.serve.service import VerificationService
from repro.workloads.hierarchy import HierarchyShape, module_source

SOURCE = module_source(HierarchyShape(base_operations=2, subsystems=1))
FILES = {"module.py": SOURCE}


@pytest.fixture(autouse=True)
def clean_fault_plan():
    faults.install(None)
    yield
    faults.install(None)


def config_for(tmp_path, **overrides):
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        queue_depth=8,
        workers=2,
        job_deadline=60.0,
        breaker_backoff=0.2,
        drain_grace=10.0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def wait_terminal(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.jobs[job_id]
        if job.terminal:
            return job
        await service.updated(0.2)
    raise AssertionError(f"job {job_id} not terminal: {service.jobs[job_id]}")


class TestHappyPath:
    def test_submit_execute_report(self, tmp_path):
        async def scenario():
            service = VerificationService(config_for(tmp_path))
            await service.start()
            try:
                job = service.submit("alice", FILES)
                assert job.state == "queued"
                done = await wait_terminal(service, job.id)
                assert done.state == DONE
                assert done.ok is True
                assert done.classes == 2
                assert done.report
                assert done.seconds <= done.deadline
            finally:
                await service.drain()
            assert service.metrics.jobs_done_total == 1
            assert service.metrics.tenant_completed == {"alice": 1}
            # The daemon's verdict is byte-identical to the batch engine
            # over the same spool (same engine, same cache).
            from repro.engine.engine import verify_path

            target = service.journal.check_target(done)
            assert done.report == verify_path(str(target)).merged().format()

        asyncio.run(scenario())

    def test_prometheus_exposition_carries_the_serve_family(self, tmp_path):
        async def scenario():
            service = VerificationService(config_for(tmp_path))
            await service.start()
            try:
                job = service.submit("alice", FILES)
                await wait_terminal(service, job.id)
            finally:
                await service.drain()
            text = service.prometheus()
            assert 'repro_serve_jobs_total{state="done"} 1' in text
            assert 'repro_serve_tenant_completed_total{tenant="alice"} 1' in text
            assert "repro_serve_breaker_state" in text
            assert text.endswith("\n")

        asyncio.run(scenario())


class TestOverloadAndFairness:
    """The PR's overload acceptance scenario."""

    def test_3k_submissions_shed_explicitly_and_complete_fairly(self, tmp_path):
        K = 6
        tenants = ("alice", "bob", "carol")
        config = config_for(
            tmp_path,
            queue_depth=K,
            tenant_queue_cap=K // len(tenants),
            tenant_concurrency=1,
            workers=2,
        )

        async def scenario():
            service = VerificationService(config)
            accepted, rejected = [], []
            # Burst before the dispatcher starts: the daemon equivalent
            # of 3×K submissions racing in faster than jobs drain.  Each
            # tenant fires its whole burst at once, so the early tenants
            # hit their per-tenant cap and the last one the global bound.
            for tenant in tenants:
                for round_ in range(2 * len(tenants)):
                    try:
                        accepted.append(
                            service.submit(
                                tenant,
                                {"module.py": SOURCE + f"\n# round {round_}\n"},
                            )
                        )
                    except AdmissionError as error:
                        rejected.append((tenant, error))
            assert len(accepted) + len(rejected) == 3 * K
            # Exactly K admitted — the queue bound held.
            assert len(accepted) == K
            # Every rejection is explicit and machine-readable.
            for _tenant, error in rejected:
                assert error.reason in ("queue-full", "tenant-limit")
                assert error.retry_after > 0
            reasons = {error.reason for _t, error in rejected}
            assert reasons == {"queue-full", "tenant-limit"}
            assert service.metrics.submissions_total == 3 * K
            assert sum(service.metrics.rejections.values()) == len(rejected)

            await service.start()
            for job in accepted:
                done = await wait_terminal(service, job.id)
                assert done.state == DONE
                # No accepted job ran past its deadline bound.
                assert done.seconds <= config.job_deadline
            await service.drain()

            # Fairness: every tenant completed the same number of jobs.
            completed = service.metrics.tenant_completed
            assert completed == {tenant: K // len(tenants) for tenant in tenants}

        asyncio.run(scenario())

    def test_draining_rejects_with_explicit_reason(self, tmp_path):
        async def scenario():
            service = VerificationService(config_for(tmp_path))
            await service.start()
            await service.drain()
            with pytest.raises(AdmissionError) as excinfo:
                service.submit("alice", FILES)
            assert excinfo.value.reason == "draining"

        asyncio.run(scenario())


class TestDeadlines:
    def test_job_deadline_fails_the_job_with_kind_deadline(self, tmp_path):
        # A dispatch-side stall the per-class supervisor cannot see:
        # only the job-level backstop can catch it.
        faults.install(faults.parse_faults("serve-dispatch:delay:*:arg=3"))
        config = config_for(tmp_path, job_deadline=0.4, workers=1)

        async def scenario():
            service = VerificationService(config)
            await service.start()
            try:
                job = service.submit("alice", FILES)
                failed = await wait_terminal(service, job.id)
                assert failed.state == FAILED
                assert failed.kind == KIND_DEADLINE
                assert "deadline" in failed.error
            finally:
                await service.drain()

        asyncio.run(scenario())

    def test_class_timeout_defaults_to_the_job_deadline(self, tmp_path):
        config = config_for(tmp_path, job_deadline=7.5)
        assert config.effective_class_timeout == 7.5
        assert config_for(
            tmp_path, job_deadline=7.5, class_timeout=1.0
        ).effective_class_timeout == 1.0


class TestCrashesAndTheBreaker:
    def test_crash_retries_then_succeeds(self, tmp_path):
        faults.install(
            faults.parse_faults("serve-dispatch:raise:*:times=1")
        )
        config = config_for(tmp_path, job_retries=1)

        async def scenario():
            service = VerificationService(config)
            await service.start()
            try:
                job = service.submit("alice", FILES)
                done = await wait_terminal(service, job.id)
                assert done.state == DONE
                assert done.attempts == 2
            finally:
                await service.drain()
            assert service.metrics.retries_total == 1
            # One crash is not a pattern: the breaker stayed closed.
            assert service.breaker.state == "closed"

        asyncio.run(scenario())

    def test_exhausted_retries_fail_with_kind_crash(self, tmp_path):
        faults.install(faults.parse_faults("serve-dispatch:raise:*"))
        config = config_for(tmp_path, job_retries=1, breaker_threshold=10)

        async def scenario():
            service = VerificationService(config)
            await service.start()
            try:
                job = service.submit("alice", FILES)
                failed = await wait_terminal(service, job.id)
                assert failed.state == FAILED
                assert failed.kind == KIND_CRASH
                assert failed.attempts == 2
                assert "InjectedFault" in failed.error
            finally:
                await service.drain()

        asyncio.run(scenario())

    def test_repeated_crashes_trip_the_breaker_then_recover(self, tmp_path):
        faults.install(faults.parse_faults("serve-dispatch:raise:*:times=2"))
        config = config_for(
            tmp_path,
            job_retries=0,
            breaker_threshold=2,
            breaker_backoff=0.2,
            breaker_max_backoff=0.2,
        )

        async def scenario():
            service = VerificationService(config)
            await service.start()
            try:
                first = service.submit("alice", FILES)
                second = service.submit("bob", FILES)
                await wait_terminal(service, first.id)
                await wait_terminal(service, second.id)
                assert service.breaker.state == OPEN
                # While open, admission sheds with the breaker reason and
                # a retry-after bounded by the deterministic backoff.
                with pytest.raises(AdmissionError) as excinfo:
                    service.submit("carol", FILES)
                assert excinfo.value.reason == "breaker-open"
                assert 0 < excinfo.value.retry_after <= 0.2
                ready, detail = service.readyz()
                assert not ready and "breaker-open" in detail["blockers"]
                # After the backoff the half-open probe (faults now
                # exhausted) succeeds and the breaker closes.
                await asyncio.sleep(0.25)
                probe = service.submit("carol", FILES)
                done = await wait_terminal(service, probe.id)
                assert done.state == DONE
                assert service.breaker.state == "closed"
                assert service.metrics.breaker_trips_total >= 1
            finally:
                await service.drain()

        asyncio.run(scenario())


class TestRecovery:
    def test_queued_jobs_survive_a_cold_restart(self, tmp_path):
        config = config_for(tmp_path)

        async def before():
            # First daemon: journal two jobs but never start a dispatcher
            # (the moral equivalent of SIGKILL before dispatch).
            service = VerificationService(config)
            service.submit("alice", FILES)
            service.submit("bob", FILES)
            return [job.id for job in service.jobs.values()]

        async def after(ids):
            service = VerificationService(config)
            recovered = await service.start()
            assert recovered == 2
            assert service.metrics.recovered_jobs_total == 2
            try:
                for job_id in ids:
                    done = await wait_terminal(service, job_id)
                    assert done.state == DONE
                    assert done.recovered == 1
            finally:
                await service.drain()

        ids = asyncio.run(before())
        asyncio.run(after(ids))

    def test_lost_spool_fails_cleanly_on_recovery(self, tmp_path):
        import shutil

        config = config_for(tmp_path)

        async def before():
            service = VerificationService(config)
            return service.submit("alice", FILES).id

        job_id = asyncio.run(before())
        shutil.rmtree(config.serve_root / "spool" / job_id)

        async def after():
            service = VerificationService(config)
            await service.start()
            try:
                job = service.jobs[job_id]
                assert job.state == FAILED
                assert job.kind == "lost-spool"
            finally:
                await service.drain()

        asyncio.run(after())

    def test_drain_checkpoints_the_queue(self, tmp_path):
        config = config_for(tmp_path)

        async def scenario():
            service = VerificationService(config)
            # No dispatcher: both jobs stay queued, journaled as such.
            service.submit("alice", FILES)
            service.submit("bob", FILES)
            await service.start()
            summary = await service.drain()
            assert summary["abandoned_inflight"] == 0
            return summary

        summary = asyncio.run(scenario())
        # Whatever did not run is still journaled for the next start.
        fresh = VerificationService(config_for(tmp_path))
        loaded = fresh.journal.load_all()
        assert summary["completed"] + len(
            [job for job in loaded if not job.terminal]
        ) == 2
