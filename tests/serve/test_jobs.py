"""Job model and the crash-safe journal (repro.serve.jobs)."""

import json

import pytest

from repro.engine import faults
from repro.serve.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobError,
    JobJournal,
    make_job,
    requeued,
)

FILES = {"device.py": "# source\n"}


class TestMakeJob:
    def test_id_is_sequenced_and_content_addressed(self):
        job_a, _ = make_job(1, "alice", FILES, deadline=10.0, now=0.0)
        job_b, _ = make_job(2, "alice", FILES, deadline=10.0, now=0.0)
        assert job_a.id.startswith("j000001-")
        assert job_b.id.startswith("j000002-")
        # Same tenant + sources → same digest suffix; ids still unique.
        assert job_a.id.split("-")[1] == job_b.id.split("-")[1]
        other, _ = make_job(3, "bob", FILES, deadline=10.0, now=0.0)
        assert other.id.split("-")[1] != job_a.id.split("-")[1]

    @pytest.mark.parametrize(
        "files",
        [
            {},
            {"no_extension": "x"},
            {"sub/dir.py": "x"},
            {"..\\windows.py": "x"},
            {".hidden.py": "x"},
            {"module.py": 7},
        ],
    )
    def test_bad_submissions_raise(self, files):
        with pytest.raises(JobError):
            make_job(1, "t", files, deadline=10.0, now=0.0)

    def test_roundtrip_through_dict(self):
        job, _ = make_job(5, "t", FILES, deadline=3.5, now=1.0)
        assert Job.from_dict(job.to_dict()) == job
        assert Job.from_dict({"id": "x"}) is None
        assert Job.from_dict("not a dict") is None
        bad_state = dict(job.to_dict(), state="exploded")
        assert Job.from_dict(bad_state) is None


class TestJournal:
    def record_one(self, tmp_path, state=QUEUED):
        journal = JobJournal(tmp_path / "serve")
        job, files = make_job(1, "t", FILES, deadline=10.0, now=0.0)
        if state != QUEUED:
            from dataclasses import replace

            job = replace(job, state=state)
        journal.write_spool(job, files)
        assert journal.record(job)
        return journal, job

    def test_record_then_load_roundtrip(self, tmp_path):
        journal, job = self.record_one(tmp_path)
        fresh = JobJournal(tmp_path / "serve")
        assert fresh.load_all() == [job]
        assert fresh.stats.corrupt_entries == 0

    def test_spool_target_single_file(self, tmp_path):
        journal, job = self.record_one(tmp_path)
        target = journal.check_target(job)
        assert target is not None and target.name == "device.py"

    def test_spool_target_multi_file_is_the_directory(self, tmp_path):
        journal = JobJournal(tmp_path / "serve")
        job, files = make_job(
            1, "t", {"a.py": "#\n", "b.py": "#\n"}, deadline=10.0, now=0.0
        )
        journal.write_spool(job, files)
        target = journal.check_target(job)
        assert target == journal.spool_path(job.id)

    def test_lost_spool_is_detected(self, tmp_path):
        journal, job = self.record_one(tmp_path)
        (journal.spool_path(job.id) / "device.py").unlink()
        assert journal.check_target(job) is None

    def test_corrupt_record_is_skipped_not_fatal(self, tmp_path):
        journal, job = self.record_one(tmp_path)
        # A torn write: valid JSON prefix destroyed.
        path = journal.path(job.id)
        path.write_text(path.read_text()[: 40], encoding="utf-8")
        fresh = JobJournal(tmp_path / "serve")
        assert fresh.load_all() == []
        assert fresh.stats.corrupt_entries == 1

    def test_tampered_seal_is_rejected(self, tmp_path):
        journal, job = self.record_one(tmp_path)
        path = journal.path(job.id)
        envelope = json.loads(path.read_text())
        envelope["job"]["tenant"] = "mallory"
        path.write_text(json.dumps(envelope), encoding="utf-8")
        fresh = JobJournal(tmp_path / "serve")
        assert fresh.load_all() == []
        assert fresh.stats.corrupt_entries == 1

    def test_write_failure_is_counted_never_raised(self, tmp_path):
        journal = JobJournal(tmp_path / "serve")
        job, files = make_job(1, "t", FILES, deadline=10.0, now=0.0)
        faults.install(faults.parse_faults("store-write:enospc:serve-job/*"))
        try:
            assert journal.record(job) is False
        finally:
            faults.install(None)
        assert journal.stats.write_failures == 1
        assert journal.load_all() == []

    def test_next_seq_continues_after_the_max(self, tmp_path):
        journal = JobJournal(tmp_path / "serve")
        jobs = []
        for seq in (3, 7, 5):
            job, files = make_job(seq, "t", FILES, deadline=10.0, now=0.0)
            journal.write_spool(job, files)
            journal.record(job)
            jobs.append(job)
        loaded = JobJournal(tmp_path / "serve").load_all()
        assert [job.seq for job in loaded] == [3, 5, 7]
        assert journal.next_seq(loaded) == 8

    def test_requeued_marks_recovery(self):
        from dataclasses import replace

        job, _ = make_job(1, "t", FILES, deadline=10.0, now=0.0)
        running = replace(job, state=RUNNING, started_at=5.0, attempts=1)
        fresh = requeued(running)
        assert fresh.state == QUEUED
        assert fresh.started_at is None
        assert fresh.recovered == 1
        assert fresh.attempts == 1  # attempts survive: the budget is global

    def test_terminal_states(self):
        job, _ = make_job(1, "t", FILES, deadline=10.0, now=0.0)
        from dataclasses import replace

        assert not job.terminal
        assert replace(job, state=DONE).terminal
        assert replace(job, state=FAILED).terminal
