"""Dynamic enforcement of extracted models."""

import pytest

from repro.frontend.decorators import op, op_final, op_initial, sys
from repro.runtime.monitor import (
    IncompleteLifecycleError,
    OrderViolationError,
    SpecMismatchError,
    finalize,
    history_of,
    lifecycle,
    monitored,
)
from repro.runtime.trace import TraceRecorder


def make_valve_class():
    """A fresh annotated Valve class (runtime flavour, no pins)."""

    @sys
    class Valve:
        def __init__(self):
            self.is_open = False
            self.needs_cleaning = False

        @op_initial
        def test(self):
            if self.needs_cleaning:
                return ["clean"]
            return ["open"]

        @op
        def open(self):
            self.is_open = True
            return ["close"]

        @op_final
        def close(self):
            self.is_open = False
            return ["test"]

        @op_final
        def clean(self):
            return ["test"]

    return Valve


@pytest.fixture
def valve_class():
    return monitored(make_valve_class())


class TestHappyPath:
    def test_valid_lifecycle(self, valve_class):
        valve = valve_class()
        valve.test()
        valve.open()
        valve.close()
        finalize(valve)
        assert history_of(valve) == ("test", "open", "close")

    def test_empty_lifecycle_finalizes(self, valve_class):
        finalize(valve_class())

    def test_repeated_cycles(self, valve_class):
        valve = valve_class()
        valve.test()
        valve.open()
        valve.close()
        valve.test()
        valve.open()
        valve.close()
        finalize(valve)

    def test_lifecycle_context_manager(self, valve_class):
        with lifecycle(valve_class()) as valve:
            valve.test()
            valve.open()
            valve.close()

    def test_return_values_pass_through(self, valve_class):
        valve = valve_class()
        assert valve.test() == ["open"]


class TestViolations:
    def test_non_initial_first_call(self, valve_class):
        valve = valve_class()
        with pytest.raises(OrderViolationError) as exc:
            valve.open()
        assert "allowed now: test" in str(exc.value)

    def test_out_of_order_call(self, valve_class):
        valve = valve_class()
        valve.test()
        with pytest.raises(OrderViolationError):
            valve.close()  # close requires open first

    def test_finalize_mid_lifecycle(self, valve_class):
        valve = valve_class()
        valve.test()
        valve.open()
        with pytest.raises(IncompleteLifecycleError) as exc:
            finalize(valve)
        assert "test, open" in str(exc.value)

    def test_call_after_finalize(self, valve_class):
        valve = valve_class()
        finalize(valve)
        with pytest.raises(OrderViolationError):
            valve.test()

    def test_lifecycle_context_raises_on_incomplete(self, valve_class):
        with pytest.raises(IncompleteLifecycleError):
            with lifecycle(valve_class()) as valve:
                valve.test()
                valve.open()

    def test_instances_tracked_independently(self, valve_class):
        first, second = valve_class(), valve_class()
        first.test()
        first.open()
        second.test()  # second instance starts fresh
        first.close()
        finalize(first)


class TestSpecMismatch:
    def test_undeclared_next_set(self):
        # The published spec says go returns ["go"]; the implementation
        # returns a next-set no exit point declares.
        from repro.core.spec import ClassSpec
        from repro.frontend.parse import parse_module

        module, _ = parse_module(
            "@sys\n"
            "class Liar:\n"
            "    @op_initial\n"
            "    def go(self):\n"
            "        return ['go']\n"
        )
        spec = ClassSpec.of(module.get_class("Liar"))

        class Liar:
            def go(self):
                return ["undeclared"]

        wrapped = monitored(Liar, spec=spec)
        with pytest.raises(SpecMismatchError):
            wrapped().go()

    def test_non_list_return(self):
        # The declared spec is clean; the implementation misbehaves at
        # run time by returning a bare int.  Supplying the spec
        # explicitly mimics checking firmware against a published model.
        from repro.core.spec import ClassSpec
        from repro.frontend.parse import parse_module

        module, _ = parse_module(
            "@sys\n"
            "class Broken:\n"
            "    @op_initial\n"
            "    def go(self):\n"
            "        return ['go']\n"
        )
        spec = ClassSpec.of(module.get_class("Broken"))

        class Broken:
            def go(self):
                return 42

        wrapped = monitored(Broken, spec=spec)
        with pytest.raises(SpecMismatchError):
            wrapped().go()


class TestUserValueForm:
    def test_tuple_returns_narrow_state(self):
        @sys
        class Meter:
            @op_initial
            def read(self):
                return ["stop"], 42

            @op_final
            def stop(self):
                return []

        wrapped = monitored(Meter)
        meter = wrapped()
        follow, value = meter.read()
        assert (follow, value) == (["stop"], 42)
        meter.stop()
        finalize(meter)


class TestRecorder:
    def test_recorder_captures_events(self):
        recorder = TraceRecorder()
        wrapped = monitored(make_valve_class(), recorder=recorder)
        valve = wrapped()
        valve.test()
        valve.open()
        valve.close()
        assert recorder.as_trace() == ("test", "open", "close")
        assert recorder.format() == "test, open, close"
        assert len(recorder) == 3
