"""Runtime verification: dynamic enforcement of extracted models.

:func:`monitored` wraps an ``@sys`` class so every instance enforces its
specification at run time; :func:`finalize` / :class:`lifecycle` enforce
the final-operation requirement; :class:`TraceRecorder` captures the
observed event sequence for replay against static models.
"""

from repro.runtime.monitor import (
    IncompleteLifecycleError,
    MonitorError,
    OrderViolationError,
    SpecMismatchError,
    allowed_now,
    call_operation,
    finalize,
    history_of,
    is_finalizable,
    lifecycle,
    monitored,
    set_recorder,
)
from repro.runtime.trace import ScopedRecorder, TraceRecorder

__all__ = [
    "IncompleteLifecycleError",
    "MonitorError",
    "OrderViolationError",
    "ScopedRecorder",
    "SpecMismatchError",
    "TraceRecorder",
    "allowed_now",
    "call_operation",
    "finalize",
    "history_of",
    "is_finalizable",
    "lifecycle",
    "monitored",
    "set_recorder",
]
