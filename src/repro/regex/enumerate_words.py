"""Bounded enumeration of the words of a regular expression.

Used throughout the metatheory checks (Theorems 1 and 2): we compare the
trace set of a program, enumerated from the semantics of Figure 4, with
the word set of the inferred regex, enumerated here, up to a length bound.

Enumeration works by breadth-first search over Brzozowski derivatives, so
it visits each *distinct* residual language once per prefix and never
loops on starred terms.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.regex.ast import Empty, Regex, alphabet as regex_alphabet
from repro.regex.derivatives import derivative, nullable


def iter_words(
    regex: Regex,
    max_length: int,
    alphabet: frozenset[str] | None = None,
) -> Iterator[tuple[str, ...]]:
    """Yield every word of ``regex`` with length at most ``max_length``.

    Words are yielded in length-lexicographic order, which makes the
    output deterministic and convenient for golden tests.  ``alphabet``
    defaults to the symbols occurring in the regex (symbols outside it can
    never appear in an accepted word).
    """
    if max_length < 0:
        return
    if alphabet is None:
        alphabet = regex_alphabet(regex)
    ordered = sorted(alphabet)
    queue: deque[tuple[tuple[str, ...], Regex]] = deque([((), regex)])
    while queue:
        word, residual = queue.popleft()
        if nullable(residual):
            yield word
        if len(word) >= max_length:
            continue
        for symbol in ordered:
            successor = derivative(residual, symbol)
            if not isinstance(successor, Empty):
                queue.append((word + (symbol,), successor))


def words_up_to(
    regex: Regex,
    max_length: int,
    alphabet: frozenset[str] | None = None,
) -> frozenset[tuple[str, ...]]:
    """The set of words of ``regex`` with length at most ``max_length``."""
    return frozenset(iter_words(regex, max_length, alphabet))


def count_words(regex: Regex, max_length: int) -> int:
    """Number of distinct words of ``regex`` up to ``max_length``."""
    return sum(1 for _ in iter_words(regex, max_length))


def shortest_word(regex: Regex, search_limit: int = 10_000) -> tuple[str, ...] | None:
    """The length-lexicographically smallest word of ``regex``.

    Returns ``None`` if the language is empty.  ``search_limit`` bounds
    the number of BFS nodes explored as a safety net; canonical terms
    reach a nullable derivative quickly when the language is non-empty.
    """
    ordered = sorted(regex_alphabet(regex))
    queue: deque[tuple[tuple[str, ...], Regex]] = deque([((), regex)])
    seen: set[Regex] = set()
    explored = 0
    while queue and explored < search_limit:
        word, residual = queue.popleft()
        explored += 1
        if nullable(residual):
            return word
        for symbol in ordered:
            successor = derivative(residual, symbol)
            if isinstance(successor, Empty) or successor in seen:
                continue
            seen.add(successor)
            queue.append((word + (symbol,), successor))
    return None
