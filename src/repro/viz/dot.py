"""Graphviz DOT rendering of extracted models.

Three diagram kinds, matching the paper's figures:

* :func:`spec_diagram` — the class behavior diagram of Figures 1 and 2:
  one node per operation, an edge per allowed successor, an entry arrow
  into each initial operation, double circles on final operations;
* :func:`dependency_diagram` — the §3.1 method-dependency graph of
  Figure 3, with entry and exit nodes drawn separately;
* :func:`nfa_dot` / :func:`dfa_dot` — generic automaton diagrams for
  debugging and documentation.

Output is plain DOT text: render with any Graphviz installation
(``dot -Tpng``), no Python dependency required.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.core.dependency import DependencyGraph, EntryNode, ExitNode
from repro.core.spec import ClassSpec


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def spec_diagram(spec: ClassSpec, title: str | None = None) -> str:
    """The behavior diagram generated from annotations (Figures 1–2)."""
    lines = [f"digraph {_quote(title or spec.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append('  node [shape=circle, fontname="Helvetica"];')
    lines.append('  __start__ [shape=point, label=""];')
    for operation in spec.operations:
        shape = "doublecircle" if operation.kind.is_final else "circle"
        lines.append(f"  {_quote(operation.name)} [shape={shape}];")
    for operation in spec.initial_operations():
        lines.append(f"  __start__ -> {_quote(operation.name)};")
    seen: set[tuple[str, str]] = set()
    for operation in spec.operations:
        for point in operation.returns:
            for successor in point.next_methods:
                edge = (operation.name, successor)
                if edge in seen or spec.operation(successor) is None:
                    continue
                seen.add(edge)
                lines.append(
                    f"  {_quote(operation.name)} -> {_quote(successor)};"
                )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dependency_diagram(graph: DependencyGraph) -> str:
    """The §3.1 method-dependency graph (Figure 3)."""

    def node_id(node) -> str:
        if isinstance(node, EntryNode):
            return _quote(f"entry:{node.method}")
        assert isinstance(node, ExitNode)
        return _quote(f"exit:{node.method}:{node.exit_id}")

    lines = [f"digraph {_quote(graph.class_name + ' dependencies')} {{"]
    lines.append("  rankdir=LR;")
    lines.append('  node [fontname="Helvetica"];')
    for entry in graph.entries:
        lines.append(
            f"  {node_id(entry)} [shape=box, style=bold, label={_quote(entry.label())}];"
        )
    for exit_node in graph.exits:
        lines.append(
            f"  {node_id(exit_node)} [shape=ellipse, label={_quote(exit_node.label())}];"
        )
    for source, target in graph.arcs:
        lines.append(f"  {node_id(source)} -> {node_id(target)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def nfa_dot(nfa: NFA, title: str = "nfa") -> str:
    """A generic NFA diagram (epsilon moves drawn dashed)."""
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  rankdir=LR;")
    lines.append('  node [shape=circle, fontname="Helvetica"];')
    lines.append('  __start__ [shape=point, label=""];')
    for state in sorted(nfa.states, key=str):
        shape = "doublecircle" if state in nfa.accepting_states else "circle"
        lines.append(f"  {_quote(str(state))} [shape={shape}];")
    for state in sorted(nfa.initial_states, key=str):
        lines.append(f"  __start__ -> {_quote(str(state))};")
    for source, symbol, target in nfa.iter_transitions():
        if symbol is None:
            lines.append(
                f"  {_quote(str(source))} -> {_quote(str(target))} "
                '[label="ε", style=dashed];'
            )
        else:
            lines.append(
                f"  {_quote(str(source))} -> {_quote(str(target))} "
                f"[label={_quote(symbol)}];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dfa_dot(dfa: DFA, title: str = "dfa") -> str:
    """A generic DFA diagram."""
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  rankdir=LR;")
    lines.append('  node [shape=circle, fontname="Helvetica"];')
    lines.append('  __start__ [shape=point, label=""];')
    for state in sorted(dfa.states, key=str):
        shape = "doublecircle" if state in dfa.accepting_states else "circle"
        lines.append(f"  {_quote(str(state))} [shape={shape}];")
    lines.append(f"  __start__ -> {_quote(str(dfa.initial_state))};")
    for source, symbol, target in dfa.iter_transitions():
        lines.append(
            f"  {_quote(str(source))} -> {_quote(str(target))} "
            f"[label={_quote(symbol)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
