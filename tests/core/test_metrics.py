"""Model metrics."""

import pytest

from repro.core.metrics import collect_metrics


class TestValveMetrics:
    def test_counts(self, valve):
        metrics = collect_metrics(valve)
        assert metrics.class_name == "Valve"
        assert metrics.operations == 4
        assert metrics.initial_operations == 1
        assert metrics.final_operations == 2
        assert metrics.exit_points == 5
        assert metrics.dependency_arcs == 10

    def test_minimal_automata_sizes(self, valve):
        metrics = collect_metrics(valve)
        # Valve's protocol needs 4 states; base class behavior == spec.
        assert metrics.spec_states_minimal == 4
        assert metrics.behavior_states_minimal == metrics.spec_states_minimal

    def test_lifecycle_count(self, valve):
        metrics = collect_metrics(valve)
        # Up to length 6: (), tc, toc, tctc, tocte... enumerate = 8.
        assert metrics.lifecycles_up_to_6 == 8

    def test_constrainedness_in_unit_interval(self, valve):
        metrics = collect_metrics(valve)
        assert 0.0 <= metrics.constrainedness <= 1.0
        # The valve forbids most orders.
        assert metrics.constrainedness > 0.5


class TestBadSectorMetrics:
    def test_composite_behavior_larger_than_spec(self, bad_sector):
        metrics = collect_metrics(bad_sector)
        assert metrics.behavior_states_minimal > metrics.spec_states_minimal

    def test_body_ir_counted(self, bad_sector):
        metrics = collect_metrics(bad_sector)
        assert metrics.body_ir_nodes > 20


class TestFormatting:
    def test_format_mentions_everything(self, valve):
        text = collect_metrics(valve).format()
        assert "model metrics for Valve:" in text
        assert "operations            4 (1 initial, 2 final)" in text
        assert "constrainedness" in text


class TestUnconstrainedClass:
    def test_free_protocol_has_low_constrainedness(self):
        from repro.frontend.parse import parse_module

        # Any order allowed: one op that is initial+final and allows itself.
        module, _ = parse_module(
            "@sys\n"
            "class Free:\n"
            "    @op_initial_final\n"
            "    def step(self):\n"
            "        return ['step']\n"
        )
        metrics = collect_metrics(module.get_class("Free"))
        assert metrics.constrainedness == pytest.approx(0.0)
