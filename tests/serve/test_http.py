"""The daemon over real HTTP: one ``repro serve`` subprocess per test
(or shared where read-only), driven with stdlib urllib."""

import json
import urllib.request

import pytest

from tests.serve.conftest import EXAMPLE


class TestEndpoints:
    @pytest.fixture
    def daemon(self, daemon_factory):
        return daemon_factory("--workers", "2")

    def test_healthz_and_readyz_come_up_green(self, daemon):
        status, health = daemon.get("/healthz")
        assert status == 200 and health["ok"] is True
        assert health["pid"] == daemon.proc.pid
        status, ready = daemon.get("/readyz")
        assert status == 200 and ready["ready"] is True
        assert ready["blockers"] == []

    def test_submit_poll_report(self, daemon, example_source):
        status, job, _headers = daemon.submit(
            {"greenhouse.py": example_source}, tenant="alice"
        )
        assert status == 202
        assert job["state"] == "queued"
        done = daemon.wait_job(job["id"])
        assert done["state"] == "done"
        assert done["ok"] is True
        assert done["classes"] == 4
        assert "vacuous-claim" in done["report"]

    def test_job_listing_and_404(self, daemon, example_source):
        status, listing = daemon.get("/v1/jobs")
        assert status == 200 and listing["jobs"] == []
        daemon.submit({"greenhouse.py": example_source})
        status, listing = daemon.get("/v1/jobs")
        assert status == 200 and len(listing["jobs"]) == 1
        status, body = daemon.get("/v1/jobs/nope")
        assert status == 404 and "no job" in body["error"]

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {"files": "not a dict"},
            {"tenant": "", "files": {"m.py": "x"}},
            {"tenant": "t", "files": {"../evil.py": "x"}},
        ],
    )
    def test_bad_submissions_get_400(self, daemon, payload):
        status, body = daemon.post("/v1/jobs", payload)
        assert status == 400
        assert "error" in body

    def test_method_and_route_errors(self, daemon):
        status, _body = daemon.post("/healthz")
        assert status == 405
        status, _body = daemon.get("/v2/nothing")
        assert status == 404

    def test_metrics_exposition(self, daemon, example_source):
        _status, job, _headers = daemon.submit({"greenhouse.py": example_source})
        daemon.wait_job(job["id"])
        status, text = daemon.get("/metrics")
        assert status == 200
        assert 'repro_serve_jobs_total{state="done"} 1' in text
        assert "repro_serve_queue_depth 0" in text
        assert 'repro_serve_breaker_state{state="closed"} 1' in text

    def test_event_stream_until_terminal(self, daemon, example_source):
        _status, job, _headers = daemon.submit({"greenhouse.py": example_source})
        with urllib.request.urlopen(
            daemon.base + f"/v1/jobs/{job['id']}/events", timeout=120
        ) as response:
            lines = [
                json.loads(line)
                for line in response.read().decode("utf-8").splitlines()
            ]
        states = [line["state"] for line in lines]
        assert states[-1] in ("done", "failed")
        assert states == sorted(set(states), key=states.index)  # no repeats


class TestOverloadOverHttp:
    def test_shed_submissions_get_429_with_retry_after(
        self, daemon_factory, example_source
    ):
        daemon = daemon_factory(
            "--queue-depth", "1",
            "--workers", "1",
            "--faults", "serve-dispatch:delay:*:arg=2",
        )
        statuses = []
        retry_after = None
        for index in range(4):
            status, body, headers = daemon.submit(
                {"m.py": example_source + f"\n# {index}\n"}, tenant=f"t{index}"
            )
            statuses.append(status)
            if status == 429:
                assert body["reason"] == "queue-full"
                retry_after = headers.get("Retry-After")
        assert statuses.count(202) >= 1
        assert statuses.count(429) >= 1
        assert retry_after is not None and int(retry_after) >= 1


class TestDrain:
    def test_post_drain_flips_readiness_and_sheds(
        self, daemon_factory, example_source
    ):
        daemon = daemon_factory()
        status, body = daemon.post("/v1/drain")
        assert status == 202 and body["draining"] is True
        status, ready = daemon.get("/readyz")
        assert status == 503
        assert "draining" in ready["blockers"]
        status, body, _headers = daemon.submit({"m.py": example_source})
        assert status == 503
        assert body["reason"] == "draining"
        rc, err = daemon.terminate()
        assert rc == 0

    def test_sigterm_finishes_inflight_work_before_exit(
        self, daemon_factory, example_source
    ):
        daemon = daemon_factory("--workers", "1")
        _status, job, _headers = daemon.submit({"greenhouse.py": example_source})
        rc, err = daemon.terminate()
        assert rc == 0
        assert "drain requested" in err
        assert "drained" in err
        # The drain let the in-flight job finish: its journal record is
        # terminal, so a restarted daemon serves the verdict directly.
        restarted = daemon_factory()
        status, record = restarted.get(f"/v1/jobs/{job['id']}")
        assert status == 200
        assert record["state"] == "done"
        assert record["report"]
        assert "recovered from the journal" in restarted.ready_line


def test_endpoint_file_records_the_listen_address(daemon_factory, tmp_path):
    daemon = daemon_factory(cache_dir=tmp_path / "cache")
    endpoint = json.loads(
        (tmp_path / "cache" / "serve" / "endpoint.json").read_text()
    )
    assert daemon.base.endswith(f":{endpoint['port']}")
    assert endpoint["pid"] == daemon.proc.pid


def test_bad_env_fault_spec_refuses_startup(tmp_path):
    import subprocess
    import sys

    from tests.serve.conftest import SRC_DIR

    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--cache-dir", str(tmp_path / "cache"),
        ],
        capture_output=True,
        text=True,
        timeout=60,
        env={
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": SRC_DIR,
            "REPRO_FAULTS": "nonsense:raise:*",
        },
    )
    assert completed.returncode != 0
    assert "unknown fault site" in completed.stderr
    assert "serve-dispatch" in completed.stderr  # lists the valid sites


# Keep EXAMPLE imported: the fixture in conftest reads it lazily, and a
# missing example file should fail loudly here, not mid-daemon.
assert EXAMPLE.is_file()
