"""Model-based conformance testing of valve firmware.

The extracted model of Listing 2.1's ``Valve`` is used as a *test
oracle*: a transition-covering suite of complete lifecycles is generated
from the specification automaton, and two candidate firmware
implementations are driven through it under the runtime monitor —

* ``GoodFirmware`` follows the protocol and conforms;
* ``BuggyFirmware`` returns an undeclared next-method set after
  ``clean`` (it believes a cleaned valve may be opened directly) and is
  caught with the exact sequence and reason.

Run with::

    python examples/conformance_testing.py
"""

from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.paper import VALVE
from repro.testing.conformance import check_conformance, generate_suite


class GoodFirmware:
    """Follows the Valve protocol; alternates clean/open lifecycles."""

    def __init__(self):
        self.dirty = True

    def test(self):
        if self.dirty:
            return ["clean"]
        return ["open"]

    def open(self):
        return ["close"]

    def close(self):
        self.dirty = True
        return ["test"]

    def clean(self):
        self.dirty = False
        return ["test"]


class BuggyFirmware:
    """Believes a cleaned valve may be opened immediately — clean's
    return value names a successor the specification never declares."""

    def __init__(self):
        self.dirty = True

    def test(self):
        if self.dirty:
            return ["clean"]
        return ["open"]

    def open(self):
        return ["close"]

    def close(self):
        self.dirty = True
        return ["test"]

    def clean(self):
        self.dirty = False
        return ["open"]  # BUG: spec says clean -> test


def main() -> int:
    module, violations = parse_module(VALVE)
    assert not violations
    spec = ClassSpec.of(module.get_class("Valve"))

    print("=" * 72)
    print("1. Test suite generated from the extracted Valve model")
    print("=" * 72)
    suite = generate_suite(spec)
    for sequence in suite:
        print("  " + (", ".join(sequence) or "(empty lifecycle)"))

    print()
    print("=" * 72)
    print("2. Conformance of the faithful firmware")
    print("=" * 72)
    good = check_conformance(GoodFirmware, spec)
    print(good.format())

    print()
    print("=" * 72)
    print("3. Conformance of the buggy firmware")
    print("=" * 72)
    buggy = check_conformance(BuggyFirmware, spec)
    print(buggy.format())

    return 0 if good.conformant and not buggy.conformant else 1


if __name__ == "__main__":
    raise SystemExit(main())
