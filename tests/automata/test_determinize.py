"""Subset construction."""

from repro.automata.determinize import determinize
from repro.automata.nfa import NFABuilder


def ambiguous_nfa():
    """Accepts a(a|b)* via two a-successors from the start."""
    builder = NFABuilder()
    builder.mark_initial(0)
    builder.add_transition(0, "a", 1)
    builder.add_transition(0, "a", 2)
    builder.add_transition(1, "a", 1)
    builder.add_transition(2, "b", 2)
    builder.mark_accepting(1)
    builder.mark_accepting(2)
    return builder.build()


class TestDeterminize:
    def test_language_preserved(self):
        nfa = ambiguous_nfa()
        dfa = determinize(nfa)
        for word in ([], ["a"], ["a", "a"], ["a", "b"], ["b"], ["a", "a", "b"]):
            assert nfa.accepts(word) == dfa.accepts(word)

    def test_states_are_subsets(self):
        dfa = determinize(ambiguous_nfa())
        assert all(isinstance(state, frozenset) for state in dfa.states)

    def test_initial_is_epsilon_closure(self):
        builder = NFABuilder()
        builder.mark_initial(0)
        builder.add_epsilon(0, 1)
        builder.add_transition(1, "a", 2)
        builder.mark_accepting(2)
        dfa = determinize(builder.build())
        assert dfa.initial_state == frozenset({0, 1})

    def test_no_empty_subset_state(self):
        dfa = determinize(ambiguous_nfa())
        assert frozenset() not in dfa.states

    def test_deterministic_single_successor(self):
        dfa = determinize(ambiguous_nfa())
        successor = dfa.successor(dfa.initial_state, "a")
        assert successor == frozenset({1, 2})

    def test_epsilon_loops_terminate(self):
        builder = NFABuilder()
        builder.mark_initial(0)
        builder.add_epsilon(0, 1)
        builder.add_epsilon(1, 0)
        builder.add_transition(1, "a", 2)
        builder.mark_accepting(2)
        dfa = determinize(builder.build())
        assert dfa.accepts(["a"])
        assert not dfa.accepts([])

    def test_accepting_subsets_marked(self):
        nfa = ambiguous_nfa()
        dfa = determinize(nfa)
        for state in dfa.states:
            assert (bool(state & nfa.accepting_states)) == (
                state in dfa.accepting_states
            )
