"""The simulated wireless link."""

import pytest

from repro.micropython.radio import Datagram, Ether, Radio, reset_ether
from repro.micropython.timer import VirtualClock


@pytest.fixture
def ether():
    return Ether()


class TestEther:
    def test_attach_and_route(self, ether):
        ether.attach("a")
        frame = Datagram("b", "a", b"hi", 0)
        assert ether.transmit(frame)
        assert ether.pending("a") == 1
        assert ether.pop("a") == frame

    def test_unknown_destination_dropped(self, ether):
        frame = Datagram("a", "ghost", b"x", 0)
        assert not ether.transmit(frame)
        assert ether.dropped == [frame]

    def test_duplicate_attach_rejected(self, ether):
        ether.attach("a")
        with pytest.raises(ValueError):
            ether.attach("a")

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            Ether(loss_rate=1.0)

    def test_deterministic_loss(self):
        first = Ether(loss_rate=0.5, seed=7)
        second = Ether(loss_rate=0.5, seed=7)
        for medium in (first, second):
            medium.attach("rx")
        outcomes_first = [
            first.transmit(Datagram("tx", "rx", b"x", 0)) for _ in range(20)
        ]
        outcomes_second = [
            second.transmit(Datagram("tx", "rx", b"x", 0)) for _ in range(20)
        ]
        assert outcomes_first == outcomes_second
        assert not all(outcomes_first)
        assert any(outcomes_first)

    def test_log_records_delivered_only(self):
        medium = Ether()
        medium.attach("rx")
        medium.transmit(Datagram("tx", "rx", b"ok", 0))
        medium.transmit(Datagram("tx", "ghost", b"no", 0))
        assert len(medium.log) == 1
        assert len(medium.dropped) == 1


class TestRadio:
    def test_send_and_receive(self, ether):
        clock = VirtualClock()
        sender = Radio("tx", ether=ether, clock=clock)
        receiver = Radio("rx", ether=ether, clock=clock)
        assert sender.send("rx", "hello")
        frame = receiver.recv()
        assert frame is not None
        assert frame.payload == b"hello"
        assert frame.source == "tx"

    def test_recv_empty_returns_none(self, ether):
        radio = Radio("solo", ether=ether, clock=VirtualClock())
        assert radio.recv() is None

    def test_recv_all_drains(self, ether):
        clock = VirtualClock()
        sender = Radio("tx", ether=ether, clock=clock)
        receiver = Radio("rx", ether=ether, clock=clock)
        for index in range(3):
            sender.send("rx", f"m{index}")
        frames = receiver.recv_all()
        assert [f.payload for f in frames] == [b"m0", b"m1", b"m2"]
        assert receiver.recv() is None

    def test_timestamps_use_virtual_clock(self, ether):
        clock = VirtualClock()
        sender = Radio("tx", ether=ether, clock=clock)
        Radio("rx", ether=ether, clock=clock)
        clock.sleep_ms(1234)
        sender.send("rx", "x")
        assert ether.log[0].sent_at_ms == 1234

    def test_energy_accounting(self, ether):
        clock = VirtualClock()
        sender = Radio("tx", ether=ether, clock=clock)
        receiver = Radio("rx", ether=ether, clock=clock)
        sender.send("rx", b"12345")  # 5 bytes
        assert sender.energy_uj == pytest.approx(5 * Radio.SEND_UJ_PER_BYTE)
        clock.sleep_ms(100)
        receiver.recv()
        expected = 100 * Radio.LISTEN_UJ_PER_MS + 5 * Radio.RECV_UJ_PER_BYTE
        assert receiver.energy_uj == pytest.approx(expected)

    def test_default_ether_reset(self):
        medium = reset_ether(loss_rate=0.0)
        radio = Radio("fresh")
        assert medium.pending("fresh") == 0
        del radio
        reset_ether()
