"""Trace semantics of the source calculus (the ``s ⊢ l ∈ p`` of Figure 4).

A *status* is ``0`` (ongoing — the program can be sequenced further) or
``R`` (returned — a ``return`` fired and nothing may follow).  The
semantics is the least relation closed under the rules CALL, SKIP,
RETURN, SEQ-1, SEQ-2, IF-1, IF-2, LOOP-1, LOOP-2 and LOOP-3.

Two procedures are provided:

* :func:`derivable` decides a single judgment ``s ⊢ l ∈ p`` by a direct,
  terminating reading of the rules;
* :func:`traces` enumerates every derivable ``(s, l)`` with ``|l|`` up to
  a bound — the left-hand side of Theorems 1 and 2, which the metatheory
  checks compare against the inferred regex's word set.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache

from repro.lang.ast import Call, If, Loop, Program, Return, Seq, Skip


class Status(Enum):
    """Judgment status: ``ONGOING`` is the paper's ``0``, ``RETURNED`` is ``R``."""

    ONGOING = "0"
    RETURNED = "R"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ONGOING = Status.ONGOING
RETURNED = Status.RETURNED

Trace = tuple[str, ...]
Judgment = tuple[Status, Trace]


def derivable(status: Status, trace: Trace, program: Program) -> bool:
    """Decide the judgment ``status ⊢ trace ∈ program``.

    Implements the inference rules directly.  For SEQ-2 and LOOP-3 all
    splits of the trace are tried; for LOOP-3 the first part of the split
    is required to be non-empty, which is complete because an empty
    ongoing prefix makes the rule's conclusion equal to its second
    premise (the derivation can simply be shortened).
    """
    return _derivable(status, tuple(trace), program)


@lru_cache(maxsize=None)
def _derivable(status: Status, trace: Trace, program: Program) -> bool:
    if isinstance(program, Call):
        # Rule CALL: 0 ⊢ [f] ∈ f()
        return status is ONGOING and trace == (program.name,)
    if isinstance(program, Skip):
        # Rule SKIP: 0 ⊢ [] ∈ skip
        return status is ONGOING and trace == ()
    if isinstance(program, Return):
        # Rule RETURN: R ⊢ [] ∈ return
        return status is RETURNED and trace == ()
    if isinstance(program, Seq):
        # Rule SEQ-1: an early return of p1 swallows p2.
        if status is RETURNED and _derivable(RETURNED, trace, program.first):
            return True
        # Rule SEQ-2: split the trace between an ongoing p1 and p2.
        for cut in range(len(trace) + 1):
            if _derivable(ONGOING, trace[:cut], program.first) and _derivable(
                status, trace[cut:], program.second
            ):
                return True
        return False
    if isinstance(program, If):
        # Rules IF-1 and IF-2.
        return _derivable(status, trace, program.then_branch) or _derivable(
            status, trace, program.else_branch
        )
    if isinstance(program, Loop):
        # Rule LOOP-1: zero iterations, ongoing, empty trace.
        if status is ONGOING and trace == ():
            return True
        # Rule LOOP-2: the body returns during the (first) iteration.
        if status is RETURNED and _derivable(RETURNED, trace, program.body):
            return True
        # Rule LOOP-3: one ongoing iteration then the loop continues.
        # Requiring a non-empty first part keeps the recursion well-founded
        # and loses no derivations (empty ongoing prefixes are idempotent).
        for cut in range(1, len(trace) + 1):
            if _derivable(ONGOING, trace[:cut], program.body) and _derivable(
                status, trace[cut:], program
            ):
                return True
        return False
    raise TypeError(f"not a Program: {program!r}")


def traces(program: Program, max_length: int) -> frozenset[Judgment]:
    """All judgments ``(s, l)`` with ``s ⊢ l ∈ program`` and ``|l| ≤ max_length``.

    Computed compositionally; the loop case is a fixpoint iteration that
    terminates because trace lengths are bounded.
    """
    return _traces(program, max_length)


@lru_cache(maxsize=None)
def _traces(program: Program, max_length: int) -> frozenset[Judgment]:
    if max_length < 0:
        return frozenset()
    if isinstance(program, Call):
        if max_length >= 1:
            return frozenset({(ONGOING, (program.name,))})
        return frozenset()
    if isinstance(program, Skip):
        return frozenset({(ONGOING, ())})
    if isinstance(program, Return):
        return frozenset({(RETURNED, ())})
    if isinstance(program, Seq):
        first_traces = _traces(program.first, max_length)
        second_traces = _traces(program.second, max_length)
        result: set[Judgment] = {
            (status, trace) for status, trace in first_traces if status is RETURNED
        }
        for first_status, first_trace in first_traces:
            if first_status is not ONGOING:
                continue
            budget = max_length - len(first_trace)
            for second_status, second_trace in second_traces:
                if len(second_trace) <= budget:
                    result.add((second_status, first_trace + second_trace))
        return frozenset(result)
    if isinstance(program, If):
        return _traces(program.then_branch, max_length) | _traces(
            program.else_branch, max_length
        )
    if isinstance(program, Loop):
        body_traces = _traces(program.body, max_length)
        result = {(ONGOING, ())}  # LOOP-1
        result |= {
            (status, trace) for status, trace in body_traces if status is RETURNED
        }  # LOOP-2
        ongoing_body = [
            trace for status, trace in body_traces if status is ONGOING and trace
        ]
        # LOOP-3 fixpoint: prepend non-empty ongoing iterations until stable.
        changed = True
        while changed:
            changed = False
            additions: set[Judgment] = set()
            for prefix in ongoing_body:
                budget = max_length - len(prefix)
                if budget < 0:
                    continue
                for status, trace in result:
                    if len(trace) <= budget:
                        candidate = (status, prefix + trace)
                        if candidate not in result:
                            additions.add(candidate)
            if additions:
                result |= additions
                changed = True
        return frozenset(result)
    raise TypeError(f"not a Program: {program!r}")


def language(program: Program, max_length: int) -> frozenset[Trace]:
    """``L(p)`` up to a length bound — Definition 1 of the paper,
    forgetting statuses."""
    return frozenset(trace for _status, trace in traces(program, max_length))


def ongoing_traces(program: Program, max_length: int) -> frozenset[Trace]:
    """Traces with status ``0`` up to the bound (left component of ``⟦p⟧``)."""
    return frozenset(
        trace for status, trace in traces(program, max_length) if status is ONGOING
    )


def returned_traces(program: Program, max_length: int) -> frozenset[Trace]:
    """Traces with status ``R`` up to the bound (right component of ``⟦p⟧``)."""
    return frozenset(
        trace for status, trace in traces(program, max_length) if status is RETURNED
    )
