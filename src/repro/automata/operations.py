"""Language-level operations and decision procedures on automata.

These are the verdict primitives of the checker:

* :func:`is_empty` / :func:`included` / :func:`equivalent` decide language
  questions,
* :func:`inclusion_counterexample` produces the witness trace that the
  diagnostics of :mod:`repro.core.diagnostics` print,
* :func:`lift_alphabet` implements the projection trick used by the
  subsystem-usage check: a spec over ``a.*`` events is lifted to the full
  composite alphabet by self-looping on all foreign symbols.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, NFABuilder
from repro.automata.product import difference, symmetric_difference
from repro.automata.shortest import shortest_accepted_word


def is_empty(dfa: DFA) -> bool:
    """Is the accepted language empty?"""
    return not (dfa.reachable_states() & dfa.accepting_states)


def with_alphabet(dfa: DFA, alphabet: Iterable[str]) -> DFA:
    """Reinterpret ``dfa`` over a larger alphabet.

    Symbols not previously in the alphabet have no transitions, i.e. any
    word using them is rejected — the right reading when growing a
    behavior automaton's alphabet to match a partner's before a product.
    """
    new_alphabet = frozenset(alphabet)
    if not new_alphabet >= dfa.alphabet:
        missing = dfa.alphabet - new_alphabet
        raise ValueError(f"new alphabet must be a superset; missing {sorted(missing)}")
    return DFA(
        states=dfa.states,
        alphabet=new_alphabet,
        transitions=dict(dfa.transitions),
        initial_state=dfa.initial_state,
        accepting_states=dfa.accepting_states,
    )


def lift_alphabet(dfa: DFA, alphabet: Iterable[str]) -> DFA:
    """Lift ``dfa`` to a larger alphabet by *ignoring* foreign symbols.

    Every state gets a self-loop on each new symbol, so the lifted
    automaton accepts exactly the words whose projection onto the old
    alphabet is accepted by ``dfa``.  This is the inverse-projection used
    to check a subsystem spec against a composite behavior.
    """
    new_alphabet = frozenset(alphabet)
    if not new_alphabet >= dfa.alphabet:
        missing = dfa.alphabet - new_alphabet
        raise ValueError(f"lifted alphabet must be a superset; missing {sorted(missing)}")
    transitions = dict(dfa.transitions)
    for state in dfa.states:
        for symbol in new_alphabet - dfa.alphabet:
            transitions[(state, symbol)] = state
    return DFA(
        states=dfa.states,
        alphabet=new_alphabet,
        transitions=transitions,
        initial_state=dfa.initial_state,
        accepting_states=dfa.accepting_states,
    )


def project_nfa(nfa: NFA, keep: Iterable[str]) -> NFA:
    """Project an NFA onto a sub-alphabet.

    Transitions on symbols outside ``keep`` become epsilon moves, so the
    projected automaton accepts exactly the projections of accepted
    words.  Used to restrict a composite behavior to one subsystem's
    events before an inclusion check.
    """
    kept = frozenset(keep)
    builder = NFABuilder()
    builder.alphabet.update(kept)
    builder.add_states(nfa.states)
    for state in nfa.initial_states:
        builder.mark_initial(state)
    for state in nfa.accepting_states:
        builder.mark_accepting(state)
    for source, symbol, target in nfa.iter_transitions():
        if symbol is None or symbol not in kept:
            builder.add_epsilon(source, target)
        else:
            builder.add_transition(source, symbol, target)
    return builder.build()


def _aligned(left: DFA, right: DFA) -> tuple[DFA, DFA]:
    """Grow both alphabets to their union (reject-on-foreign semantics)."""
    joint = left.alphabet | right.alphabet
    return with_alphabet(left, joint), with_alphabet(right, joint)


def included(left: DFA, right: DFA) -> bool:
    """Is ``L(left) ⊆ L(right)``?"""
    left_aligned, right_aligned = _aligned(left, right)
    return is_empty(difference(left_aligned, right_aligned))


def inclusion_counterexample(left: DFA, right: DFA) -> tuple[str, ...] | None:
    """The shortest word of ``L(left) \\ L(right)``, or ``None`` if included."""
    left_aligned, right_aligned = _aligned(left, right)
    return shortest_accepted_word(difference(left_aligned, right_aligned))


def equivalent(left: DFA, right: DFA) -> bool:
    """Do the two DFAs accept the same language?"""
    left_aligned, right_aligned = _aligned(left, right)
    return is_empty(symmetric_difference(left_aligned, right_aligned))


def equivalence_counterexample(left: DFA, right: DFA) -> tuple[str, ...] | None:
    """Shortest word accepted by exactly one operand, if any."""
    left_aligned, right_aligned = _aligned(left, right)
    return shortest_accepted_word(symmetric_difference(left_aligned, right_aligned))


def nfa_included(left: NFA, right: NFA) -> bool:
    """Language inclusion between NFAs (determinize then check)."""
    return included(determinize(left), determinize(right))


def union_nfa(automata: Iterable[NFA]) -> NFA:
    """NFA for the union of the operand languages (fresh shared start)."""
    builder = NFABuilder()
    start = ("union", "start")
    builder.mark_initial(start)
    for index, nfa in enumerate(automata):
        builder.alphabet.update(nfa.alphabet)
        rename = {state: ("union", index, state) for state in nfa.states}
        builder.add_states(rename.values())
        for state in nfa.initial_states:
            builder.add_epsilon(start, rename[state])
        for state in nfa.accepting_states:
            builder.mark_accepting(rename[state])
        for source, symbol, target in nfa.iter_transitions():
            if symbol is None:
                builder.add_epsilon(rename[source], rename[target])
            else:
                builder.add_transition(rename[source], symbol, rename[target])
    return builder.build()


def concat_nfa(first: NFA, second: NFA) -> NFA:
    """NFA for the concatenation ``L(first) . L(second)``."""
    builder = NFABuilder()
    builder.alphabet.update(first.alphabet | second.alphabet)
    rename_first = {state: ("cat", 0, state) for state in first.states}
    rename_second = {state: ("cat", 1, state) for state in second.states}
    builder.add_states(rename_first.values())
    builder.add_states(rename_second.values())
    for state in first.initial_states:
        builder.mark_initial(rename_first[state])
    for state in second.accepting_states:
        builder.mark_accepting(rename_second[state])
    for nfa, rename in ((first, rename_first), (second, rename_second)):
        for source, symbol, target in nfa.iter_transitions():
            if symbol is None:
                builder.add_epsilon(rename[source], rename[target])
            else:
                builder.add_transition(rename[source], symbol, rename[target])
    for state in first.accepting_states:
        for target in second.initial_states:
            builder.add_epsilon(rename_first[state], rename_second[target])
    return builder.build()
