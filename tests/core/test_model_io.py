"""JSON interchange of extracted models."""

import json

import pytest

from repro.automata.determinize import determinize
from repro.automata.operations import equivalent
from repro.core.behavior import behavior_nfa
from repro.core.dependency import extract_dependency_graph
from repro.core.model_io import (
    ModelFormatError,
    dump_dependency_graph,
    dump_dfa,
    dump_spec,
    load_dependency_graph,
    load_dfa,
    load_spec,
)
from repro.core.spec import ClassSpec


class TestSpecRoundTrip:
    def test_valve_round_trip(self, valve):
        spec = ClassSpec.of(valve)
        loaded = load_spec(dump_spec(spec))
        assert loaded.name == spec.name
        assert loaded.operation_names() == spec.operation_names()
        for operation in spec.operations:
            reloaded = loaded.operation(operation.name)
            assert reloaded is not None
            assert reloaded.kind == operation.kind
            assert [p.next_methods for p in reloaded.returns] == [
                p.next_methods for p in operation.returns
            ]

    def test_round_trip_preserves_language(self, valve, bad_sector):
        for parsed in (valve, bad_sector):
            spec = ClassSpec.of(parsed)
            loaded = load_spec(dump_spec(spec))
            assert equivalent(spec.dfa(), loaded.dfa())

    def test_user_value_flag_preserved(self, good_sector):
        spec = ClassSpec.of(good_sector)
        loaded = load_spec(dump_spec(spec))
        originals = [p.has_user_value for op in spec.operations for p in op.returns]
        reloaded = [p.has_user_value for op in loaded.operations for p in op.returns]
        assert originals == reloaded

    def test_output_is_stable(self, valve):
        spec = ClassSpec.of(valve)
        assert dump_spec(spec) == dump_spec(spec)


class TestDependencyGraphRoundTrip:
    def test_sector_round_trip(self, sector):
        graph = extract_dependency_graph(sector)
        loaded = load_dependency_graph(dump_dependency_graph(graph))
        assert loaded.class_name == graph.class_name
        assert loaded.entries == graph.entries
        assert {(e.method, e.exit_id, e.next_methods) for e in loaded.exits} == {
            (e.method, e.exit_id, e.next_methods) for e in graph.exits
        }
        assert loaded.arc_count == graph.arc_count


class TestDfaRoundTrip:
    def test_behavior_dfa_round_trip(self, bad_sector):
        dfa = determinize(behavior_nfa(bad_sector))
        loaded = load_dfa(dump_dfa(dfa))
        assert equivalent(dfa, loaded)

    def test_renumbering_makes_output_json_stable(self, bad_sector):
        dfa = determinize(behavior_nfa(bad_sector))
        assert dump_dfa(dfa) == dump_dfa(dfa.renumbered())


class TestErrors:
    def test_wrong_kind_rejected(self, valve):
        payload = json.loads(dump_spec(ClassSpec.of(valve)))
        payload["kind"] = "dfa"
        with pytest.raises(ModelFormatError):
            load_spec(json.dumps(payload))

    def test_wrong_version_rejected(self, valve):
        payload = json.loads(dump_spec(ClassSpec.of(valve)))
        payload["version"] = 99
        with pytest.raises(ModelFormatError):
            load_spec(json.dumps(payload))

    def test_missing_field_rejected(self, valve):
        payload = json.loads(dump_spec(ClassSpec.of(valve)))
        del payload["operations"]
        with pytest.raises(ModelFormatError):
            load_spec(json.dumps(payload))

    def test_bad_kind_value_rejected(self, valve):
        payload = json.loads(dump_spec(ClassSpec.of(valve)))
        payload["operations"][0]["kind"] = "op_sideways"
        with pytest.raises(ModelFormatError):
            load_spec(json.dumps(payload))

    def test_non_object_rejected(self):
        with pytest.raises(ModelFormatError):
            load_dfa("[1, 2, 3]")
