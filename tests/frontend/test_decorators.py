"""The runnable annotation API (Table 1)."""

import pytest

from repro.frontend.decorators import (
    claim,
    declared_claims,
    declared_subsystems,
    is_system,
    op,
    op_final,
    op_initial,
    op_initial_final,
    operation_kind,
    sys,
)


class TestSysDecorator:
    def test_bare_sys_marks_base_class(self):
        @sys
        class Device:
            pass

        assert is_system(Device)
        assert declared_subsystems(Device) == ()

    def test_sys_with_list_marks_composite(self):
        @sys(["a", "b"])
        class Composite:
            pass

        assert is_system(Composite)
        assert declared_subsystems(Composite) == ("a", "b")

    def test_sys_with_empty_list(self):
        @sys([])
        class Base:
            pass

        assert is_system(Base)
        assert declared_subsystems(Base) == ()

    def test_sys_rejects_non_string_names(self):
        with pytest.raises(TypeError):
            sys([1, 2])

    def test_sys_rejects_other_arguments(self):
        with pytest.raises(TypeError):
            sys("a")

    def test_undecorated_class_is_not_system(self):
        class Plain:
            pass

        assert not is_system(Plain)


class TestClaimDecorator:
    def test_single_claim(self):
        @claim("(!a.open) W b.open")
        @sys(["a", "b"])
        class Composite:
            pass

        assert declared_claims(Composite) == ("(!a.open) W b.open",)

    def test_multiple_claims_in_source_order(self):
        @claim("first")
        @claim("second")
        @sys
        class Device:
            pass

        assert declared_claims(Device) == ("first", "second")

    def test_claim_requires_string(self):
        with pytest.raises(TypeError):
            claim(42)

    def test_claim_rejects_blank(self):
        with pytest.raises(TypeError):
            claim("   ")


class TestOpDecorators:
    def test_kinds(self):
        class Device:
            @op
            def middle(self):
                return []

            @op_initial
            def first(self):
                return []

            @op_final
            def last(self):
                return []

            @op_initial_final
            def both(self):
                return []

            def plain(self):
                return []

        assert operation_kind(Device.middle) == "middle"
        assert operation_kind(Device.first) == "initial"
        assert operation_kind(Device.last) == "final"
        assert operation_kind(Device.both) == "initial_final"
        assert operation_kind(Device.plain) is None

    def test_decorated_method_still_callable(self):
        class Device:
            @op_initial
            def start(self):
                return ["start"]

        assert Device().start() == ["start"]
