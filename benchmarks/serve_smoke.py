"""CI smoke gate for the ``repro serve`` daemon.

Boots a real daemon subprocess and drives the PR's robustness story end
to end, under the clock:

* **baseline** — a concurrent multi-tenant burst that fits the queue;
  every job must complete and the per-tenant completion counts must be
  fair (identical);
* **overload** — a burst sized past the queue bound under an injected
  ``serve-dispatch`` delay; every excess submission must be shed
  *explicitly* (429/503 with a structured reason and a Retry-After
  header), never silently dropped, and the health endpoints must stay
  live throughout;
* **crash-recovery** — an injected SIGKILL mid-dispatch; the restarted
  daemon must recover the journaled job and finish it;
* **drain** — ``/readyz`` must flip to 503 the moment a drain starts,
  and SIGTERM must exit 0 with the drain summary on stderr.

Measurements land in ``--out`` (``BENCH_serve.json``) and the final
Prometheus exposition in ``--metrics-out`` for CI to archive.  Exits
non-zero on any violated invariant.

Usage::

    python benchmarks/serve_smoke.py --out BENCH_serve.json \
        --metrics-out BENCH_serve_metrics.prom
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any(Path(p).resolve() == REPO_ROOT / "src" for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

SRC_DIR = str(REPO_ROOT / "src")
EXAMPLE = REPO_ROOT / "examples" / "greenhouse_monitor.py"
SIGKILLED = -signal.SIGKILL

TENANTS = ("alice", "bob", "carol")


class Daemon:
    """One ``repro serve`` subprocess plus a stdlib JSON client."""

    def __init__(self, cache_dir: Path, *extra_args: str):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--cache-dir", str(cache_dir),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR},
        )
        self.ready_line = self.proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", self.ready_line)
        if match is None:
            self.proc.wait(timeout=10)
            raise SystemExit(
                f"daemon did not come up: {self.ready_line!r}\n"
                f"{self.proc.stderr.read()}"
            )
        self.base = f"http://{match.group(1)}:{match.group(2)}"

    def request(self, method: str, path: str, payload=None):
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        req = urllib.request.Request(self.base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=60) as response:
                status, body = response.status, response.read()
                headers = dict(response.headers)
        except urllib.error.HTTPError as error:
            status, body = error.code, error.read()
            headers = dict(error.headers)
        text = body.decode("utf-8")
        try:
            return status, json.loads(text), headers
        except ValueError:
            return status, text, headers

    def submit(self, files, tenant="default"):
        return self.request(
            "POST", "/v1/jobs", {"tenant": tenant, "files": files}
        )

    def wait_job(self, job_id: str, timeout: float = 180.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, job, _headers = self.request("GET", f"/v1/jobs/{job_id}")
            check(status == 200, f"job poll returned {status}")
            if job["state"] in ("done", "failed"):
                return job
            time.sleep(0.05)
        raise SystemExit(f"job {job_id} not terminal after {timeout}s")

    def terminate(self, timeout: float = 120.0):
        self.proc.send_signal(signal.SIGTERM)
        _out, err = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, err

    def close(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate(timeout=30)


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"serve smoke FAILED: {message}")


def _files(tag: str, source: str):
    return {"monitor.py": source + f"\n# {tag}\n"}


def phase_baseline(root: Path, source: str) -> dict:
    """Fair multi-tenant completion of a burst that fits the queue."""
    daemon = Daemon(root / "baseline", "--workers", "2", "--queue-depth", "16")
    try:
        status, health, _ = daemon.request("GET", "/healthz")
        check(status == 200 and health["ok"], "healthz not green at boot")
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=6) as pool:
            jobs = list(
                pool.map(
                    lambda item: daemon.submit(
                        _files(f"{item[0]}-{item[1]}", source), tenant=item[0]
                    ),
                    [(t, i) for t in TENANTS for i in range(2)],
                )
            )
        check(
            all(status == 202 for status, _j, _h in jobs),
            "baseline burst should fit the queue",
        )
        done = [daemon.wait_job(job["id"]) for _s, job, _h in jobs]
        elapsed = time.perf_counter() - started
        check(all(j["state"] == "done" for j in done), "baseline job failed")
        _s, metrics_text, _h = daemon.request("GET", "/metrics")
        counts = dict(
            re.findall(
                r'repro_serve_tenant_completed_total\{tenant="(\w+)"\} (\d+)',
                metrics_text,
            )
        )
        check(
            counts == {tenant: "2" for tenant in TENANTS},
            f"per-tenant completions uneven: {counts}",
        )
        rc, _err = daemon.terminate()
        check(rc == 0, f"baseline daemon exited {rc}")
        return {"jobs": len(done), "seconds": round(elapsed, 3)}
    finally:
        daemon.close()


def phase_overload(root: Path, source: str) -> dict:
    """Shed explicitly under an injected dispatch delay; stay healthy."""
    daemon = Daemon(
        root / "overload",
        "--workers", "1", "--queue-depth", "2",
        "--faults", "serve-dispatch:delay:*:arg=1",
    )
    try:
        with ThreadPoolExecutor(max_workers=9) as pool:
            results = list(
                pool.map(
                    lambda item: daemon.submit(
                        _files(f"ov-{item[0]}-{item[1]}", source),
                        tenant=item[0],
                    ),
                    [(t, i) for t in TENANTS for i in range(3)],
                )
            )
        statuses = [status for status, _b, _h in results]
        accepted = statuses.count(202)
        shed = [
            (status, body, headers)
            for status, body, headers in results
            if status in (429, 503)
        ]
        check(accepted >= 1, "overload burst admitted nothing")
        check(shed, "overload burst shed nothing — queue bound not enforced")
        check(
            accepted + len(shed) == len(results),
            f"silent drop: {statuses}",
        )
        for status, body, headers in shed:
            check(
                body.get("reason") in ("queue-full", "tenant-limit", "breaker-open"),
                f"shed without a structured reason: {body}",
            )
            check(
                int(headers.get("Retry-After", 0)) >= 1,
                "shed without a Retry-After header",
            )
        # Health stays live while saturated.
        status, _health, _ = daemon.request("GET", "/healthz")
        check(status == 200, "healthz went dark under load")
        for _status, job, _h in results:
            if _status == 202:
                daemon.wait_job(job["id"])
        rc, _err = daemon.terminate()
        check(rc == 0, f"overload daemon exited {rc}")
        return {
            "submitted": len(results),
            "accepted": accepted,
            "shed": len(shed),
        }
    finally:
        daemon.close()


def phase_crash_recovery(root: Path, source: str) -> dict:
    """SIGKILL mid-dispatch, then recover the journaled job."""
    cache = root / "crash"
    daemon = Daemon(cache, "--faults", "serve-dispatch:sigkill:*:times=1")
    job = None
    try:
        status, job, _h = daemon.submit(_files("crash", source))
        check(status == 202, f"crash-phase submit got {status}")
        check(
            daemon.proc.wait(timeout=120) == SIGKILLED,
            "injected sigkill did not fire",
        )
    finally:
        daemon.close()
    started = time.perf_counter()
    restarted = Daemon(cache)
    try:
        check(
            "1 job(s) recovered" in restarted.ready_line,
            f"journal not recovered: {restarted.ready_line!r}",
        )
        done = restarted.wait_job(job["id"])
        recovery_seconds = time.perf_counter() - started
        check(done["state"] == "done", f"recovered job failed: {done}")
        check(done["recovered"] == 1, "recovery counter missing")
        rc, _err = restarted.terminate()
        check(rc == 0, f"recovered daemon exited {rc}")
        return {"recovery_seconds": round(recovery_seconds, 3)}
    finally:
        restarted.close()


def phase_drain(root: Path, source: str, metrics_out: Path | None) -> dict:
    """Readiness flips on drain; SIGTERM finishes in-flight work."""
    daemon = Daemon(root / "drain", "--workers", "1")
    try:
        status, ready, _ = daemon.request("GET", "/readyz")
        check(status == 200 and ready["ready"], "readyz not green at boot")
        _s, job, _h = daemon.submit(_files("drain", source))
        status, _b, _h = daemon.request("POST", "/v1/drain")
        check(status == 202, "drain request rejected")
        status, ready, _ = daemon.request("GET", "/readyz")
        check(
            status == 503 and "draining" in ready["blockers"],
            f"readyz did not flip on drain: {status} {ready}",
        )
        if metrics_out is not None:
            _s, text, _h = daemon.request("GET", "/metrics")
            check("repro_serve_draining 1" in text, "draining gauge not set")
            metrics_out.write_text(text, encoding="utf-8")
        rc, err = daemon.terminate()
        check(rc == 0, f"drain exit code {rc}")
        check("drained" in err, f"no drain summary on stderr: {err!r}")
        # The in-flight job finished before exit: its journal record is
        # terminal, so a fresh daemon serves the verdict immediately.
        verifier = Daemon(root / "drain")
        try:
            status, record, _h = verifier.request("GET", f"/v1/jobs/{job['id']}")
            check(
                status == 200 and record["state"] == "done",
                "drained job did not survive the restart",
            )
        finally:
            verifier.close()
        return {"inflight_finished": True}
    finally:
        daemon.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="archive the drain-phase Prometheus exposition here",
    )
    args = parser.parse_args(argv)

    source = EXAMPLE.read_text(encoding="utf-8")
    started = time.perf_counter()
    results = {}
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        root = Path(tmp)
        results["baseline"] = phase_baseline(root, source)
        print(f"baseline: {results['baseline']}", flush=True)
        results["overload"] = phase_overload(root, source)
        print(f"overload: {results['overload']}", flush=True)
        results["crash_recovery"] = phase_crash_recovery(root, source)
        print(f"crash-recovery: {results['crash_recovery']}", flush=True)
        results["drain"] = phase_drain(
            root, source,
            Path(args.metrics_out) if args.metrics_out else None,
        )
        print(f"drain: {results['drain']}", flush=True)
    results["total_seconds"] = round(time.perf_counter() - started, 3)
    Path(args.out).write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"serve smoke OK in {results['total_seconds']}s → {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
