"""Regex membership testing via Brzozowski derivatives.

``matches(r, l)`` decides ``l ∈ r`` — the right-hand side of the paper's
Theorems 1 and 2 — without constructing an automaton.
"""

from __future__ import annotations

from typing import Iterable

from repro.regex.ast import Empty, Regex
from repro.regex.derivatives import derivative, nullable


def matches(regex: Regex, word: Iterable[str]) -> bool:
    """Decide whether ``word`` (a sequence of event labels) is in ``regex``."""
    current = regex
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, Empty):
            return False
    return nullable(current)


def is_empty_language(regex: Regex, alphabet: Iterable[str] | None = None) -> bool:
    """Decide whether ``regex`` denotes the empty language.

    With canonical constructors ``∅`` only denotes the empty language when
    no word is accepted; we decide this structurally: a regex is non-empty
    iff it is nullable or some reachable derivative is nullable.  For the
    canonical terms produced by :mod:`repro.regex.ast` a simple structural
    recursion suffices and is what we use.
    """
    return not _nonempty(regex)


def _nonempty(regex: Regex) -> bool:
    """Structural non-emptiness: does ``regex`` accept at least one word?"""
    from repro.regex.ast import Concat, Epsilon, Star, Symbol, Union

    if isinstance(regex, Empty):
        return False
    if isinstance(regex, (Epsilon, Symbol, Star)):
        # Star always accepts the empty word even if its body is empty.
        return True
    if isinstance(regex, Concat):
        return _nonempty(regex.left) and _nonempty(regex.right)
    if isinstance(regex, Union):
        return _nonempty(regex.left) or _nonempty(regex.right)
    raise TypeError(f"not a Regex: {regex!r}")
