"""The evidence-gated RPNI learner."""

from itertools import islice

from repro.automata.shortest import iter_accepted_words
from repro.core.spec import ClassSpec
from repro.frontend.parse import parse_module
from repro.mine.api import load_implementations
from repro.mine.collect import CollectConfig, collect_corpus
from repro.mine.learn import mine_corpus
from repro.mine.pta import PrefixTreeAcceptor
from repro.workloads.hierarchy import HierarchyShape, module_source


def workload_corpus(shape, class_name, seed=0):
    source = module_source(shape, correct=True)
    module, violations = parse_module(source)
    assert not [v for v in violations if v.severity == "error"]
    implementations = load_implementations(source)
    spec = ClassSpec.of(module.get_class(class_name))
    corpus = collect_corpus(
        implementations[class_name], spec, config=CollectConfig(seed=seed)
    )
    return corpus, spec


class TestLearner:
    def test_recovers_spec_exactly_on_covering_corpus(self):
        shape = HierarchyShape(
            base_operations=4, subsystems=2, composite_operations=2, seed=11
        )
        corpus, spec = workload_corpus(shape, "Device")
        model = mine_corpus(corpus)
        spec_dfa = spec.dfa()
        # Same language: every mined word is spec-accepted and every
        # spec word is mined-accepted, up to a bounding length.
        for word in islice(iter_accepted_words(model.dfa, 7), 300):
            assert spec_dfa.accepts(word), word
        for word in islice(iter_accepted_words(spec_dfa, 7), 300):
            assert model.accepts(word), word

    def test_accepts_every_positive_corpus_word(self):
        """Quotients preserve accepting paths: no observed completed
        lifecycle may be rejected, whatever the merges did."""
        shape = HierarchyShape(
            base_operations=3, subsystems=1, composite_operations=3, seed=2
        )
        for class_name in ("Device", "Controller"):
            corpus, _spec = workload_corpus(shape, class_name)
            model = mine_corpus(corpus)
            for word in corpus.positive_words():
                assert model.accepts(word), (class_name, word)

    def test_mined_is_deterministic(self):
        shape = HierarchyShape(
            base_operations=4, subsystems=1, composite_operations=2, seed=5
        )
        corpus, _spec = workload_corpus(shape, "Device", seed=9)
        first = mine_corpus(corpus)
        second = mine_corpus(corpus)
        assert first.dfa == second.dfa
        assert first.stats.to_dict() == second.stats.to_dict()

    def test_stats_account_for_compression(self):
        shape = HierarchyShape(
            base_operations=4, subsystems=1, composite_operations=1, seed=7
        )
        corpus, _spec = workload_corpus(shape, "Device")
        model = mine_corpus(corpus)
        stats = model.stats
        assert stats.pta_states == len(PrefixTreeAcceptor.from_corpus(corpus))
        assert stats.mined_states == len(model.dfa.states)
        assert stats.mined_states <= stats.pta_states
        assert stats.merges_tested >= stats.merges_accepted
        # Mined states = promoted reds (+ root).
        assert stats.mined_states == stats.promotions + 1

    def test_failed_merge_rolls_back_cleanly(self):
        """A rejected fold must leave no trace: learning twice from the
        same PTA object would otherwise diverge."""
        shape = HierarchyShape(
            base_operations=5, subsystems=1, composite_operations=1, seed=13
        )
        corpus, _spec = workload_corpus(shape, "Device", seed=3)
        pta = PrefixTreeAcceptor.from_corpus(corpus)
        snapshot = [
            (dict(node.children), node.allowed, node.final)
            for node in pta.nodes
        ]
        model = mine_corpus(corpus)
        assert model.stats.merges_tested > model.stats.merges_accepted
        # The PTA itself is untouched (the learner works on a copy).
        assert snapshot == [
            (dict(node.children), node.allowed, node.final)
            for node in pta.nodes
        ]
