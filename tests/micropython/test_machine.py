"""The simulated machine module: pins, ADC, PWM, signal, board log."""

from repro.micropython.machine import (
    ADC,
    IN,
    IRQ_FALLING,
    IRQ_RISING,
    OUT,
    PWM,
    Board,
    Pin,
    Signal,
    default_board,
)


class TestPin:
    def test_on_off_value(self):
        pin = Pin(2, OUT)
        pin.on()
        assert pin.value() == 1
        pin.off()
        assert pin.value() == 0

    def test_value_setter(self):
        pin = Pin(3, OUT)
        pin.value(1)
        assert pin.value() == 1
        pin.value(0)
        assert pin.value() == 0

    def test_toggle(self):
        pin = Pin(4, OUT)
        pin.toggle()
        assert pin.value() == 1
        pin.toggle()
        assert pin.value() == 0

    def test_default_level_low(self):
        assert Pin(5, IN).value() == 0

    def test_init_value(self):
        assert Pin(6, OUT, value=1).value() == 1

    def test_pins_share_board_state(self):
        writer = Pin(7, OUT)
        reader = Pin(7, IN)
        writer.on()
        assert reader.value() == 1

    def test_event_log_records_mutations(self):
        pin = Pin(8, OUT)
        pin.on()
        pin.off()
        actions = [e.action for e in default_board().events if e.pin == 8]
        assert actions == ["on", "off"]

    def test_input_source_sampled(self):
        board = default_board()
        board.input_sources[9] = lambda: 1
        assert Pin(9, IN).value() == 1

    def test_drive_input(self):
        board = default_board()
        board.drive_input(10, 1)
        assert Pin(10, IN).value() == 1

    def test_repr(self):
        assert repr(Pin(2, OUT)) == "Pin(2, OUT)"


class TestIrq:
    def test_rising_edge_fires(self):
        pin = Pin(11, OUT)
        fired = []
        pin.irq(lambda p: fired.append(p.id), trigger=IRQ_RISING)
        pin.on()
        assert fired == [11]

    def test_falling_edge_only(self):
        pin = Pin(12, OUT)
        fired = []
        pin.irq(lambda p: fired.append("fall"), trigger=IRQ_FALLING)
        pin.on()   # rising: no fire
        pin.off()  # falling: fire
        assert fired == ["fall"]

    def test_no_fire_without_level_change(self):
        pin = Pin(13, OUT)
        fired = []
        pin.irq(lambda p: fired.append(1))
        pin.off()  # already low
        assert fired == []


class TestAdc:
    def test_reads_source(self):
        adc = ADC(Pin(26, IN))
        adc.set_source(lambda: 12345)
        assert adc.read_u16() == 12345

    def test_clamped_to_16_bits(self):
        adc = ADC(27)
        adc.set_source(lambda: 1_000_000)
        assert adc.read_u16() == 0xFFFF
        adc.set_source(lambda: -5)
        assert adc.read_u16() == 0

    def test_reads_logged(self):
        adc = ADC(28)
        adc.read_u16()
        assert any(e.action == "adc" for e in default_board().events)


class TestPwm:
    def test_freq_and_duty(self):
        pwm = PWM(Pin(15, OUT))
        pwm.freq(1000)
        pwm.duty_u16(32768)
        assert pwm.freq() == 1000
        assert pwm.duty_u16() == 32768

    def test_duty_clamped(self):
        pwm = PWM(Pin(16, OUT))
        pwm.duty_u16(100_000)
        assert pwm.duty_u16() == 0xFFFF

    def test_deinit_zeroes_duty(self):
        pwm = PWM(Pin(17, OUT))
        pwm.duty_u16(100)
        pwm.deinit()
        assert pwm.duty_u16() == 0


class TestSignal:
    def test_non_inverted_passthrough(self):
        signal = Signal(Pin(20, OUT))
        signal.on()
        assert signal.value() == 1

    def test_inverted(self):
        pin = Pin(21, OUT)
        signal = Signal(pin, invert=True)
        signal.on()
        assert pin.value() == 0
        assert signal.value() == 1
        signal.off()
        assert pin.value() == 1
        assert signal.value() == 0

    def test_inverted_value_setter(self):
        pin = Pin(22, OUT)
        signal = Signal(pin, invert=True)
        signal.value(1)
        assert pin.value() == 0


class TestBoardIsolation:
    def test_custom_board_isolated(self):
        private = Board()
        pin = Pin(2, OUT, board=private)
        pin.on()
        assert default_board().levels.get(2, 0) == 0
        assert private.levels[2] == 1

    def test_reset_clears_everything(self):
        pin = Pin(2, OUT)
        pin.on()
        default_board().reset()
        assert default_board().events == []
        assert default_board().levels == {}

    def test_log_formatting(self):
        pin = Pin(2, OUT)
        pin.on()
        log = default_board().log()
        assert log == ["#0 pin2 on=1"]
