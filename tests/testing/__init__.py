"""Tests for :mod:`repro.testing` (conformance harness, path suites)."""
