"""NuSMV backend: emit extracted automata as NuSMV models.

The paper's Shelley delegates model checking to NuSMV via an NFA →
NuSMV translation; this package reproduces the emission side (the
checking itself runs natively in :mod:`repro.automata` /
:mod:`repro.ltlf` — see DESIGN.md, "Substitutions").
"""

from repro.nusmv.emit import (
    DEAD_STATE,
    DONE_STATE,
    END_EVENT,
    emit_dfa,
    emit_model,
    formula_to_nusmv,
)
from repro.nusmv.interp import (
    NuSmvModel,
    NuSmvParseError,
    accepts_via_nusmv,
    interpret,
)
from repro.nusmv.syntax import (
    case_expression,
    conjunction,
    disjunction,
    enum_declaration,
    mangle,
    unique_names,
)

__all__ = [
    "DEAD_STATE",
    "DONE_STATE",
    "END_EVENT",
    "NuSmvModel",
    "NuSmvParseError",
    "accepts_via_nusmv",
    "case_expression",
    "conjunction",
    "disjunction",
    "emit_dfa",
    "emit_model",
    "enum_declaration",
    "formula_to_nusmv",
    "interpret",
    "mangle",
    "unique_names",
]
