"""Smart-constructor laws and formatting of the regex algebra."""

import pytest

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Concat,
    Star,
    Symbol,
    alphabet,
    concat,
    concat_all,
    format_regex,
    size,
    star,
    symbol,
    union,
    union_all,
)

A = symbol("a")
B = symbol("b")
C = symbol("c")


class TestConcat:
    def test_empty_annihilates_left(self):
        assert concat(EMPTY, A) is EMPTY

    def test_empty_annihilates_right(self):
        assert concat(A, EMPTY) is EMPTY

    def test_epsilon_unit_left(self):
        assert concat(EPSILON, A) == A

    def test_epsilon_unit_right(self):
        assert concat(A, EPSILON) == A

    def test_right_nesting(self):
        built = concat(concat(A, B), C)
        assert isinstance(built, Concat)
        assert built.left == A
        assert isinstance(built.right, Concat)

    def test_associativity_canonical(self):
        assert concat(concat(A, B), C) == concat(A, concat(B, C))

    def test_concat_all_empty_sequence_is_epsilon(self):
        assert concat_all([]) == EPSILON

    def test_concat_all_order_preserved(self):
        built = concat_all([A, B, C])
        assert format_regex(built) == "a . b . c"


class TestUnion:
    def test_empty_unit(self):
        assert union(EMPTY, A) == A
        assert union(A, EMPTY) == A

    def test_idempotence(self):
        assert union(A, A) == A

    def test_commutativity_canonical(self):
        assert union(A, B) == union(B, A)

    def test_associativity_canonical(self):
        assert union(union(A, B), C) == union(A, union(B, C))

    def test_duplicates_across_nesting_removed(self):
        built = union(union(A, B), union(B, A))
        assert built == union(A, B)

    def test_union_all_empty_sequence_is_empty(self):
        assert union_all([]) is EMPTY

    def test_union_of_all_empties(self):
        assert union(EMPTY, EMPTY) is EMPTY


class TestStar:
    def test_star_of_empty_is_epsilon(self):
        assert star(EMPTY) == EPSILON

    def test_star_of_epsilon_is_epsilon(self):
        assert star(EPSILON) == EPSILON

    def test_star_idempotent(self):
        assert star(star(A)) == star(A)

    def test_star_builds_node(self):
        assert isinstance(star(A), Star)


class TestOperators:
    def test_mul_is_concat(self):
        assert A * B == concat(A, B)

    def test_add_is_union(self):
        assert A + B == union(A, B)

    def test_star_method(self):
        assert A.star() == star(A)


class TestSymbols:
    def test_symbol_requires_nonempty(self):
        with pytest.raises(ValueError):
            symbol("")

    def test_dotted_event_labels(self):
        assert Symbol("a.open").name == "a.open"

    def test_alphabet_collects_all(self):
        built = (A + B) * star(C)
        assert alphabet(built) == {"a", "b", "c"}

    def test_alphabet_of_constants_is_empty(self):
        assert alphabet(EMPTY) == frozenset()
        assert alphabet(EPSILON) == frozenset()


class TestSizeAndFormat:
    def test_size_counts_nodes(self):
        assert size(A) == 1
        assert size(A * B) == 3
        assert size(star(A + B)) == 4

    def test_format_paper_example(self):
        # The (simplified) Example 3 shape.
        built = star(A * C) * A * B
        assert format_regex(built) == "(a . c)* . a . b"

    def test_format_precedence_union_in_concat(self):
        assert format_regex(A * (B + C)) == "a . (b + c)"

    def test_format_star_of_symbol_needs_no_parens(self):
        assert format_regex(star(A)) == "a*"

    def test_format_constants(self):
        assert format_regex(EMPTY) == "{}"
        assert format_regex(EPSILON) == "eps"

    def test_union_formats_without_parens_at_top(self):
        assert format_regex(A + B * C) == "a + b . c"
