"""Shared helpers for the daemon tests: a real ``repro serve``
subprocess plus a tiny JSON-over-HTTP client (stdlib only)."""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
EXAMPLE = (
    Path(__file__).resolve().parents[2] / "examples" / "greenhouse_monitor.py"
)

SIGKILLED = -signal.SIGKILL if hasattr(signal, "SIGKILL") else 117


@pytest.fixture(scope="session")
def example_source():
    return EXAMPLE.read_text(encoding="utf-8")


class Daemon:
    """One live ``repro serve`` subprocess on an OS-assigned port."""

    def __init__(self, cache_dir, *extra_args, env_faults=None):
        env = {"PATH": "/usr/bin:/bin", "PYTHONPATH": SRC_DIR}
        if env_faults is not None:
            env["REPRO_FAULTS"] = env_faults
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--cache-dir", str(cache_dir),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.ready_line = self.proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", self.ready_line)
        if match is None:
            self.proc.wait(timeout=10)
            raise AssertionError(
                f"daemon did not come up: {self.ready_line!r}\n"
                f"{self.proc.stderr.read()}"
            )
        self.base = f"http://{match.group(1)}:{match.group(2)}"

    # -- client --------------------------------------------------------

    def request(self, method, path, payload=None):
        """(status, parsed JSON | text).  4xx/5xx do not raise."""
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        req = urllib.request.Request(self.base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=60) as response:
                status, body = response.status, response.read()
                headers = dict(response.headers)
        except urllib.error.HTTPError as error:
            status, body = error.code, error.read()
            headers = dict(error.headers)
        text = body.decode("utf-8")
        try:
            return status, json.loads(text), headers
        except ValueError:
            return status, text, headers

    def get(self, path):
        status, body, _headers = self.request("GET", path)
        return status, body

    def post(self, path, payload=None):
        status, body, _headers = self.request("POST", path, payload)
        return status, body

    def submit(self, files, tenant="default"):
        return self.request("POST", "/v1/jobs", {"tenant": tenant, "files": files})

    def wait_job(self, job_id, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, job = self.get(f"/v1/jobs/{job_id}")
            assert status == 200, job
            if job["state"] in ("done", "failed"):
                return job
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} not terminal after {timeout}s")

    # -- lifecycle -----------------------------------------------------

    def sigkill(self):
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=30)
        return self.proc.returncode

    def terminate(self, timeout=60):
        """SIGTERM and wait for the graceful drain; returns (rc, stderr)."""
        self.proc.send_signal(signal.SIGTERM)
        _out, err = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, err

    def close(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate(timeout=30)


@pytest.fixture
def daemon_factory(tmp_path):
    """Start daemons against per-test cache dirs; always reaped."""
    started = []

    def start(*extra_args, cache_dir=None, env_faults=None):
        daemon = Daemon(
            cache_dir if cache_dir is not None else tmp_path / "cache",
            *extra_args,
            env_faults=env_faults,
        )
        started.append(daemon)
        return daemon

    yield start
    for daemon in started:
        daemon.close()
