"""The behavior automaton of a class: spec structure + inferred bodies.

For a composite class the automaton describes every trace a complete
lifecycle can produce, over the joint alphabet of

* the class's **own operation events** (bare names: ``open_a``), and
* the **subsystem-call events** of the operation bodies (dotted names:
  ``a.test``) — inferred per exit point by ``⟦·⟧`` (Figure 4).

Construction: take the specification automaton of :class:`ClassSpec`
and expand each ``source --m--> exit_i(m)`` arc into

    ``source --m--> entered(m) --[body behavior for exit i]--> exit_i(m)``

where the body behavior is the Thompson automaton of the exit's inferred
regex.  Which exit a call takes is the callee's internal choice, so the
branching stays nondeterministic exactly as in the spec automaton.

For a base class the bodies perform no constrained calls, every exit
regex is ``ε`` and the construction degenerates to the specification
automaton itself — one uniform code path for both cases.
"""

from __future__ import annotations

from typing import Mapping

from repro.automata.nfa import NFA, NFABuilder
from repro.automata.thompson import thompson
from repro.core.limits import charge_states, check_deadline
from repro.core.spec import START_STATE, ClassSpec, exit_state
from repro.frontend.model_ast import OperationDef, ParsedClass
from repro.lang.inference import exit_behaviors
from repro.regex.ast import EPSILON, Regex


def operation_exit_regexes(operation: OperationDef) -> dict[int, Regex]:
    """Inferred behavior (over subsystem-call events) per exit point."""
    inferred = exit_behaviors(operation.body)
    # Operations with no returns (already diagnosed) get no entries.
    return {
        point.exit_id: inferred.get(point.exit_id, EPSILON)
        for point in operation.returns
    }


def class_exit_regexes(parsed: ParsedClass) -> dict[str, dict[int, Regex]]:
    """Every operation's inferred per-exit behavior, keyed by name.

    This is the pure, hashable-input form the batch engine caches: the
    value depends only on each operation's body term and declared exits.
    """
    return {
        operation.name: operation_exit_regexes(operation)
        for operation in parsed.operations
    }


def behavior_nfa(
    parsed: ParsedClass,
    exit_regexes: Mapping[str, Mapping[int, Regex]] | None = None,
    *,
    max_states: int | None = None,
    deadline: float | None = None,
    tracer=None,
) -> NFA:
    """Build the behavior automaton of ``parsed``.

    ``exit_regexes`` optionally supplies precomputed (e.g. cached)
    inferred behaviors per operation name; operations not covered fall
    back to on-the-fly inference.  The construction itself is a pure
    function of the parsed class and those regexes.

    ``max_states`` / ``deadline`` bound the splicing: after each
    operation's fragments are added the builder's state count is charged
    against the budget (:class:`repro.core.limits.BudgetExceeded` on a
    trip).  ``None`` leaves the construction unbounded, as before — the
    automaton is linear in the spec anyway; the budget exists so the
    engine can enforce one cap uniformly across the whole check.

    ``tracer`` (optional, same plumbing point as the budget) annotates
    the enclosing span with the built automaton's size; it never alters
    the construction.
    """
    spec = ClassSpec.of(parsed)
    builder = NFABuilder()
    builder.mark_initial(START_STATE)
    builder.mark_accepting(START_STATE)

    entered = {op.name: ("entered", op.name) for op in parsed.operations}

    # Splice each operation's per-exit body fragments once.
    cap = None if max_states is None or max_states <= 0 else max_states
    for operation in parsed.operations:
        check_deadline(deadline, "behavior construction")
        builder.add_state(entered[operation.name])
        supplied = None if exit_regexes is None else exit_regexes.get(operation.name)
        if supplied is None:
            per_exit = operation_exit_regexes(operation)
        else:
            per_exit = {
                point.exit_id: supplied.get(point.exit_id, EPSILON)
                for point in operation.returns
            }
        for point in operation.returns:
            fragment = thompson(per_exit[point.exit_id])
            rename = {
                state: ("body", operation.name, point.exit_id, state)
                for state in fragment.states
            }
            builder.add_states(rename.values())
            for source, symbol, target in fragment.iter_transitions():
                if symbol is None:
                    builder.add_epsilon(rename[source], rename[target])
                else:
                    builder.add_transition(rename[source], symbol, rename[target])
            for state in fragment.initial_states:
                builder.add_epsilon(entered[operation.name], rename[state])
            target_exit = exit_state(operation.name, point.exit_id)
            builder.add_state(target_exit)
            for state in fragment.accepting_states:
                builder.add_epsilon(rename[state], target_exit)
        charge_states(builder.state_count, cap, "behavior construction")

    def connect(source, operation: OperationDef) -> None:
        builder.add_transition(source, operation.name, entered[operation.name])

    # Wire the spec structure: initial ops from start, next-method sets
    # from each exit, and acceptance at exits of final ops.
    for operation in spec.initial_operations():
        connect(START_STATE, operation)
    for operation in parsed.operations:
        for point in operation.returns:
            source = exit_state(operation.name, point.exit_id)
            for next_name in point.next_methods:
                next_operation = spec.operation(next_name)
                if next_operation is not None:
                    connect(source, next_operation)
        if operation.kind.is_final:
            for point in operation.returns:
                builder.mark_accepting(exit_state(operation.name, point.exit_id))

    # Keep the full event vocabulary in the alphabet even when parts are
    # unreachable, so later products and lifts line up.
    for operation in parsed.operations:
        builder.alphabet.add(operation.name)
        builder.alphabet.update(operation.calls)
    if tracer is not None and tracer.enabled:
        tracer.annotate(
            nfa_states=builder.state_count,
            operations=len(parsed.operations),
        )
    return builder.build()


def subsystem_alphabet(parsed: ParsedClass, field_name: str) -> frozenset[str]:
    """Event labels of one subsystem instance (``a.test``, ``a.open``...).

    Includes every method the class's bodies actually call on the field
    *and* every operation the subsystem's class declares is added by the
    caller when the spec is known; here we return the called set.
    """
    prefix = field_name + "."
    labels: set[str] = set()
    for operation in parsed.operations:
        labels.update(label for label in operation.calls if label.startswith(prefix))
    return frozenset(labels)
