"""Plain-text rendering of extracted models (for terminals and tests).

Graphviz may not be installed where the CLI runs, so every diagram has a
text twin: a table of operations with their markers and successors, and
an adjacency listing of the dependency graph.
"""

from __future__ import annotations

from repro.core.dependency import DependencyGraph
from repro.core.spec import ClassSpec


def spec_text(spec: ClassSpec) -> str:
    """The behavior diagram as text, e.g.::

        Valve
          -> test [initial]
             test -> open | clean
             open -> close
             close [final] -> test
             clean [final] -> test
    """
    lines = [spec.name]
    for operation in spec.initial_operations():
        lines.append(f"  -> {operation.name} [initial]")
    for operation in spec.operations:
        markers = []
        if operation.kind.is_initial:
            markers.append("initial")
        if operation.kind.is_final:
            markers.append("final")
        marker_text = f" [{', '.join(markers)}]" if markers else ""
        successors: list[str] = []
        for point in operation.returns:
            if point.next_methods:
                successors.append(" & ".join(point.next_methods))
            else:
                successors.append("(end)")
        arrow = " | ".join(successors) if successors else "(no exit)"
        lines.append(f"     {operation.name}{marker_text} -> {arrow}")
    return "\n".join(lines) + "\n"


def dependency_text(graph: DependencyGraph) -> str:
    """The §3.1 graph as an adjacency listing."""
    lines = [
        f"{graph.class_name}: {len(graph.entries)} entry node(s), "
        f"{len(graph.exits)} exit node(s), {graph.arc_count} arc(s)"
    ]
    for entry in graph.entries:
        lines.append(f"  entry {entry.method}")
        for exit_node in graph.exits_of(entry.method):
            lines.append(f"    -> exit {exit_node.label()}")
            for name in exit_node.next_methods:
                lines.append(f"         -> entry {name}")
    return "\n".join(lines) + "\n"


def summary_table(specs: list[ClassSpec]) -> str:
    """One line per class: operation counts and role tallies."""
    header = f"{'class':<20} {'ops':>4} {'initial':>8} {'final':>6} {'exits':>6}"
    lines = [header, "-" * len(header)]
    for spec in specs:
        exits = sum(len(op.returns) for op in spec.operations)
        lines.append(
            f"{spec.name:<20} {len(spec.operations):>4} "
            f"{len(spec.initial_operations()):>8} "
            f"{len(spec.final_operations()):>6} {exits:>6}"
        )
    return "\n".join(lines) + "\n"
