"""Figure 4 — syntax, semantics and behavior inference, via the paper's
worked Examples 1–3.

* Example 1: ``0 ⊢ [a, c, a, c] ∈ loop(*) {a(); if(*) {b(); return} else {c()}}``
* Example 2: ``R ⊢ [a, c, a, b] ∈`` (same program)
* Example 3: ``⟦p⟧ = ((a·((b·∅)+c))*, {(a·((b·∅)+c))*·a·b})`` which our
  canonical constructors print as ``((a . c)*, {(a . c)* . a . b})`` —
  the same language (``b·∅ = ∅``).

Times the derivation checks and the inference.
"""

from repro.lang.builder import paper_example_program
from repro.lang.inference import behavior, infer
from repro.lang.semantics import ONGOING, RETURNED, derivable
from repro.regex.ast import format_regex
from repro.regex.enumerate_words import words_up_to
from repro.lang.semantics import language


def test_examples_1_and_2_derivations(benchmark):
    program = paper_example_program()

    def derive_both():
        example_1 = derivable(ONGOING, ("a", "c", "a", "c"), program)
        example_2 = derivable(RETURNED, ("a", "c", "a", "b"), program)
        # Negative controls: statuses must not be interchangeable.
        wrong_1 = derivable(RETURNED, ("a", "c", "a", "c"), program)
        wrong_2 = derivable(ONGOING, ("a", "c", "a", "b"), program)
        return example_1, example_2, wrong_1, wrong_2

    example_1, example_2, wrong_1, wrong_2 = benchmark(derive_both)
    assert example_1 and example_2
    assert not wrong_1 and not wrong_2
    print("\nExample 1: 0 |- [a,c,a,c] in p  ->", example_1)
    print("Example 2: R |- [a,c,a,b] in p  ->", example_2)


def test_example_3_inference(benchmark):
    program = paper_example_program()

    def run_inference():
        behavior.cache_clear()  # time the real computation, not the cache
        return behavior(program)

    inferred = benchmark(run_inference)
    assert format_regex(inferred.ongoing) == "(a . c)*"
    returned = [format_regex(regex) for _exit, regex in inferred.returned]
    assert returned == ["(a . c)* . a . b"]
    print("\nExample 3: [[p]] = ( (a . c)* , { (a . c)* . a . b } )")
    print(f"           infer(p) = {format_regex(infer(program))}")


def test_inference_matches_semantics_on_example(benchmark):
    """The defining property of Figure 4 on the running example: the
    inferred regex and the trace semantics agree word for word."""
    program = paper_example_program()

    def compare():
        inferred_words = words_up_to(infer(program), 6)
        derived_words = language(program, 6)
        assert inferred_words == derived_words
        return len(inferred_words)

    count = benchmark(compare)
    # eps, ac, acac, acacac (ongoing) + ab, acab, acacab (returned).
    assert count == 7
