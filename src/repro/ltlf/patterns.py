"""A catalog of common claim patterns (after Dwyer et al.'s property
specification patterns, instantiated for finite traces).

Writing temporal claims by hand is error-prone; these constructors cover
the orderings CPS specifications actually use, and each is
property-tested against a direct trace-level definition:

* :func:`absence` — ``e`` never happens,
* :func:`existence` — ``e`` happens at least once,
* :func:`universality` — every event is ``e``,
* :func:`response` — every ``trigger`` is eventually followed by
  ``reaction`` (the valve rule: every ``open`` sees a later ``close``),
* :func:`precedence` — ``later`` cannot happen before ``first`` (the
  paper's claim shape: ``(!a.open) W b.open``),
* :func:`succession` — response and precedence combined,
* :func:`bounded_existence` — ``e`` happens at most ``bound`` times.

All patterns are closed formulas over event atoms and compose with the
boolean connectives of :mod:`repro.ltlf.ast`.
"""

from __future__ import annotations

from repro.ltlf.ast import (
    Eventually,
    Formula,
    Globally,
    Next,
    WeakUntil,
    atom,
    conj,
    disj,
    neg,
)


def absence(event: str) -> Formula:
    """``G !e`` — the event never occurs."""
    return Globally(neg(atom(event)))


def existence(event: str) -> Formula:
    """``F e`` — the event occurs at least once."""
    return Eventually(atom(event))


def universality(event: str) -> Formula:
    """``G e`` — every position is the event (degenerate but useful for
    single-purpose sub-alphabets)."""
    return Globally(atom(event))


def response(trigger: str, reaction: str) -> Formula:
    """``G (trigger -> F reaction)`` — every trigger is answered."""
    return Globally(disj([neg(atom(trigger)), Eventually(atom(reaction))]))


def precedence(first: str, later: str) -> Formula:
    """``(!later) W first`` — ``later`` waits for ``first``.

    Exactly the paper's claim shape: ``precedence("b.open", "a.open")``
    is ``(!a.open) W b.open``.
    """
    return WeakUntil(neg(atom(later)), atom(first))


def succession(trigger: str, reaction: str) -> Formula:
    """Precedence and response combined: reactions only after triggers,
    and every trigger is eventually answered."""
    return conj([precedence(trigger, reaction), response(trigger, reaction)])


def bounded_existence(event: str, bound: int) -> Formula:
    """The event occurs at most ``bound`` times.

    Encoded by nesting: more than ``bound`` occurrences would need
    ``bound + 1`` nested eventualities each strictly after the previous
    occurrence.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    # "At least k occurrences" = F (e & X (at least k-1 occurrences)).
    at_least: Formula = Eventually(atom(event))
    for _ in range(bound):
        at_least = Eventually(conj([atom(event), Next(at_least)]))
    return neg(at_least)


def never_adjacent(first: str, second: str) -> Formula:
    """``G (first -> !X second)`` — the two events never occur
    back-to-back (a cool-down constraint)."""
    return Globally(disj([neg(atom(first)), neg(Next(atom(second)))]))


def alternation(first: str, second: str) -> Formula:
    """The two events strictly alternate, starting with ``first``:
    precedence in both directions plus no immediate repetition.

    Over the joint sub-alphabet this says: ``second`` waits for
    ``first``, and between two ``first``s there is a ``second`` (and
    vice versa), expressed with weak-untils on each trigger.
    """
    from repro.ltlf.ast import WeakNext

    a, b = atom(first), atom(second)
    no_second_first = WeakUntil(neg(b), a)
    after_a_next_is_not_a = Globally(
        disj([neg(a), WeakNext(WeakUntil(neg(a), b))])
    )
    after_b_next_is_not_b = Globally(
        disj([neg(b), WeakNext(WeakUntil(neg(b), a))])
    )
    return conj([no_second_first, after_a_next_is_not_a, after_b_next_is_not_b])
