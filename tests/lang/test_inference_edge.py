"""Inference edge cases: interactions of loops, choices and returns that
the paper's Figure 4 implies but never spells out."""

from repro.lang.builder import call, if_, loop, ret, seq, skip
from repro.lang.inference import behavior, exit_behaviors, infer
from repro.lang.metatheory import check_completeness, check_soundness
from repro.lang.semantics import ONGOING, RETURNED, derivable
from repro.regex.ast import EMPTY, format_regex
from repro.regex.equivalence import equivalent
from repro.regex.matching import matches
from repro.regex.parser import parse_regex


class TestLoopReturnInteractions:
    def test_loop_with_two_returns(self):
        # loop(*) { if(*) {a(); return} else {b(); return} }
        program = loop(
            if_(seq(call("a"), ret(exit_id=0)), seq(call("b"), ret(exit_id=1)))
        )
        result = behavior(program)
        # Body never completes an iteration ongoing, so the loop prefix
        # is ε; two returned behaviors survive per exit.
        per_exit = exit_behaviors(program)
        assert equivalent(per_exit[0], parse_regex("a"))
        assert equivalent(per_exit[1], parse_regex("b"))
        assert result.ongoing == parse_regex("eps")

    def test_loop_mixing_return_and_continue(self):
        # loop(*) { a(); if(*) {return} else {b()} }
        program = loop(seq(call("a"), if_(ret(), call("b"))))
        inferred = infer(program)
        expected = parse_regex("(a . b)* + (a . b)* . a")
        assert equivalent(inferred, expected)
        assert check_soundness(program, 6)
        assert check_completeness(program, 6)

    def test_nested_loops_with_inner_return(self):
        # loop(*) { loop(*) { a(); return } ; b() }
        program = loop(seq(loop(seq(call("a"), ret())), call("b")))
        inferred = infer(program)
        # The inner loop either runs a();return (escaping everything) or
        # exits immediately; b() then follows in the outer iteration.
        assert matches(inferred, ())
        assert matches(inferred, ("a",))
        assert matches(inferred, ("b", "b"))
        assert matches(inferred, ("b", "a"))
        assert not matches(inferred, ("a", "b"))  # return kills the rest
        assert check_soundness(program, 6)
        assert check_completeness(program, 6)

    def test_return_inside_both_branches_then_code(self):
        # if(*) {return} else {return}; a() — a() is dead code.
        program = seq(if_(ret(), ret()), call("a"))
        result = behavior(program)
        assert result.ongoing is EMPTY
        assert matches(infer(program), ())
        assert not matches(infer(program), ("a",))

    def test_derivability_agrees_on_dead_code(self):
        program = seq(if_(ret(), ret()), call("a"))
        assert derivable(RETURNED, (), program)
        assert not derivable(ONGOING, ("a",), program)


class TestAnnotatedReturnsThroughControlFlow:
    def test_exit_ids_survive_loops(self):
        program = loop(if_(ret(["x"], exit_id=0), seq(call("c"), ret([], exit_id=1))))
        per_exit = exit_behaviors(program)
        assert set(per_exit) == {0, 1}
        assert equivalent(per_exit[1], parse_regex("c")), format_regex(per_exit[1])

    def test_exit_behavior_accumulates_loop_prefix(self):
        # loop(*) { a(); if(*) {return@0} else {skip} }
        program = loop(seq(call("a"), if_(ret(exit_id=0), skip())))
        per_exit = exit_behaviors(program)
        assert equivalent(per_exit[0], parse_regex("a* . a"))

    def test_unreached_exit_gets_empty_language(self):
        # return@0; then return@1 is dead.
        program = seq(ret(exit_id=0), ret(exit_id=1))
        per_exit = exit_behaviors(program)
        assert per_exit[0] == parse_regex("eps")
        assert per_exit[1] is EMPTY


class TestInferenceInvariance:
    def test_skip_unit_laws(self):
        body = seq(call("a"), call("b"))
        assert infer(seq(skip(), body)) == infer(body)
        assert infer(seq(body, skip())) == infer(body)

    def test_if_commutes_semantically(self):
        left = if_(call("a"), call("b"))
        right = if_(call("b"), call("a"))
        assert infer(left) == infer(right)  # canonical unions

    def test_seq_associativity_semantic(self):
        a, b, c = call("a"), call("b"), call("c")
        assert infer(seq(seq(a, b), c)) == infer(seq(a, seq(b, c)))

    def test_loop_of_skip_is_epsilon(self):
        assert infer(loop(skip())) == parse_regex("eps")

    def test_loop_of_return_only(self):
        program = loop(ret())
        inferred = infer(program)
        # LOOP-1 gives eps; LOOP-2 gives the returned eps: language {ε}.
        assert matches(inferred, ())
        assert not matches(inferred, ("a",))
