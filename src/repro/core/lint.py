"""Specification well-formedness lints.

Before any behavioral check, each ``@sys`` class's annotation structure
must make sense on its own:

* at least one initial operation (otherwise no instance can ever be used),
* every next-method reference resolves to a declared operation,
* every operation is reachable from some initial operation,
* from every reachable point a final operation is still reachable
  (otherwise the object can get irrecoverably stuck),
* a class with operations should declare at least one final one.

Structural problems are errors; reachability problems are warnings (the
language-level checks remain sound without them, they just indicate a
specification that cannot be exercised fully).
"""

from __future__ import annotations

from repro.core.dependency import extract_dependency_graph
from repro.core.diagnostics import CheckResult, Diagnostic, Severity
from repro.core.spec import ClassSpec
from repro.frontend.model_ast import ParsedClass


def lint_spec(parsed: ParsedClass) -> CheckResult:
    """Run every specification lint on one class."""
    result = CheckResult()
    spec = ClassSpec.of(parsed)
    graph = extract_dependency_graph(parsed)

    if not parsed.operations:
        result.diagnostics.append(
            Diagnostic(
                severity=Severity.WARNING,
                code="no-operations",
                message=f"@sys class {parsed.name} declares no operations",
                class_name=parsed.name,
                lineno=parsed.lineno,
            )
        )
        return result

    if not spec.initial_operations():
        result.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="no-initial-operation",
                message=(
                    f"class {parsed.name} declares no @op_initial or "
                    "@op_initial_final operation; no method may ever be invoked"
                ),
                class_name=parsed.name,
                lineno=parsed.lineno,
            )
        )

    if not spec.final_operations():
        result.diagnostics.append(
            Diagnostic(
                severity=Severity.WARNING,
                code="no-final-operation",
                message=(
                    f"class {parsed.name} declares no @op_final or "
                    "@op_initial_final operation; no lifecycle can complete"
                ),
                class_name=parsed.name,
                lineno=parsed.lineno,
            )
        )

    # Invocation analysis on the class's own returns: every next-method
    # reference must be a declared operation.
    for exit_node, missing in graph.dangling_references():
        operation = spec.operation(exit_node.method)
        result.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="unknown-next-method",
                message=(
                    f"operation {exit_node.method} returns [{missing!r}...], "
                    f"but {parsed.name} declares no operation {missing!r}"
                ),
                class_name=parsed.name,
                lineno=operation.lineno if operation else parsed.lineno,
            )
        )

    # Reachability over the dependency graph.
    reachable_methods = _reachable_methods(spec)
    for operation in parsed.operations:
        if operation.name not in reachable_methods:
            result.diagnostics.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    code="unreachable-operation",
                    message=(
                        f"operation {operation.name} can never be invoked "
                        "(not reachable from any initial operation)"
                    ),
                    class_name=parsed.name,
                    lineno=operation.lineno,
                )
            )

    # Dead ends: a reachable non-final operation whose exit allows nothing.
    for operation in parsed.operations:
        if operation.kind.is_final or operation.name not in reachable_methods:
            continue
        for point in operation.returns:
            if not point.next_methods:
                result.diagnostics.append(
                    Diagnostic(
                        severity=Severity.WARNING,
                        code="dead-end-exit",
                        message=(
                            f"operation {operation.name} has an exit with an "
                            "empty next-method set but is not final; the "
                            "object can get stuck there"
                        ),
                        class_name=parsed.name,
                        lineno=point.lineno or operation.lineno,
                    )
                )
    return result


def _reachable_methods(spec: ClassSpec) -> frozenset[str]:
    """Operations reachable from the initial ones via next-method sets."""
    reached: set[str] = set()
    frontier = [operation.name for operation in spec.initial_operations()]
    while frontier:
        name = frontier.pop()
        if name in reached:
            continue
        reached.add(name)
        operation = spec.operation(name)
        if operation is None:
            continue
        for point in operation.returns:
            for next_name in point.next_methods:
                if next_name not in reached and spec.operation(next_name) is not None:
                    frontier.append(next_name)
    return frozenset(reached)
