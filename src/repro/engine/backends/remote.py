"""HTTP transport for sealed cache envelopes.

Client side of the ``repro cache serve`` daemon
(:mod:`repro.engine.backends.server`): sealed envelope text is GET/PUT
against ``/v1/cache/<namespace>/<key>`` using nothing but
:mod:`urllib.request`.  The content keys are SHA-256 digests of
canonical renderings, so they are machine-independent — any class any
worker anywhere has verified is a hit for every other worker sharing
the endpoint.

Failure model: *every* transport problem (connection refused, timeout,
HTTP 5xx/4xx other than 404, an injected ``remote-*`` fault) surfaces
as :class:`~repro.engine.backends.base.RemoteUnavailable`.  The cache
treats that as a plain miss, and :class:`TieredBackend` feeds it into
its degradation counter; a down remote can slow a run, never corrupt
or fail it.  Trust model: the client never trusts remote bytes — the
seal is re-verified by the cache (and by the tiered promotion path)
before any payload is used.

Fault sites ``remote-get`` / ``remote-put`` fire before each request
with key ``<namespace>/<key>``, so CI can rehearse flaky and dead
remotes deterministically (docs/robustness.md).
"""

from __future__ import annotations

import urllib.error
import urllib.request

from repro.engine import faults
from repro.engine.backends.base import CacheBackend, RemoteUnavailable

#: Seconds a single cache request may take before the remote is treated
#: as unavailable.  Verification work dwarfs a LAN round trip; anything
#: slower than this is a remote worth degrading away from.
DEFAULT_REQUEST_TIMEOUT = 10.0


class RemoteHTTPBackend(CacheBackend):
    """Sealed envelopes served by a ``repro cache serve`` endpoint."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        super().__init__()
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _url(self, namespace: str, key: str) -> str:
        return f"{self.base_url}/v1/cache/{namespace}/{key}"

    def get_text(self, namespace: str, key: str) -> str | None:
        fault_key = f"{namespace}/{key}"
        try:
            faults.fire("remote-get", fault_key)
            request = urllib.request.Request(self._url(namespace, key), method="GET")
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                text = response.read().decode("utf-8")
        except urllib.error.HTTPError as err:
            err.close()
            if err.code == 404:
                self._count("remote_misses")
                self._event("remote-miss", namespace=namespace)
                return None
            self._count("remote_errors")
            raise RemoteUnavailable(
                f"remote cache GET {namespace}/{key} failed: HTTP {err.code}"
            ) from err
        except (OSError, ValueError, faults.InjectedFault) as err:
            self._count("remote_errors")
            raise RemoteUnavailable(
                f"remote cache GET {namespace}/{key} failed: {err}"
            ) from err
        self._count("remote_hits")
        self._event("remote-hit", namespace=namespace)
        return text

    def put_text(self, namespace: str, key: str, text: str) -> None:
        fault_key = f"{namespace}/{key}"
        try:
            faults.fire("remote-put", fault_key)
            request = urllib.request.Request(
                self._url(namespace, key),
                data=text.encode("utf-8"),
                method="PUT",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                response.read()
        except (OSError, ValueError, faults.InjectedFault) as err:
            self._count("remote_errors")
            raise RemoteUnavailable(
                f"remote cache PUT {namespace}/{key} failed: {err}"
            ) from err
        self._count("remote_puts")
        self._event("remote-put", namespace=namespace)

    def delete(self, namespace: str, key: str) -> bool:
        try:
            request = urllib.request.Request(
                self._url(namespace, key), method="DELETE"
            )
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                response.read()
        except urllib.error.HTTPError as err:
            err.close()
            if err.code == 404:
                return False
            raise RemoteUnavailable(
                f"remote cache DELETE {namespace}/{key} failed: HTTP {err.code}"
            ) from err
        except (OSError, ValueError) as err:
            raise RemoteUnavailable(
                f"remote cache DELETE {namespace}/{key} failed: {err}"
            ) from err
        return True

    def ping(self) -> bool:
        """Is the endpoint up?  Never raises."""
        try:
            request = urllib.request.Request(f"{self.base_url}/healthz", method="GET")
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                response.read()
        except (OSError, ValueError):
            return False
        return True

    def _count(self, field: str) -> None:
        stats = self._stats()
        if stats is not None:
            setattr(stats, field, getattr(stats, field) + 1)
