"""Return-statement parsing: every row of Table 2 plus the error cases."""

import ast

import pytest

from repro.frontend.returns import ReturnFormError, describe_return, parse_return


def return_node(source: str) -> ast.Return:
    module = ast.parse(f"def f():\n    {source}")
    statement = module.body[0].body[0]
    assert isinstance(statement, ast.Return)
    return statement


class TestTable2Rows:
    def test_row_1_single_method(self):
        point = parse_return(return_node('return ["close"]'), 0)
        assert point.next_methods == ("close",)
        assert not point.has_user_value

    def test_row_2_choice(self):
        point = parse_return(return_node('return ["open", "clean"]'), 0)
        assert point.next_methods == ("open", "clean")
        assert not point.has_user_value

    def test_row_3_single_with_int_value(self):
        point = parse_return(return_node('return ["close"], 2'), 0)
        assert point.next_methods == ("close",)
        assert point.has_user_value

    def test_row_4_single_with_bool_value(self):
        point = parse_return(return_node('return ["close"], True'), 0)
        assert point.next_methods == ("close",)
        assert point.has_user_value

    def test_row_5_choice_with_value(self):
        point = parse_return(return_node('return ["open", "clean"], 2'), 0)
        assert point.next_methods == ("open", "clean")
        assert point.has_user_value

    def test_empty_list_no_successor(self):
        point = parse_return(return_node("return []"), 0)
        assert point.next_methods == ()


class TestExtras:
    def test_exit_id_recorded(self):
        point = parse_return(return_node('return ["x"]'), 7)
        assert point.exit_id == 7

    def test_lineno_recorded(self):
        point = parse_return(return_node('return ["x"]'), 0)
        assert point.lineno == 2

    def test_multiple_user_values(self):
        point = parse_return(return_node('return ["x"], 1, "extra"'), 0)
        assert point.next_methods == ("x",)
        assert point.has_user_value

    def test_bare_tuple_of_strings_rejected_as_ambiguous(self):
        # ("open", "clean") could be a method pair or (method-list, value);
        # Table 2 reserves tuples for the user-value form, so this is an
        # error rather than a guess.
        with pytest.raises(ReturnFormError):
            parse_return(return_node('return ("open", "clean")'), 0)


class TestErrors:
    def test_bare_return_rejected(self):
        with pytest.raises(ReturnFormError):
            parse_return(return_node("return"), 0)

    def test_non_list_rejected(self):
        with pytest.raises(ReturnFormError):
            parse_return(return_node('return "close"'), 0)

    def test_non_string_elements_rejected(self):
        with pytest.raises(ReturnFormError):
            parse_return(return_node("return [1, 2]"), 0)

    def test_computed_list_rejected(self):
        with pytest.raises(ReturnFormError):
            parse_return(return_node("return methods"), 0)

    def test_duplicate_methods_rejected(self):
        with pytest.raises(ReturnFormError):
            parse_return(return_node('return ["x", "x"]'), 0)

    def test_error_carries_lineno_and_violation(self):
        try:
            parse_return(return_node("return"), 0)
        except ReturnFormError as error:
            violation = error.as_violation("Valve")
            assert violation.class_name == "Valve"
            assert violation.lineno == 2
            assert violation.code == "bad-return-form"
        else:  # pragma: no cover
            pytest.fail("expected ReturnFormError")


class TestDescribe:
    def test_single(self):
        point = parse_return(return_node('return ["close"]'), 0)
        assert describe_return(point) == "expecting method 'close' to be invoked next"

    def test_choice(self):
        point = parse_return(return_node('return ["open", "clean"]'), 0)
        assert "'open' or 'clean'" in describe_return(point)

    def test_empty(self):
        point = parse_return(return_node("return []"), 0)
        assert describe_return(point) == "no method may be invoked next"

    def test_user_value_mentioned(self):
        point = parse_return(return_node('return ["close"], 2'), 0)
        assert describe_return(point).endswith("(and returns a user value)")
