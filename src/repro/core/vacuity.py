"""Vacuity detection for temporal claims.

A claim can *hold for the wrong reason*: ``G (a.open -> F a.close)`` is
satisfied by a class that never opens the valve at all.  Following the
classic occurrence-based method (Beer et al.), each atom *occurrence* of
a holding claim is replaced by the polarity-dependent **strengthening**
constant — ``false`` for positive occurrences, ``true`` for negative
ones — which can only make the claim harder to satisfy.  If a
strengthened mutant still holds on every trace, that occurrence never
influenced the verdict and the claim is reported *vacuous* with the
witnessing occurrence (for the response example above: replacing the
consequent ``F a.close`` by ``false`` leaves ``G (a.open -> false)``,
i.e. "a.open never happens", which indeed holds — the trigger is dead).

Vacuity findings are warnings — the claim is still true — but they are
exactly the alarms a maintainer wants when a refactoring silently
disconnects a requirement from the behavior it was written for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.kernel import KernelCheck
from repro.automata.nfa import NFA
from repro.automata.operations import project_nfa, with_alphabet
from repro.automata.product import intersection
from repro.automata.shortest import shortest_accepted_word
from repro.core.behavior import behavior_nfa
from repro.core.claims import claim_alphabet
from repro.core.diagnostics import CheckResult, Diagnostic, Severity
from repro.frontend.model_ast import ParsedClass
from repro.ltlf.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Eventually,
    Formula,
    Globally,
    Next,
    Not,
    Or,
    Release,
    Top,
    Until,
    WeakNext,
    WeakUntil,
    atoms as formula_atoms,
    conj,
    disj,
    neg,
)
from repro.ltlf.parser import ClaimSyntaxError, parse_claim
from repro.ltlf.translate import negation_to_dfa


@dataclass(frozen=True)
class VacuityWitness:
    """One strengthening that leaves the claim universally satisfied."""

    atom_name: str
    occurrence: int
    replacement: str  # "true" or "false"


def replace_atom(formula: Formula, name: str, value: Formula) -> Formula:
    """Replace every occurrence of atom ``name`` by ``value``."""
    if isinstance(formula, Atom):
        return value if formula.name == name else formula
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return neg(replace_atom(formula.operand, name, value))
    if isinstance(formula, And):
        return conj(replace_atom(op, name, value) for op in formula.operands)
    if isinstance(formula, Or):
        return disj(replace_atom(op, name, value) for op in formula.operands)
    if isinstance(formula, Next):
        return Next(replace_atom(formula.operand, name, value))
    if isinstance(formula, WeakNext):
        return WeakNext(replace_atom(formula.operand, name, value))
    if isinstance(formula, Eventually):
        return Eventually(replace_atom(formula.operand, name, value))
    if isinstance(formula, Globally):
        return Globally(replace_atom(formula.operand, name, value))
    if isinstance(formula, Until):
        return Until(
            replace_atom(formula.left, name, value),
            replace_atom(formula.right, name, value),
        )
    if isinstance(formula, WeakUntil):
        return WeakUntil(
            replace_atom(formula.left, name, value),
            replace_atom(formula.right, name, value),
        )
    if isinstance(formula, Release):
        return Release(
            replace_atom(formula.left, name, value),
            replace_atom(formula.right, name, value),
        )
    raise TypeError(f"not a Formula: {formula!r}")


def strengthening_mutants(formula: Formula) -> list[tuple[str, int, str, Formula]]:
    """One mutant per atom occurrence: the occurrence replaced by its
    polarity-dependent strengthening constant.

    Returns ``(atom name, occurrence index, replacement label, mutant)``
    tuples.  Every operand of the temporal operators is monotone, so
    polarity only flips under negation.
    """
    mutants: list[tuple[str, int, str, Formula]] = []
    counter = [0]

    def rebuild(node: Formula, positive: bool, target: int) -> Formula:
        """Copy of ``formula`` with occurrence ``target`` strengthened."""
        if isinstance(node, Atom):
            index = counter[0]
            counter[0] += 1
            if index == target:
                return FALSE if positive else TRUE
            return node
        if isinstance(node, (Top, Bottom)):
            return node
        if isinstance(node, Not):
            return neg(rebuild(node.operand, not positive, target))
        if isinstance(node, And):
            return conj(rebuild(op, positive, target) for op in node.operands)
        if isinstance(node, Or):
            return disj(rebuild(op, positive, target) for op in node.operands)
        if isinstance(node, Next):
            return Next(rebuild(node.operand, positive, target))
        if isinstance(node, WeakNext):
            return WeakNext(rebuild(node.operand, positive, target))
        if isinstance(node, Eventually):
            return Eventually(rebuild(node.operand, positive, target))
        if isinstance(node, Globally):
            return Globally(rebuild(node.operand, positive, target))
        if isinstance(node, (Until, WeakUntil, Release)):
            rebuilt_left = rebuild(node.left, positive, target)
            rebuilt_right = rebuild(node.right, positive, target)
            return type(node)(rebuilt_left, rebuilt_right)
        raise TypeError(f"not a Formula: {node!r}")

    # First pass: enumerate occurrences with their names and polarities.
    occurrences: list[tuple[str, bool]] = []

    def scan(node: Formula, positive: bool) -> None:
        if isinstance(node, Atom):
            occurrences.append((node.name, positive))
        elif isinstance(node, Not):
            scan(node.operand, not positive)
        elif isinstance(node, (And, Or)):
            for operand in node.operands:
                scan(operand, positive)
        elif isinstance(node, (Next, WeakNext, Eventually, Globally)):
            scan(node.operand, positive)
        elif isinstance(node, (Until, WeakUntil, Release)):
            scan(node.left, positive)
            scan(node.right, positive)

    scan(formula, True)
    for target, (name, positive) in enumerate(occurrences):
        counter[0] = 0
        mutant = rebuild(formula, True, target)
        label = "false" if positive else "true"
        mutants.append((name, target, label, mutant))
    return mutants


def _holds_on(projected: DFA, formula: Formula, observed) -> bool:
    """Does ``formula`` hold on every word of ``projected``?"""
    violation_dfa = negation_to_dfa(formula, alphabet=observed)
    joint = projected.alphabet | violation_dfa.alphabet
    bad = intersection(
        with_alphabet(projected, joint), with_alphabet(violation_dfa, joint)
    )
    return shortest_accepted_word(bad) is None


def find_vacuous_atoms(
    parsed: ParsedClass,
    formula: Formula,
    behavior: NFA | None = None,
    specs: dict | None = None,
    kernel: KernelCheck | None = None,
) -> list[VacuityWitness]:
    """Atoms whose replacement by a constant keeps the claim universally
    true.  Only meaningful when the claim itself holds (callers check)."""
    if behavior is None:
        behavior = behavior_nfa(parsed)
    observed = claim_alphabet(parsed, behavior, formula_atoms(formula), specs)
    projected = (
        None if kernel is not None
        else determinize(project_nfa(behavior, observed))
    )
    witnesses: list[VacuityWitness] = []
    for name, occurrence, label, mutant in strengthening_mutants(formula):
        if mutant == formula:
            continue
        if kernel is not None:
            holds = kernel.holds_on(mutant, observed)
        else:
            holds = _holds_on(projected, mutant, observed)
        if holds:
            witnesses.append(
                VacuityWitness(atom_name=name, occurrence=occurrence, replacement=label)
            )
    return witnesses


def check_claim_vacuity(
    parsed: ParsedClass,
    behavior: NFA | None = None,
    specs: dict | None = None,
    kernel: KernelCheck | None = None,
) -> CheckResult:
    """Warn about claims of ``parsed`` that hold vacuously.

    Claims that fail are skipped here — the claim checker already
    reports those as errors.
    """
    result = CheckResult()
    if not parsed.claims:
        return result
    if behavior is None:
        behavior = behavior_nfa(parsed)
    for formula_text in parsed.claims:
        try:
            formula = parse_claim(formula_text)
        except ClaimSyntaxError:
            continue  # reported by check_claims
        observed = claim_alphabet(parsed, behavior, formula_atoms(formula), specs)
        if formula_atoms(formula) - observed - behavior.alphabet:
            continue  # unknown atoms: reported by check_claims
        if kernel is not None:
            holds = kernel.holds_on(formula, observed)
        else:
            projected = determinize(project_nfa(behavior, observed))
            holds = _holds_on(projected, formula, observed)
        if not holds:
            continue  # failing claims are not vacuous, they are wrong
        for witness in find_vacuous_atoms(
            parsed, formula, behavior, specs, kernel=kernel
        ):
            result.diagnostics.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    code="vacuous-claim",
                    message=(
                        f"claim {formula_text!r} holds vacuously: "
                        f"strengthening occurrence {witness.occurrence} of "
                        f"{witness.atom_name!r} to {witness.replacement} "
                        "leaves it satisfied by every trace"
                    ),
                    class_name=parsed.name,
                    formula=formula_text,
                    lineno=parsed.lineno,
                )
            )
    return result
