"""Persistent per-project incremental state (``.repro-cache/state.json``).

One verified project leaves behind a *state file*: for every class, the
fingerprints the incremental planner diffs against (the full-syntax
class fingerprint and the spec-structure digest), the names of the
subsystem classes it declares, and — for classes whose check completed —
the serialized verdict, ready to splice into the next run's report
without re-checking anything (:mod:`repro.engine.incremental`).

The file is versioned twice over: by :data:`STATE_VERSION` (this
module's payload shape) *and* by
:data:`repro.engine.fingerprint.FINGERPRINT_VERSION` (the meaning of the
stored digests).  A mismatch on either — like any unreadable, truncated
or structurally malformed file — makes :func:`load_state` report an
unusable state, and the caller falls back to a cold run instead of
erroring: stale state can only ever cost a recomputation, never wrong
output.  Writes are atomic (temp file + ``os.replace``), mirroring
:mod:`repro.engine.cache`.

Classes the supervisor quarantined are stored with ``diagnostics=None``
("digests known, verdict unknown"): the next incremental run re-checks
them without also dirtying their dependents, whose view of the class —
its spec structure — was computed from the parse and is still valid.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.engine.fingerprint import FINGERPRINT_VERSION

#: Bump when the state payload shape changes; old files then fall back
#: to a cold run instead of being misread.
STATE_VERSION = 1

#: File name inside the cache directory (state is co-located with the
#: content-addressed cache; ``repro cache clear`` removes both).
STATE_FILENAME = "state.json"


def state_path(cache_dir: str | Path) -> Path:
    """Default state-file location for a cache directory."""
    return Path(cache_dir) / STATE_FILENAME


@dataclass(frozen=True)
class ClassState:
    """What the last run knew about one class."""

    name: str
    #: Digest of the full syntactic content (line numbers included) —
    #: :func:`repro.engine.fingerprint.class_fingerprint`.
    fingerprint: str
    #: Digest of the specification structure only —
    #: :func:`repro.engine.fingerprint.spec_fingerprint`.
    spec: str
    #: Names of every class this one declares as a subsystem type,
    #: sorted; in-module or not (missing dependencies matter too).
    deps: tuple[str, ...]
    #: Serialized verdict (:mod:`repro.engine.serialize` dicts), or
    #: ``None`` when the last run quarantined the class.
    diagnostics: tuple[dict[str, Any], ...] | None
    #: Wave index and wall time of the recorded check (diagnostics
    #: context for ``repro state show``; not used for planning).
    wave: int = 0
    seconds: float = 0.0

    @property
    def verified(self) -> bool:
        return self.diagnostics is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "deps": list(self.deps),
            "diagnostics": (
                None if self.diagnostics is None else list(self.diagnostics)
            ),
            "wave": self.wave,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class ProjectState:
    """The complete recorded outcome of one project run."""

    classes: Mapping[str, ClassState] = field(default_factory=dict)
    source_name: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "state_version": STATE_VERSION,
            "fingerprint_version": FINGERPRINT_VERSION,
            "source_name": self.source_name,
            "classes": {
                name: entry.to_dict()
                for name, entry in sorted(self.classes.items())
            },
        }


# ----------------------------------------------------------------------
# Load / save / remove
# ----------------------------------------------------------------------

def _class_state_from_dict(name: str, data: Any) -> ClassState | None:
    """One class entry, or ``None`` when it is structurally malformed.

    Only the *shape* is validated here; whether the stored diagnostics
    deserialize is the planner's concern (it drops unusable verdicts by
    marking the class dirty, so a half-corrupt file still salvages every
    healthy entry).
    """
    if not isinstance(data, dict):
        return None
    fingerprint = data.get("fingerprint")
    spec = data.get("spec")
    deps = data.get("deps")
    diagnostics = data.get("diagnostics")
    if not isinstance(fingerprint, str) or not isinstance(spec, str):
        return None
    if not isinstance(deps, list) or not all(isinstance(d, str) for d in deps):
        return None
    if diagnostics is not None:
        if not isinstance(diagnostics, list) or not all(
            isinstance(entry, dict) for entry in diagnostics
        ):
            return None
    wave = data.get("wave", 0)
    seconds = data.get("seconds", 0.0)
    if not isinstance(wave, int) or not isinstance(seconds, (int, float)):
        return None
    return ClassState(
        name=name,
        fingerprint=fingerprint,
        spec=spec,
        deps=tuple(deps),
        diagnostics=None if diagnostics is None else tuple(diagnostics),
        wave=wave,
        seconds=float(seconds),
    )


def load_state(path: str | Path) -> tuple[ProjectState | None, str | None]:
    """Read a state file; ``(state, None)`` or ``(None, why-not)``.

    Every failure mode — missing file, unreadable file, invalid JSON,
    version mismatch, malformed structure — comes back as a reason
    string so callers can report *why* the run went cold.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, "no state file (first run?)"
    except OSError as error:
        return None, f"unreadable state file: {error}"
    try:
        envelope = json.loads(text)
    except ValueError:
        return None, "corrupt state file (invalid JSON)"
    if not isinstance(envelope, dict):
        return None, "corrupt state file (not an object)"
    if envelope.get("state_version") != STATE_VERSION:
        return None, (
            f"state version {envelope.get('state_version')!r} "
            f"(this build expects {STATE_VERSION})"
        )
    if envelope.get("fingerprint_version") != FINGERPRINT_VERSION:
        return None, (
            f"stale fingerprint version {envelope.get('fingerprint_version')!r} "
            f"(this build expects {FINGERPRINT_VERSION})"
        )
    raw_classes = envelope.get("classes")
    if not isinstance(raw_classes, dict):
        return None, "corrupt state file (no class table)"
    classes: dict[str, ClassState] = {}
    for name, data in raw_classes.items():
        entry = _class_state_from_dict(name, data)
        if entry is None:
            # One malformed entry does not spoil the rest: the class
            # simply looks "never seen before" and gets re-checked.
            continue
        classes[name] = entry
    source_name = envelope.get("source_name")
    return (
        ProjectState(
            classes=classes,
            source_name=source_name if isinstance(source_name, str) else "",
        ),
        None,
    )


def save_state(path: str | Path, state: ProjectState) -> None:
    """Atomically persist ``state`` (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(state.to_dict(), indent=2, sort_keys=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-state-", suffix=".json"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(temp_name, path)
    except OSError:
        try:  # best effort: a failed state write must not kill the run
            os.unlink(temp_name)
        except OSError:
            pass


def remove_state(path: str | Path) -> bool:
    """Delete a state file; ``True`` when one existed and was removed."""
    try:
        Path(path).unlink()
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False
