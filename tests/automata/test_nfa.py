"""NFA representation: closures, stepping, acceptance, trimming."""

import pytest

from repro.automata.nfa import (
    NFA,
    NFABuilder,
    empty_language_nfa,
    epsilon_language_nfa,
)


def simple_nfa() -> NFA:
    """Accepts a(ba)* — states 0 -a-> 1 -b-> 0, accepting {1}."""
    builder = NFABuilder()
    builder.mark_initial(0)
    builder.mark_accepting(1)
    builder.add_transition(0, "a", 1)
    builder.add_transition(1, "b", 0)
    return builder.build()


def epsilon_chain_nfa() -> NFA:
    """0 -ε-> 1 -ε-> 2 -a-> 3, accepting {3}."""
    builder = NFABuilder()
    builder.mark_initial(0)
    builder.add_epsilon(0, 1)
    builder.add_epsilon(1, 2)
    builder.add_transition(2, "a", 3)
    builder.mark_accepting(3)
    return builder.build()


class TestAcceptance:
    def test_accepts_basic(self):
        nfa = simple_nfa()
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a", "b", "a"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["b"])
        assert not nfa.accepts(["a", "b"])

    def test_epsilon_closure_transitive(self):
        nfa = epsilon_chain_nfa()
        assert nfa.epsilon_closure([0]) == {0, 1, 2}

    def test_accepts_through_epsilon(self):
        nfa = epsilon_chain_nfa()
        assert nfa.accepts(["a"])
        assert not nfa.accepts([])

    def test_step_applies_closure_after_move(self):
        builder = NFABuilder()
        builder.mark_initial(0)
        builder.add_transition(0, "a", 1)
        builder.add_epsilon(1, 2)
        builder.mark_accepting(2)
        nfa = builder.build()
        assert nfa.step(frozenset({0}), "a") == {1, 2}

    def test_unknown_symbol_rejects(self):
        assert not simple_nfa().accepts(["z"])


class TestConstants:
    def test_empty_language(self):
        nfa = empty_language_nfa({"a"})
        assert not nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_epsilon_language(self):
        nfa = epsilon_language_nfa({"a"})
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])


class TestStructure:
    def test_validates_initial_states(self):
        with pytest.raises(ValueError):
            NFA(
                states=frozenset({0}),
                alphabet=frozenset(),
                transitions={},
                epsilon_moves={},
                initial_states=frozenset({7}),
                accepting_states=frozenset(),
            )

    def test_validates_accepting_states(self):
        with pytest.raises(ValueError):
            NFA(
                states=frozenset({0}),
                alphabet=frozenset(),
                transitions={},
                epsilon_moves={},
                initial_states=frozenset({0}),
                accepting_states=frozenset({9}),
            )

    def test_builder_rejects_epsilon_via_add_transition(self):
        builder = NFABuilder()
        with pytest.raises(ValueError):
            builder.add_transition(0, None, 1)

    def test_reachable_states(self):
        builder = NFABuilder()
        builder.mark_initial(0)
        builder.add_transition(0, "a", 1)
        builder.add_transition(2, "a", 3)  # unreachable island
        builder.mark_accepting(3)
        nfa = builder.build()
        assert nfa.reachable_states() == {0, 1}

    def test_trim_drops_unreachable(self):
        builder = NFABuilder()
        builder.mark_initial(0)
        builder.add_transition(0, "a", 1)
        builder.mark_accepting(1)
        builder.add_transition(5, "a", 6)
        trimmed = builder.build().trim()
        assert trimmed.states == {0, 1}
        assert trimmed.accepts(["a"])

    def test_renumbered_preserves_language(self):
        nfa = simple_nfa()
        renamed = nfa.renumbered()
        for word in ([], ["a"], ["a", "b"], ["a", "b", "a"]):
            assert nfa.accepts(word) == renamed.accepts(word)

    def test_renumbered_states_are_contiguous_ints(self):
        renamed = epsilon_chain_nfa().renumbered()
        assert renamed.states == set(range(len(renamed.states)))

    def test_iter_transitions_lists_epsilons_with_none(self):
        nfa = epsilon_chain_nfa()
        symbols = {symbol for _s, symbol, _t in nfa.iter_transitions()}
        assert None in symbols
        assert "a" in symbols
