"""Specification refinement: may class B substitute for class A?

A composite verified against subsystem class ``A`` stays correct when
the field is re-bound to class ``B`` iff every complete lifecycle ``B``
*requires* is one ``A`` allows — i.e. the composite, which was proven to
drive the field only through ``A``-lifecycles, never takes ``B`` outside
its own specification.  Substitutability is therefore the **reverse**
inclusion ``L(spec(A)) ⊆ L(spec(B))``: the new class must accept every
usage pattern the old one permitted.

``check_refinement(general, refined)`` decides ``L(refined) ⊆
L(general)`` (the refinement direction used when *strengthening* a
spec); ``check_substitutable(old, new)`` is the deployment question
above.  Both produce diagnostics with a shortest witness lifecycle, and
a per-operation compatibility pre-check gives actionable messages when
the alphabets do not even line up.
"""

from __future__ import annotations

from repro.automata.operations import inclusion_counterexample
from repro.core.diagnostics import CheckResult, Diagnostic, Severity
from repro.core.spec import ClassSpec


def _alphabet_report(base: ClassSpec, other: ClassSpec) -> list[Diagnostic]:
    """Operations present in one spec but not the other (warnings)."""
    diagnostics: list[Diagnostic] = []
    missing = set(base.operation_names()) - set(other.operation_names())
    for name in sorted(missing):
        diagnostics.append(
            Diagnostic(
                severity=Severity.WARNING,
                code="refinement-alphabet",
                message=(
                    f"{base.name} declares operation {name!r}, which "
                    f"{other.name} does not declare"
                ),
                class_name=other.name,
            )
        )
    return diagnostics


def check_refinement(general: ClassSpec, refined: ClassSpec) -> CheckResult:
    """Does ``refined`` only allow lifecycles that ``general`` allows?

    ``L(refined) ⊆ L(general)``; a failure carries the shortest
    lifecycle ``refined`` accepts but ``general`` rejects.
    """
    result = CheckResult()
    result.diagnostics.extend(_alphabet_report(refined, general))
    witness = inclusion_counterexample(refined.dfa(), general.dfa())
    if witness is not None:
        result.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="not-a-refinement",
                message=(
                    f"{refined.name} allows a lifecycle that {general.name} "
                    "forbids"
                ),
                class_name=refined.name,
                counterexample=witness,
            )
        )
    return result


def check_substitutable(old: ClassSpec, new: ClassSpec) -> CheckResult:
    """May instances of ``new`` replace instances of ``old`` in verified
    composites?

    Requires ``L(old) ⊆ L(new)``: every usage pattern proven valid
    against ``old`` must remain valid for ``new``.  A failure carries
    the shortest previously-legal lifecycle that ``new`` rejects.
    """
    result = CheckResult()
    result.diagnostics.extend(_alphabet_report(old, new))
    witness = inclusion_counterexample(old.dfa(), new.dfa())
    if witness is not None:
        result.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="not-substitutable",
                message=(
                    f"{new.name} rejects a lifecycle that {old.name} "
                    "permitted; composites verified against "
                    f"{old.name} may break"
                ),
                class_name=new.name,
                counterexample=witness,
            )
        )
    return result


def equivalent_specs(left: ClassSpec, right: ClassSpec) -> bool:
    """Do the two specifications denote the same lifecycle language?"""
    from repro.automata.operations import equivalent

    return equivalent(left.dfa(), right.dfa())
