"""Deterministic fault injection for the batch-verification engine.

Every recovery path of the supervisor — retry, pool respawn, quarantine,
cache self-healing — must be exercisable by ordinary tier-1 tests, not
by hoping production misbehaves first.  This module injects faults at
named call sites, driven by a compact spec from the environment
(``REPRO_FAULTS``), the CLI (``repro check --faults``), or
programmatically (:func:`install`).

Spec grammar (rules separated by ``;``)::

    REPRO_FAULTS = "rule;rule;..."
    rule  = "seed=" INT                      # plan-wide RNG seed
          | site ":" action ":" pattern [":" param]...
    param = "arg=" FLOAT                     # action argument (seconds)
          | "times=" INT                     # fire at most N times
          | "p=" FLOAT                       # fire with probability p

Sites and the ``key`` they match ``pattern`` against (``fnmatch``):

* ``worker`` — entry of the per-class check task; key = class name;
* ``cache-put`` — after a cache entry is persisted;
  key = ``namespace/content-key``;
* ``store-write`` — inside :func:`repro.engine.store.atomic_write_text`
  after the payload landed in the temp file; key = the logical store
  name (``state``, ``method/<k>``, ``class/<k>``); ``path`` = the temp
  file, so ``torn`` tears the payload *before* the rename publishes it;
* ``store-rename`` — same write, immediately before ``os.replace``;
* ``lock-acquire`` — entry of :meth:`repro.engine.locking.FileLock.acquire`;
  key = the lock name (``state``, ``method``, ``class``);
* ``serve-accept`` — admission path of the ``repro serve`` daemon,
  fired before a submission is admitted; key = the tenant id;
* ``serve-dispatch`` — the daemon's dispatcher, fired after a job is
  journaled and immediately before it starts executing; key = the job
  id (``sigkill`` here models the daemon dying mid-dispatch, which the
  restart-recovery contract must survive);
* ``serve-respond`` — fired before the daemon writes an HTTP response;
  key = the request route (e.g. ``POST /v1/jobs``);
* ``remote-get`` / ``remote-put`` — fired by
  :class:`repro.engine.backends.remote.RemoteHTTPBackend` immediately
  before the corresponding HTTP request; key =
  ``namespace/content-key``.  Any raising action here surfaces as
  :class:`~repro.engine.backends.base.RemoteUnavailable`, which is how
  tests and CI rehearse flaky or dead remote caches (the tiered backend
  must degrade to local-only without changing a byte of any report).

Actions:

* ``delay`` — sleep ``arg`` seconds (default 0.05) before proceeding;
* ``raise`` — raise :class:`InjectedFault` (a transient worker error);
* ``kill``  — die like a crashed worker: ``os._exit`` in a process-pool
  child (the parent sees ``BrokenProcessPool``); in a thread worker,
  where exiting would take the whole interpreter down, raise
  :class:`WorkerKilled` instead;
* ``corrupt`` — truncate the just-written file at ``path`` (only
  meaningful at ``cache-put``; exercises cache self-healing);
* ``torn`` — truncate the file at ``path`` at byte offset ``arg``
  (default: half).  At ``store-write`` this models the power-cut tear
  that atomic rename cannot prevent: the rename still happens, so a
  syntactically broken — or torn-but-valid — payload becomes visible
  and only the checksum envelope catches it;
* ``enospc`` — raise ``OSError(ENOSPC)``, a full disk;
* ``rename-fail`` — raise ``OSError(EPERM)`` (meaningful at
  ``store-rename``: the write happened, publishing it failed);
* ``sigkill`` — ``SIGKILL`` the current process, exactly as if the OOM
  killer or the chaos harness struck at this sync point; nothing below
  this line runs, temp files are orphaned, locks are dropped by the OS;
* ``lock-timeout`` — raise :class:`InjectedLockTimeout`, which
  :meth:`~repro.engine.locking.FileLock.acquire` converts into its
  timed-out path without waiting out a real deadline.

**Determinism.**  Probabilistic rules do not consult a shared RNG whose
draws would depend on thread interleaving.  Each evaluation hashes
``(seed, rule index, site, key, per-rule evaluation count)``, so a given
schedule of calls produces the same fire/skip decisions on every run.
``times=N`` counters live in the plan object — note that process-pool
workers each import a fresh plan from the environment, so per-rule
counters are per-process there (use thread workers or unique patterns
when a test needs an exact global count).
"""

from __future__ import annotations

import errno
import fnmatch
import hashlib
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

#: Environment variable carrying the fault spec; inherited by
#: process-pool workers, which is how faults reach them.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status used by the ``kill`` action in a process worker.
KILL_EXIT_CODE = 117

SITES = (
    "worker",
    "cache-put",
    "store-write",
    "store-rename",
    "lock-acquire",
    "serve-accept",
    "serve-dispatch",
    "serve-respond",
    "remote-get",
    "remote-put",
)
ACTIONS = (
    "delay",
    "raise",
    "kill",
    "corrupt",
    "torn",
    "enospc",
    "rename-fail",
    "sigkill",
    "lock-timeout",
)


class FaultSpecError(ValueError):
    """Raised on a malformed ``REPRO_FAULTS`` / ``--faults`` spec."""


class InjectedFault(RuntimeError):
    """A deliberately injected worker failure (the ``raise`` action)."""


class WorkerKilled(InjectedFault):
    """The ``kill`` action in a thread worker (no process to kill)."""


class InjectedLockTimeout(InjectedFault):
    """The ``lock-timeout`` action; :class:`repro.engine.locking.FileLock`
    converts it into a real :class:`~repro.engine.locking.LockTimeout`."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule: *where*, *what*, *whom*, and *how often*."""

    site: str
    action: str
    pattern: str
    arg: float | None = None
    times: int | None = None
    p: float | None = None


class FaultPlan:
    """A parsed spec plus its firing state (counters are mutable)."""

    def __init__(self, rules: tuple[FaultRule, ...], seed: int = 0):
        self.rules = rules
        self.seed = seed
        self._fired = [0] * len(rules)
        self._evaluated = [0] * len(rules)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def fired(self, index: int | None = None) -> int:
        """Total firings (or the firings of one rule)."""
        if index is None:
            return sum(self._fired)
        return self._fired[index]

    def _decide(self, index: int, rule: FaultRule, site: str, key: str) -> bool:
        """Deterministically decide whether rule ``index`` fires now."""
        with self._lock:
            evaluation = self._evaluated[index]
            self._evaluated[index] += 1
            if rule.times is not None and self._fired[index] >= rule.times:
                return False
            if rule.p is not None:
                digest = hashlib.sha256(
                    f"{self.seed}:{index}:{site}:{key}:{evaluation}".encode()
                ).hexdigest()
                if int(digest, 16) % 1_000_000 >= rule.p * 1_000_000:
                    return False
            self._fired[index] += 1
            return True

    def fire(self, site: str, key: str, path: str | Path | None = None) -> None:
        """Inject every matching fault at call site ``site``.

        A ``raise``/``kill`` rule raises out of here, so later matching
        rules do not fire — just like a real crash would preempt them.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if not fnmatch.fnmatchcase(key, rule.pattern):
                continue
            if not self._decide(index, rule, site, key):
                continue
            self._execute(rule, site, key, path)

    def _execute(
        self, rule: FaultRule, site: str, key: str, path: str | Path | None
    ) -> None:
        if rule.action == "delay":
            time.sleep(0.05 if rule.arg is None else rule.arg)
        elif rule.action == "raise":
            raise InjectedFault(f"injected fault at {site} for {key!r}")
        elif rule.action == "kill":
            if multiprocessing.parent_process() is not None:
                os._exit(KILL_EXIT_CODE)  # a process-pool child: die hard
            raise WorkerKilled(f"injected worker kill at {site} for {key!r}")
        elif rule.action == "corrupt":
            if path is not None:
                _truncate_file(Path(path))
        elif rule.action == "torn":
            if path is not None:
                offset = None if rule.arg is None else int(rule.arg)
                _truncate_file(Path(path), offset)
        elif rule.action == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC at {site} for {key!r}",
            )
        elif rule.action == "rename-fail":
            raise OSError(
                errno.EPERM,
                f"injected rename failure at {site} for {key!r}",
            )
        elif rule.action == "sigkill":
            if hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            os._exit(KILL_EXIT_CODE)  # Windows: the closest thing
        elif rule.action == "lock-timeout":
            raise InjectedLockTimeout(
                f"injected lock timeout at {site} for {key!r}"
            )


def _truncate_file(path: Path, offset: int | None = None) -> None:
    """Leave the front of ``path`` behind — an interrupted write.

    ``offset=None`` keeps half the bytes (the classic ``corrupt``
    action); an explicit offset makes torn-write tests byte-precise.
    """
    try:
        data = path.read_bytes()
        cut = len(data) // 2 if offset is None else max(0, min(offset, len(data)))
        path.write_bytes(data[:cut])
    except OSError:
        pass


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec into a :class:`FaultPlan`."""
    rules: list[FaultRule] = []
    seed = 0
    for raw in spec.split(";"):
        text = raw.strip()
        if not text:
            continue
        if text.startswith("seed="):
            try:
                seed = int(text[len("seed="):])
            except ValueError:
                raise FaultSpecError(f"bad seed in fault rule: {text!r}")
            continue
        fields = text.split(":")
        if len(fields) < 3:
            raise FaultSpecError(
                f"fault rule needs site:action:pattern, got {text!r}"
            )
        site, action, pattern = fields[0], fields[1], fields[2]
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r} (expected one of {', '.join(SITES)})"
            )
        if action not in ACTIONS:
            raise FaultSpecError(
                f"unknown fault action {action!r} "
                f"(expected one of {', '.join(ACTIONS)})"
            )
        arg = times = p = None
        for param in fields[3:]:
            name, equals, value = param.partition("=")
            if not equals:
                raise FaultSpecError(f"bad fault parameter {param!r} in {text!r}")
            try:
                if name == "arg":
                    arg = float(value)
                elif name == "times":
                    times = int(value)
                elif name == "p":
                    p = float(value)
                else:
                    raise FaultSpecError(
                        f"unknown fault parameter {name!r} in {text!r}"
                    )
            except ValueError:
                raise FaultSpecError(f"bad fault parameter {param!r} in {text!r}")
        rules.append(
            FaultRule(
                site=site, action=action, pattern=pattern,
                arg=arg, times=times, p=p,
            )
        )
    return FaultPlan(tuple(rules), seed=seed)


def validate_environment() -> FaultPlan | None:
    """Parse-validate the ``REPRO_FAULTS`` environment spec *eagerly*.

    The environment spec is normally parsed lazily, on the first
    :func:`fire` call — which may happen deep inside a worker, turning a
    typo'd site name into a baffling mid-run quarantine.  Entry points
    (``repro check``, ``repro serve``) call this at startup instead, so
    an unknown site or action fails fast with the full list of valid
    ones.  Returns the parsed plan (or ``None`` when the variable is
    unset/empty); raises :class:`FaultSpecError` on a malformed spec.
    """
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    return parse_faults(spec)


# ----------------------------------------------------------------------
# The active plan: programmatic install beats the environment
# ----------------------------------------------------------------------

_installed: FaultPlan | None = None
#: Cache of the plan parsed from the environment, keyed by the raw spec
#: string — firing counters must survive across `fire` calls, so the
#: spec is parsed once per distinct value, not once per call.
_env_cache: tuple[str, FaultPlan] | None = None
_state_lock = threading.Lock()


def install(plan: FaultPlan | None) -> None:
    """Set (or with ``None`` clear) the process-local active plan."""
    global _installed, _env_cache
    with _state_lock:
        _installed = plan
        _env_cache = None


def active_plan() -> FaultPlan | None:
    """The installed plan, else one parsed from ``REPRO_FAULTS``."""
    global _env_cache
    with _state_lock:
        if _installed is not None:
            return _installed
        spec = os.environ.get(FAULTS_ENV, "").strip()
        if not spec:
            return None
        if _env_cache is None or _env_cache[0] != spec:
            _env_cache = (spec, parse_faults(spec))
        return _env_cache[1]


def fire(site: str, key: str, path: str | Path | None = None) -> None:
    """Inject faults for ``(site, key)`` under the active plan, if any."""
    plan = active_plan()
    if plan is not None:
        plan.fire(site, key, path)
