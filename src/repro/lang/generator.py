"""Program-space generators for the metatheory checks.

Two flavours:

* :func:`all_programs` — bounded-*exhaustive*: every program of the bare
  calculus up to a node budget over a small alphabet.  This is the
  reproduction's stand-in for the paper's Coq proofs: every inference
  rule and every proof case is exercised on *all* small instances.
* :func:`random_program` — randomized programs of much larger size, used
  by the hypothesis property tests and the scaling benchmarks.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Iterator, Sequence

from repro.lang.ast import (
    RETURN,
    SKIP,
    Call,
    If,
    Loop,
    Program,
    Seq,
)


@lru_cache(maxsize=None)
def _programs_of_size(size: int, alphabet: tuple[str, ...]) -> tuple[Program, ...]:
    """All bare-calculus programs with exactly ``size`` AST nodes."""
    if size <= 0:
        return ()
    if size == 1:
        atoms: list[Program] = [SKIP, RETURN]
        atoms.extend(Call(name) for name in alphabet)
        return tuple(atoms)
    results: list[Program] = []
    # Unary nodes: loop.
    for body in _programs_of_size(size - 1, alphabet):
        results.append(Loop(body))
    # Binary nodes: seq and if.
    for left_size in range(1, size - 1):
        right_size = size - 1 - left_size
        for left in _programs_of_size(left_size, alphabet):
            for right in _programs_of_size(right_size, alphabet):
                results.append(Seq(left, right))
                results.append(If(left, right))
    return tuple(results)


def all_programs(max_size: int, alphabet: Sequence[str] = ("a", "b")) -> Iterator[Program]:
    """Every bare-calculus program with at most ``max_size`` nodes.

    The space grows fast — sizes 1..4 over a two-letter alphabet already
    give several thousand programs — so callers should keep ``max_size``
    at 4 or 5.
    """
    key = tuple(alphabet)
    for size in range(1, max_size + 1):
        yield from _programs_of_size(size, key)


def count_programs(max_size: int, alphabet: Sequence[str] = ("a", "b")) -> int:
    """Size of the bounded-exhaustive space (for reporting)."""
    return sum(1 for _ in all_programs(max_size, alphabet))


def random_program(
    rng: random.Random,
    max_depth: int = 6,
    alphabet: Sequence[str] = ("a", "b", "c"),
    return_probability: float = 0.15,
) -> Program:
    """A random bare-calculus program.

    Node kinds are chosen with weights that keep trees bushy but finite;
    at depth 0 only atoms are generated.
    """
    if max_depth <= 0:
        roll = rng.random()
        if roll < return_probability:
            return RETURN
        if roll < return_probability + 0.25:
            return SKIP
        return Call(rng.choice(list(alphabet)))
    roll = rng.random()
    if roll < 0.30:
        return Seq(
            random_program(rng, max_depth - 1, alphabet, return_probability),
            random_program(rng, max_depth - 1, alphabet, return_probability),
        )
    if roll < 0.50:
        return If(
            random_program(rng, max_depth - 1, alphabet, return_probability),
            random_program(rng, max_depth - 1, alphabet, return_probability),
        )
    if roll < 0.65:
        return Loop(random_program(rng, max_depth - 1, alphabet, return_probability))
    return random_program(rng, 0, alphabet, return_probability)


def random_program_of_size(
    rng: random.Random,
    target_size: int,
    alphabet: Sequence[str] = ("a", "b", "c"),
) -> Program:
    """A random program with roughly ``target_size`` nodes (for scaling
    benchmarks); grows by repeated sequencing of random subtrees."""
    from repro.lang.ast import size as program_size

    program: Program = random_program(rng, max_depth=4, alphabet=alphabet)
    while program_size(program) < target_size:
        extension = random_program(rng, max_depth=4, alphabet=alphabet)
        program = Seq(program, extension)
    return program
