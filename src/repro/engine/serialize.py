"""JSON (de)serialization of diagnostics for the verdict cache.

The cached value of a class check is its diagnostic list; round trips
must be *exact* (``from_dict(to_dict(d)) == d``) so a warm-cache run
renders byte-identical reports.  Diagnostics are flat frozen dataclasses,
so this is a field-by-field mapping with tuples flattened to lists; the
companion DFA payloads reuse :mod:`repro.core.model_io`.
"""

from __future__ import annotations

from typing import Any

from repro.core.diagnostics import Diagnostic, Severity, SubsystemError


def diagnostic_to_dict(diagnostic: Diagnostic) -> dict[str, Any]:
    """Serialize one diagnostic (all fields, including defaults)."""
    return {
        "severity": diagnostic.severity.value,
        "code": diagnostic.code,
        "message": diagnostic.message,
        "class_name": diagnostic.class_name,
        "title": diagnostic.title,
        "formula": diagnostic.formula,
        "counterexample": (
            None
            if diagnostic.counterexample is None
            else list(diagnostic.counterexample)
        ),
        "subsystem_errors": [
            {
                "class_name": error.class_name,
                "field_name": error.field_name,
                "rendered": error.rendered,
            }
            for error in diagnostic.subsystem_errors
        ],
        "lineno": diagnostic.lineno,
    }


def diagnostic_from_dict(data: dict[str, Any]) -> Diagnostic:
    """Rebuild a diagnostic; raises ``KeyError``/``ValueError`` on junk."""
    counterexample = data["counterexample"]
    return Diagnostic(
        severity=Severity(data["severity"]),
        code=data["code"],
        message=data["message"],
        class_name=data["class_name"],
        title=data["title"],
        formula=data["formula"],
        counterexample=None if counterexample is None else tuple(counterexample),
        subsystem_errors=tuple(
            SubsystemError(
                class_name=error["class_name"],
                field_name=error["field_name"],
                rendered=error["rendered"],
            )
            for error in data["subsystem_errors"]
        ),
        lineno=data["lineno"],
    )


def diagnostics_to_list(diagnostics: list[Diagnostic]) -> list[dict[str, Any]]:
    return [diagnostic_to_dict(diagnostic) for diagnostic in diagnostics]


def diagnostics_from_list(payload: list[dict[str, Any]]) -> list[Diagnostic]:
    return [diagnostic_from_dict(data) for data in payload]
