"""Crash-safe storage primitives shared by the cache and state files.

Everything the engine persists — content-addressed cache entries
(:mod:`repro.engine.cache`) and the incremental project state
(:mod:`repro.engine.state`) — goes through this module, which supplies
the two properties a multi-process store needs to survive power cuts
and ``SIGKILL`` mid-write:

* **Sealed envelopes.**  :func:`seal` stamps an envelope dict with the
  SHA-256 of its canonical JSON rendering under :data:`CHECKSUM_KEY`;
  :func:`seal_intact` re-derives and compares it on read.  Atomic
  rename alone is not enough: on filesystems without data journaling a
  crash can persist the rename but not the data blocks, leaving a
  *torn-but-valid* JSON payload in place.  The checksum turns that
  silent wrong-content read into a detected corruption, which the
  self-healing readers then treat like any other bad entry.

* **Atomic writes with injectable failures.**  :func:`atomic_write_text`
  is the single temp-file + ``os.replace`` implementation, with
  :mod:`repro.engine.faults` sync points (``store-write`` after the
  payload is written, ``store-rename`` just before the replace) so the
  chaos harness can tear the payload, fill the disk, fail the rename,
  or ``SIGKILL`` the process at exactly the worst moments.

A writer killed between ``mkstemp`` and ``os.replace`` leaves an
orphaned ``.tmp-*`` file behind; :func:`gc_tmp_files` sweeps those
(age-gated, so live writers are never raced) and backs the startup GC
and ``repro cache gc``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.engine import faults

#: Envelope key carrying the content checksum.
CHECKSUM_KEY = "sha256"

#: Every interrupted writer leaves files with this prefix behind.
TMP_PREFIX = ".tmp-"

#: Startup GC ignores temp files younger than this (a concurrent writer
#: may legitimately own them); ``repro cache gc`` can override it.
DEFAULT_TMP_GC_MIN_AGE = 3600.0


def canonical_bytes(obj: Any) -> bytes:
    """The canonical JSON rendering checksums are computed over."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def payload_digest(obj: Any) -> str:
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


def seal(envelope: dict[str, Any]) -> dict[str, Any]:
    """Stamp ``envelope`` with the checksum of its other fields."""
    body = {k: v for k, v in envelope.items() if k != CHECKSUM_KEY}
    return {**body, CHECKSUM_KEY: payload_digest(body)}


def seal_intact(envelope: Any) -> bool:
    """Does the envelope's recorded checksum match its content?"""
    if not isinstance(envelope, dict):
        return False
    recorded = envelope.get(CHECKSUM_KEY)
    if not isinstance(recorded, str):
        return False
    body = {k: v for k, v in envelope.items() if k != CHECKSUM_KEY}
    return recorded == payload_digest(body)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------

def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    fault_key: str | None = None,
    fsync: bool = False,
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Concurrent readers see the whole old file or the whole new file,
    never a partial write.  ``fsync=True`` additionally flushes the data
    blocks to disk before the rename — the state file pays that cost
    (one file per run), bulk cache entries do not.

    ``fault_key`` names the write for fault injection: the
    ``store-write`` site fires after the payload lands in the temp file
    and ``store-rename`` fires just before the replace, both receiving
    the temp path.  Any :class:`OSError` (injected or real) propagates
    to the caller after a best-effort cleanup of the temp file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=TMP_PREFIX, suffix=".json"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
            if fsync:
                stream.flush()
                os.fsync(stream.fileno())
        if fault_key is not None:
            faults.fire("store-write", fault_key, temp_name)
            faults.fire("store-rename", fault_key, temp_name)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Orphaned temp files
# ----------------------------------------------------------------------

def orphan_tmp_files(root: str | Path) -> list[Path]:
    """Every ``.tmp-*`` file under ``root``, sorted for determinism."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(root.rglob(f"{TMP_PREFIX}*"))


def gc_tmp_files(
    root: str | Path,
    *,
    min_age_seconds: float = DEFAULT_TMP_GC_MIN_AGE,
    now: float | None = None,
) -> int:
    """Remove orphaned temp files older than ``min_age_seconds``.

    Returns how many were removed.  The age gate keeps a sweep from
    racing a live writer: a crashed writer's orphan only ages, while a
    healthy writer renames its temp file away within milliseconds.
    """
    now = time.time() if now is None else now
    removed = 0
    for orphan in orphan_tmp_files(root):
        try:
            age = now - orphan.stat().st_mtime
        except OSError:
            continue  # already renamed or swept by a racing process
        if age < min_age_seconds:
            continue
        try:
            orphan.unlink()
            removed += 1
        except OSError:
            pass
    return removed
