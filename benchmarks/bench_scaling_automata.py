"""Ablation — the automata pipeline (regex → NFA → DFA → minimal DFA).

Sweeps the inferred-regex size and times each stage plus the language
round trip of Corollary 1 (DFA → regex → language equality).
"""

import random

import pytest

from repro.automata.determinize import determinize
from repro.automata.minimize import minimize
from repro.automata.thompson import thompson
from repro.automata.to_regex import nfa_to_regex
from repro.lang.generator import random_program_of_size
from repro.lang.inference import infer
from repro.regex.ast import size as regex_size

SIZES = [20, 100, 400]


def _regex_of_size(target: int):
    rng = random.Random(target)
    program = random_program_of_size(rng, target)
    return infer(program)


@pytest.mark.parametrize("target", SIZES)
def test_thompson_scaling(benchmark, target):
    regex = _regex_of_size(target)
    nfa = benchmark(thompson, regex)
    assert len(nfa.states) >= 2
    print(f"\nregex size {regex_size(regex)} -> NFA states {len(nfa.states)}")


@pytest.mark.parametrize("target", SIZES)
def test_determinize_scaling(benchmark, target):
    nfa = thompson(_regex_of_size(target))
    dfa = benchmark(determinize, nfa)
    assert dfa.states
    print(f"\nNFA {len(nfa.states)} states -> DFA {len(dfa.states)} states")


@pytest.mark.parametrize("target", SIZES)
def test_minimize_scaling(benchmark, target):
    dfa = determinize(thompson(_regex_of_size(target)))
    minimal = benchmark(minimize, dfa)
    assert len(minimal.states) <= len(dfa.states) + 1  # +1 for completion
    print(f"\nDFA {len(dfa.states)} -> minimal {len(minimal.states)} states")


@pytest.mark.parametrize("target", [20, 100])
def test_corollary1_round_trip_scaling(benchmark, target):
    regex = _regex_of_size(target)

    def round_trip():
        dfa = minimize(determinize(thompson(regex)))
        return nfa_to_regex(dfa.to_nfa())

    recovered = benchmark(round_trip)
    from repro.regex.equivalence import equivalent

    assert equivalent(recovered, regex)
